//! Design-choice ablations called out in DESIGN.md §5 — measurements beyond
//! the paper's figures that justify (or probe) implementation decisions.

use bench::Testbed;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dscl_cache::{Cache, ClockCache, GdsCache, InProcessLru};
use dscl_delta::DeltaChainStore;
use kvapi::mem::MemKv;
use kvapi::KeyValue;
use rand::distributions::Distribution;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use udsm::{AsyncKeyValue, ThreadPool};

/// Zipf-ish rank sampler (approximate, via inverse power CDF).
fn zipf_sample(rng: &mut SmallRng, n: usize, skew: f64) -> usize {
    let u: f64 = rand::distributions::Open01.sample(rng);
    let r = (n as f64).powf(1.0 - skew.min(0.99));
    (((1.0 - u * (1.0 - 1.0 / r)).powf(-1.0 / (1.0 - skew.min(0.99))) - 1.0) as usize).min(n - 1)
}

/// Replacement-policy ablation: hit rate under a Zipf workload at a cache
/// sized to a fraction of the working set. Criterion measures the op rate;
/// hit rates print once per policy.
fn replacement_policies(c: &mut Criterion) {
    let universe = 2000usize;
    let obj = 1000usize;
    let mut group = c.benchmark_group("ablation_replacement_zipf");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let caches: Vec<(&str, Arc<dyn Cache>)> = vec![
        (
            "lru",
            Arc::new(InProcessLru::new((universe / 5 * (obj + 80)) as u64)),
        ),
        ("clock", Arc::new(ClockCache::new(universe / 5))),
        ("gds", Arc::new(GdsCache::new((universe / 5 * obj) as u64))),
    ];
    for (name, cache) in caches {
        let mut rng = SmallRng::seed_from_u64(5);
        group.bench_function(BenchmarkId::new(name, "zipf1.1"), |b| {
            b.iter(|| {
                let k = format!("z{}", zipf_sample(&mut rng, universe, 1.1));
                if cache.get(&k).is_none() {
                    cache.put(&k, Bytes::from(vec![0u8; obj]));
                }
            })
        });
        let s = cache.stats();
        println!(
            "{name}: hit rate {:.3} over {} lookups",
            s.hit_rate(),
            s.hits + s.misses
        );
    }
    group.finish();
}

/// Concurrency ablation: sharded vs single-lock LRU under 8 threads.
fn cache_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cache_sharding");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for (label, shards) in [("single_lock", 1usize), ("sharded_16", 16)] {
        let cache = Arc::new(InProcessLru::with_shards(64 << 20, shards));
        // Pre-fill.
        for i in 0..512 {
            cache.put(&format!("k{i}"), Bytes::from(vec![0u8; 256]));
        }
        group.bench_function(label, |b| {
            b.iter(|| {
                let threads: Vec<_> = (0..8)
                    .map(|t| {
                        let cache = cache.clone();
                        std::thread::spawn(move || {
                            let mut rng = SmallRng::seed_from_u64(t);
                            for _ in 0..2000 {
                                let k = format!("k{}", rng.gen_range(0..512));
                                std::hint::black_box(cache.get(&k));
                            }
                        })
                    })
                    .collect();
                for t in threads {
                    t.join().unwrap();
                }
            })
        });
    }
    group.finish();
}

/// §IV ablation: client-managed delta chains vs full-object writes for
/// small edits on a large object — and the read penalty deltas incur.
fn delta_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_delta_vs_full");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let base = {
        let mut v = vec![0u8; 200_000];
        let mut x = 1u32;
        for b in v.iter_mut() {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            *b = (x >> 24) as u8;
        }
        v
    };

    group.bench_function("full_write_small_edit", |b| {
        let store = MemKv::new("full");
        let mut v = base.clone();
        store.put("doc", &v).unwrap();
        let mut i = 0u8;
        b.iter(|| {
            i = i.wrapping_add(1);
            v[1000] = i;
            store.put("doc", &v).unwrap();
        })
    });

    group.bench_function("delta_write_small_edit", |b| {
        let store = DeltaChainStore::new(MemKv::new("delta"), 16);
        let mut v = base.clone();
        store.put("doc", &v).unwrap();
        let mut i = 0u8;
        b.iter(|| {
            i = i.wrapping_add(1);
            v[1000] = i;
            store.put("doc", &v).unwrap();
        })
    });

    // Read penalty: reconstructing through a chain vs a direct read.
    let plain = MemKv::new("plain");
    plain.put("doc", &base).unwrap();
    group.bench_function("read_direct", |b| {
        b.iter(|| plain.get("doc").unwrap().unwrap())
    });
    let chain = DeltaChainStore::new(MemKv::new("chain"), 16);
    let mut v = base.clone();
    chain.put("doc", &v).unwrap();
    for i in 0..8 {
        v[i * 100] = i as u8;
        chain.put("doc", &v).unwrap();
    }
    group.bench_function("read_through_8_deltas", |b| {
        b.iter(|| chain.get("doc").unwrap().unwrap())
    });
    group.finish();
}

/// §II-A ablation: completing a batch of independent puts synchronously vs
/// through the asynchronous interface (thread pool overlap) against a
/// high-latency store.
fn async_vs_sync(c: &mut Criterion) {
    let tb = Testbed::start(0.02);
    let mut group = c.benchmark_group("ablation_async_vs_sync");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let store = tb.cloud2();
    let value = vec![7u8; 1000];

    group.bench_function("sync_8_puts", |b| {
        b.iter(|| {
            for i in 0..8 {
                store.put(&format!("sync{i}"), &value).unwrap();
            }
        })
    });

    let pool = Arc::new(ThreadPool::new(8));
    let akv = AsyncKeyValue::new(store.clone(), pool);
    group.bench_function("async_8_puts", |b| {
        b.iter(|| {
            let futures: Vec<_> = (0..8)
                .map(|i| akv.put(&format!("async{i}"), value.clone()))
                .collect();
            for f in futures {
                f.get().as_ref().as_ref().unwrap();
            }
        })
    });
    group.finish();
}

/// §III ablation: revalidating an expired entry (304, no body) vs
/// refetching the full object from the slow store.
fn revalidate_vs_refetch(c: &mut Criterion) {
    let tb = Testbed::start(0.02);
    let mut group = c.benchmark_group("ablation_revalidation");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let store = tb.cloud1();
    let value = vec![9u8; 500_000];
    store.put("doc", &value).unwrap();
    let v = store.get_versioned("doc").unwrap().unwrap();

    group.bench_function("refetch_500k", |b| {
        b.iter(|| store.get("doc").unwrap().unwrap())
    });
    group.bench_function("revalidate_304", |b| {
        b.iter(|| store.get_if_none_match("doc", v.etag).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    replacement_policies,
    cache_sharding,
    delta_chains,
    async_vs_sync,
    revalidate_vs_refetch
);
criterion_main!(benches);
