//! Criterion mirror of Figures 9 & 10: per-store read/write latency across
//! object sizes.
//!
//! WAN latencies are scaled to 2 % so `cargo bench` finishes in minutes;
//! the *relative* ordering between stores — the figures' shape — is
//! preserved. Use the `repro` binary for paper-scale absolute numbers.

use bench::Testbed;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use udsm::workload::ValueSource;

const SIZES: [usize; 3] = [1_000, 50_000, 1_000_000];

fn fig09_read(c: &mut Criterion) {
    let tb = Testbed::start(0.02);
    let source = ValueSource::synthetic();
    let mut group = c.benchmark_group("fig09_read_latency");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for (name, store) in tb.all_stores() {
        for size in SIZES {
            let key = format!("bench-{size}");
            let value = source.generate(size, size as u64).unwrap();
            store.put(&key, &value).unwrap();
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_with_input(BenchmarkId::new(name, size), &size, |b, _| {
                b.iter(|| store.get(&key).unwrap().unwrap())
            });
            store.delete(&key).unwrap();
        }
    }
    group.finish();
}

fn fig10_write(c: &mut Criterion) {
    let tb = Testbed::start(0.02);
    let source = ValueSource::synthetic();
    let mut group = c.benchmark_group("fig10_write_latency");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for (name, store) in tb.all_stores() {
        for size in SIZES {
            let value = source.generate(size, size as u64).unwrap();
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_with_input(BenchmarkId::new(name, size), &size, |b, _| {
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    store.put(&format!("bench-w-{}", i % 8), &value).unwrap()
                })
            });
        }
        store.clear().unwrap();
    }
    group.finish();
}

criterion_group!(benches, fig09_read, fig10_write);
criterion_main!(benches);
