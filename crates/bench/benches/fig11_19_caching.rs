//! Criterion mirror of Figures 11–19: the cache-hit path of each cache type
//! against the miss path of each store.
//!
//! The paper's hit-rate curves are linear interpolations between exactly
//! these two measurements (its own methodology), so benchmarking hit and
//! miss paths pins both endpoints. The in-process/remote comparison
//! (Fig. 19 discussion) falls out of the `cache_hit` group: the in-process
//! hit is flat across sizes, the remote hit grows with transfer size.

use bench::Testbed;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dscl::EnhancedClient;
use dscl_cache::{Cache, InProcessLru};
use kvapi::KeyValue;
use std::sync::Arc;
use udsm::workload::ValueSource;

const SIZES: [usize; 3] = [1_000, 50_000, 1_000_000];

fn cache_hit_paths(c: &mut Criterion) {
    let tb = Testbed::start(0.02);
    let source = ValueSource::synthetic();
    let mut group = c.benchmark_group("fig11_19_cache_hit");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let inproc: Arc<dyn Cache> = Arc::new(InProcessLru::new(256 << 20));
    let remote: Arc<dyn Cache> = Arc::new(tb.remote_cache());
    for (label, cache) in [("in_process", &inproc), ("remote_redis", &remote)] {
        for size in SIZES {
            let key = format!("hit-{size}");
            let value = Bytes::from(source.generate(size, size as u64).unwrap());
            cache.put(&key, value);
            group.throughput(Throughput::Bytes(size as u64));
            group.bench_with_input(BenchmarkId::new(label, size), &size, |b, _| {
                b.iter(|| cache.get(&key).expect("primed"))
            });
            cache.remove(&key);
        }
    }
    group.finish();
}

fn store_miss_paths(c: &mut Criterion) {
    let tb = Testbed::start(0.02);
    let source = ValueSource::synthetic();
    let mut group = c.benchmark_group("fig11_19_store_miss");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for (name, store) in tb.all_stores() {
        let size = 50_000usize;
        let key = "miss-50000";
        store.put(key, &source.generate(size, 1).unwrap()).unwrap();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(BenchmarkId::new(name, size), |b| {
            b.iter(|| store.get(key).unwrap().unwrap())
        });
        store.delete(key).unwrap();
    }
    group.finish();
}

/// End-to-end enhanced-client read at a controlled hit rate, over the
/// slowest store (cloud1): the integrated path the application actually
/// runs, complementing the endpoint measurements above.
fn enhanced_client_hit_rates(c: &mut Criterion) {
    let tb = Testbed::start(0.02);
    let source = ValueSource::synthetic();
    let mut group = c.benchmark_group("fig11_enhanced_client");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let size = 50_000usize;
    for hit_pct in [0u32, 50, 100] {
        let client =
            EnhancedClient::new(tb.cloud1()).with_cache(Arc::new(InProcessLru::new(64 << 20)));
        // `hit_pct`% of the key universe is pre-warmed in the cache.
        let universe = 10u32;
        for i in 0..universe {
            let key = format!("ec-{i}");
            let value = source.generate(size, u64::from(i)).unwrap();
            client.store().put(&key, &value).unwrap();
            if i * 100 < hit_pct * universe {
                client.cache_put(&key, &value, None).unwrap();
            }
        }
        group.bench_function(BenchmarkId::new("cloud1_hit_pct", hit_pct), |b| {
            let mut i = 0u32;
            b.iter(|| {
                // Read round-robin; warmed keys hit, the rest miss (and
                // then hit on later rounds — so this measures a converged
                // cache for hit_pct=100 and a mixed stream otherwise).
                let key = format!("ec-{}", i % universe);
                i += 1;
                client.get(&key).unwrap().unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    cache_hit_paths,
    store_miss_paths,
    enhanced_client_hit_rates
);
criterion_main!(benches);
