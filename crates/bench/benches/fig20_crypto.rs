//! Criterion mirror of Figure 20: AES encryption/decryption overhead, plus
//! key-size and cipher-mode ablations beyond the paper's AES-128 numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dscl_crypto::codec::Mode;
use dscl_crypto::{sha256, Aes, AesCodec, KeySize};
use kvapi::codec::Codec;
use udsm::workload::ValueSource;

const SIZES: [usize; 3] = [1_000, 50_000, 1_000_000];

fn fig20_aes128(c: &mut Criterion) {
    let codec = AesCodec::aes128(&[0x42; 16]);
    let source = ValueSource::synthetic();
    let mut group = c.benchmark_group("fig20_aes128");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for size in SIZES {
        let plain = source.generate(size, size as u64).unwrap();
        let encrypted = codec.encode(&plain).unwrap();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encrypt", size), &size, |b, _| {
            b.iter(|| codec.encode(&plain).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("decrypt", size), &size, |b, _| {
            b.iter(|| codec.decode(&encrypted).unwrap())
        });
    }
    group.finish();
}

/// Ablation: key size (128/192/256) and mode (CBC/CTR) at one payload size.
fn aes_variants(c: &mut Criterion) {
    let source = ValueSource::synthetic();
    let plain = source.generate(100_000, 7).unwrap();
    let mut group = c.benchmark_group("aes_variants_100k");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(plain.len() as u64));
    let variants: [(&str, KeySize, Mode); 4] = [
        ("aes128_cbc", KeySize::Aes128, Mode::Cbc),
        ("aes256_cbc", KeySize::Aes256, Mode::Cbc),
        ("aes128_ctr", KeySize::Aes128, Mode::Ctr),
        ("aes256_ctr", KeySize::Aes256, Mode::Ctr),
    ];
    for (label, size, mode) in variants {
        let key = vec![0x5au8; size.key_len()];
        let codec = AesCodec::new(&key, size, mode);
        group.bench_function(label, |b| b.iter(|| codec.encode(&plain).unwrap()));
    }
    group.finish();
}

/// Raw block throughput (no mode overhead) and SHA-256 for etag costs.
fn primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_primitives");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let aes = Aes::new_128(&[1u8; 16]);
    group.throughput(Throughput::Bytes(16));
    group.bench_function("aes128_block", |b| {
        let mut block = [7u8; 16];
        b.iter(|| {
            aes.encrypt_block(&mut block);
            block
        })
    });
    let data = vec![3u8; 100_000];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_100k", |b| b.iter(|| sha256(&data)));
    group.finish();
}

criterion_group!(benches, fig20_aes128, aes_variants, primitives);
criterion_main!(benches);
