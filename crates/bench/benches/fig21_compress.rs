//! Criterion mirror of Figure 21: gzip compression/decompression overhead,
//! plus compression-level and input-entropy ablations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dscl_compress::{deflate, gzip_compress, gzip_decompress, inflate, Level};
use udsm::workload::ValueSource;

const SIZES: [usize; 3] = [1_000, 50_000, 1_000_000];

fn fig21_gzip(c: &mut Criterion) {
    // File-like (mostly structured) input, matching the paper's use of
    // file data.
    let source = ValueSource::Synthetic {
        seed: 42,
        compressibility: 0.85,
    };
    let mut group = c.benchmark_group("fig21_gzip");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for size in SIZES {
        let plain = source.generate(size, size as u64).unwrap();
        let compressed = gzip_compress(&plain, Level::Default);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("compress", size), &size, |b, _| {
            b.iter(|| gzip_compress(&plain, Level::Default))
        });
        group.bench_with_input(BenchmarkId::new("decompress", size), &size, |b, _| {
            b.iter(|| gzip_decompress(&compressed).unwrap())
        });
    }
    group.finish();
}

/// Ablation: compression level effort vs ratio at one size.
fn levels(c: &mut Criterion) {
    let source = ValueSource::Synthetic {
        seed: 42,
        compressibility: 0.85,
    };
    let plain = source.generate(200_000, 1).unwrap();
    let mut group = c.benchmark_group("deflate_levels_200k");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(plain.len() as u64));
    for (label, level) in [
        ("store", Level::Store),
        ("fast", Level::Fast),
        ("default", Level::Default),
        ("best", Level::Best),
    ] {
        let out_len = deflate(&plain, level).len();
        println!(
            "deflate level {label}: {} -> {} bytes",
            plain.len(),
            out_len
        );
        group.bench_function(label, |b| b.iter(|| deflate(&plain, level)));
    }
    group.finish();
}

/// Ablation: input entropy. Compression work collapses on incompressible
/// data (the encoder prices dynamic vs stored and bails early).
fn entropy(c: &mut Criterion) {
    let mut group = c.benchmark_group("deflate_entropy_200k");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for (label, compressibility) in [("random", 0.0), ("mixed", 0.5), ("text_like", 0.9)] {
        let plain = ValueSource::Synthetic {
            seed: 9,
            compressibility,
        }
        .generate(200_000, 2)
        .unwrap();
        group.throughput(Throughput::Bytes(plain.len() as u64));
        let compressed = deflate(&plain, Level::Default);
        group.bench_function(BenchmarkId::new("compress", label), |b| {
            b.iter(|| deflate(&plain, Level::Default))
        });
        group.bench_function(BenchmarkId::new("decompress", label), |b| {
            b.iter(|| inflate(&compressed).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, fig21_gzip, levels, entropy);
criterion_main!(benches);
