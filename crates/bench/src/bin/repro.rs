//! `repro` — regenerate every table/figure of the paper's evaluation (§V).
//!
//! ```text
//! cargo run --release -p bench --bin repro            # full run (paper-scale WAN latencies)
//! cargo run --release -p bench --bin repro -- --quick # scaled-down latencies, fewer points
//! cargo run --release -p bench --bin repro -- --fig 9 --fig 20
//! ```
//!
//! Output: `results/figNN_*.dat` (gnuplot columns), `results/summary.md`
//! (markdown tables + the shape checks EXPERIMENTS.md records).

use bench::Testbed;
use dscl_cache::{Cache, InProcessLru};
use dscl_compress::GzipCodec;
use dscl_crypto::AesCodec;
use std::fmt::Write as _;
use std::path::PathBuf;
use udsm::workload::{log_sizes, to_markdown, write_gnuplot, Series, ValueSource, WorkloadSpec};

struct Args {
    quick: bool,
    out: PathBuf,
    figs: Vec<u32>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: PathBuf::from("results"),
        figs: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = PathBuf::from(it.next().expect("--out needs a path")),
            "--fig" => args.figs.push(
                it.next()
                    .expect("--fig needs a number")
                    .parse()
                    .expect("numeric figure"),
            ),
            "--help" | "-h" => {
                eprintln!("usage: repro [--quick] [--out DIR] [--fig N]...");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

struct Report {
    out_dir: PathBuf,
    summary: String,
    checks: Vec<(String, bool)>,
}

impl Report {
    fn section(&mut self, title: &str) {
        println!("\n=== {title} ===");
        let _ = writeln!(self.summary, "\n## {title}\n");
    }

    fn emit(&mut self, file: &str, series: &[Series]) {
        let path = self.out_dir.join(file);
        write_gnuplot(&path, series).expect("write results file");
        println!("wrote {}", path.display());
        let md = to_markdown(series);
        println!("{md}");
        let _ = writeln!(self.summary, "{md}");
    }

    fn check(&mut self, name: &str, pass: bool) {
        println!("[{}] {name}", if pass { "PASS" } else { "FAIL" });
        let _ = writeln!(
            self.summary,
            "- **{}** {name}",
            if pass { "PASS" } else { "FAIL" }
        );
        self.checks.push((name.to_string(), pass));
    }
}

/// Latency at the largest size ≤ `size` in a series.
fn at(series: &Series, size: f64) -> f64 {
    series
        .points
        .iter()
        .rfind(|(x, _)| *x <= size)
        .or_else(|| series.points.first())
        .map(|&(_, y)| y)
        .expect("non-empty series")
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out).expect("create output dir");
    let scale = if args.quick { 0.05 } else { 1.0 };
    let want = |fig: u32| args.figs.is_empty() || args.figs.contains(&fig);

    println!("starting testbed (WAN latency scale {scale})…");
    let tb = Testbed::start(scale);
    let spec = WorkloadSpec {
        sizes: if args.quick {
            vec![100, 10_000, 1_000_000]
        } else {
            log_sizes(100, 1_000_000, 1)
        },
        ops_per_point: if args.quick { 3 } else { 5 },
        runs: if args.quick { 2 } else { 4 }, // paper: 4 runs per point
        source: ValueSource::synthetic(),
        hit_rates: vec![0.0, 0.25, 0.5, 0.75, 1.0],
    };
    let mut report = Report {
        out_dir: args.out.clone(),
        summary: String::from("# Reproduction run\n"),
        checks: Vec::new(),
    };
    let _ = writeln!(
        report.summary,
        "\nscale={scale}, sizes={:?}, ops/point={}, runs={}\n",
        spec.sizes, spec.ops_per_point, spec.runs
    );

    let stores = tb.all_stores();

    // ---- Figure 9: read latency vs size, all stores ----
    let mut fig9: Vec<Series> = Vec::new();
    if want(9) {
        report.section("Figure 9: read latency vs object size");
        for (name, store) in &stores {
            fig9.push(spec.read_sweep(store.as_ref(), name).expect("read sweep"));
        }
        report.emit("fig09_read_latency.dat", &fig9);
        let by = |label: &str| fig9.iter().find(|s| s.label == label).expect("series");
        report.check(
            "cloud stores slowest (reads, small objects)",
            at(by("cloud1"), 1e3) > at(by("filesystem"), 1e3)
                && at(by("cloud2"), 1e3) > at(by("filesystem"), 1e3)
                && at(by("cloud1"), 1e3) > at(by("redis"), 1e3),
        );
        report.check(
            "cloud1 slower than cloud2 (reads)",
            at(by("cloud1"), 1e6) > at(by("cloud2"), 1e6),
        );
        report.check(
            "redis beats minisql for small reads",
            at(by("redis"), 1e3) < at(by("minisql"), 1e3),
        );
        report.check(
            "filesystem catches redis for large reads (crossover)",
            at(by("filesystem"), 1e6) <= at(by("redis"), 1e6) * 1.5,
        );
    }

    // ---- Figure 10: write latency vs size, all stores ----
    if want(10) {
        report.section("Figure 10: write latency vs object size");
        let mut fig10: Vec<Series> = Vec::new();
        for (name, store) in &stores {
            fig10.push(spec.write_sweep(store.as_ref(), name).expect("write sweep"));
        }
        report.emit("fig10_write_latency.dat", &fig10);
        let by = |label: &str| fig10.iter().find(|s| s.label == label).expect("series");
        report.check(
            "cloud1 has the highest write latency",
            ["cloud2", "filesystem", "minisql", "redis"]
                .iter()
                .all(|o| at(by("cloud1"), 1e4) > at(by(o), 1e4)),
        );
        report.check(
            "minisql writes are the slowest local store (costly commits)",
            at(by("minisql"), 1e3) > at(by("redis"), 1e3)
                && at(by("minisql"), 1e3) > at(by("filesystem"), 1e3),
        );
        if !fig9.is_empty() {
            let read_sql = fig9.iter().find(|s| s.label == "minisql").expect("series");
            report.check(
                "minisql writes ≫ minisql reads",
                at(by("minisql"), 1e4) > at(read_sql, 1e4) * 2.0,
            );
        }
    }

    // ---- Figures 11–19: caching sweeps ----
    // (store, in-process figure number, remote figure number; redis gets
    // only the in-process figure — Fig. 19.)
    let fig_map: [(&str, u32, Option<u32>); 5] = [
        ("cloud1", 11, Some(12)),
        ("cloud2", 13, Some(14)),
        ("minisql", 15, Some(16)),
        ("filesystem", 17, Some(18)),
        ("redis", 19, None),
    ];
    let mut fs_remote: Vec<Series> = Vec::new();
    let mut cloud1_inproc: Vec<Series> = Vec::new();
    for (store_name, inproc_fig, remote_fig) in fig_map {
        let store = stores
            .iter()
            .find(|(n, _)| *n == store_name)
            .map(|(_, s)| s.clone())
            .expect("store exists");
        if want(inproc_fig) {
            report.section(&format!(
                "Figure {inproc_fig}: {store_name} reads with in-process cache"
            ));
            let cache = InProcessLru::new(256 << 20);
            let series = spec
                .cached_read_sweep(store.as_ref(), &cache, store_name)
                .expect("cached sweep");
            report.emit(
                &format!("fig{inproc_fig:02}_{store_name}_inprocess.dat"),
                &series,
            );
            if store_name == "cloud1" {
                cloud1_inproc = series;
            }
        }
        if let Some(fig) = remote_fig {
            if want(fig) {
                report.section(&format!(
                    "Figure {fig}: {store_name} reads with remote (redis) cache"
                ));
                let cache = tb.remote_cache();
                let series = spec
                    .cached_read_sweep(store.as_ref(), &cache, store_name)
                    .expect("cached sweep");
                report.emit(&format!("fig{fig:02}_{store_name}_remote.dat"), &series);
                if store_name == "filesystem" {
                    fs_remote = series;
                }
                cache.clear();
            }
        }
    }
    if !cloud1_inproc.is_empty() {
        let hit100 = cloud1_inproc.last().expect("series");
        let nocache = cloud1_inproc.first().expect("series");
        report.check(
            "in-process 100% hits are orders of magnitude below cloud1 reads",
            at(hit100, 1e4) < at(nocache, 1e4) / 50.0,
        );
        report.check(
            "in-process hit latency is size-independent (flat curve)",
            at(hit100, 1e6) < at(hit100, 1e3) * 20.0 + 0.05,
        );
    }
    if !fs_remote.is_empty() {
        // Paper Fig. 18: "for larger objects, performance is better without
        // using Redis" — the robust half of the claim. (The paper also saw
        // redis *helping* for small objects; on a modern Linux testbed the
        // page-cache read of a small file is faster than a loopback TCP
        // round trip, so that half inverts — recorded in EXPERIMENTS.md.)
        let hit100 = fs_remote.last().expect("series");
        let nocache = fs_remote.first().expect("series");
        report.check(
            "remote cache does not help filesystem at large sizes (Fig. 18)",
            at(hit100, 1e6) > at(nocache, 1e6) * 0.8,
        );
    }

    // ---- Figure 20: AES-128 encrypt/decrypt ----
    if want(20) {
        report.section("Figure 20: AES-128 encryption/decryption overhead");
        let codec = AesCodec::aes128(&[0x42; 16]);
        let (enc, dec) = spec.codec_sweep(&codec).expect("codec sweep");
        let series = vec![enc, dec];
        report.emit("fig20_aes.dat", &series);
        report.check(
            "AES encrypt and decrypt costs are similar (symmetric cipher)",
            {
                let e = at(&series[0], 1e6);
                let d = at(&series[1], 1e6);
                e / d < 4.0 && d / e < 4.0
            },
        );
    }

    // ---- Figure 21: gzip compress/decompress ----
    if want(21) {
        report.section("Figure 21: gzip compression/decompression overhead");
        let codec = GzipCodec::default();
        // The paper compressed data from files — mostly structured
        // content. Match the input class, since half-noise data would
        // understate the encoder's match-finding work.
        let mut gz_spec = spec.clone();
        gz_spec.source = ValueSource::Synthetic {
            seed: 42,
            compressibility: 0.85,
        };
        let (enc, dec) = gz_spec.codec_sweep(&codec).expect("codec sweep");
        let series = vec![enc, dec];
        report.emit("fig21_gzip.dat", &series);
        report.check(
            "compression is several times more expensive than decompression",
            at(&series[0], 1e6) > at(&series[1], 1e6) * 2.0,
        );
    }

    // ---- summary ----
    let failed: Vec<&(String, bool)> = report.checks.iter().filter(|(_, p)| !p).collect();
    let _ = writeln!(
        report.summary,
        "\n## Result: {}/{} shape checks passed\n",
        report.checks.len() - failed.len(),
        report.checks.len()
    );
    std::fs::write(args.out.join("summary.md"), &report.summary).expect("write summary");
    println!(
        "\n{}/{} shape checks passed; summary at {}",
        report.checks.len() - failed.len(),
        report.checks.len(),
        args.out.join("summary.md").display()
    );
    if !failed.is_empty() {
        for (name, _) in failed {
            eprintln!("FAILED: {name}");
        }
        std::process::exit(1);
    }
}
