//! The regression comparator: diff two [`BenchReport`]s and decide whether
//! the newer one is allowed to land.
//!
//! Comparison is per `(workload, target, op)` row. Latency percentiles
//! (p50, p99) regress when the new value exceeds the old by more than the
//! configured percentage *and* by more than an absolute floor (sub-floor
//! jitter on microsecond-scale ops is measurement noise, not a
//! regression). Throughput regresses when it drops by more than its own
//! percentage threshold *and* the implied per-op cost (closed-loop
//! throughput is 1/mean) grew past the latency floor — a sub-µs row
//! "loses" half its throughput to a single scheduler tick landing in the
//! run, which is interrupt accounting, not a regression. Rows present on
//! only one side are reported but never fail the gate — workloads are
//! allowed to be added and retired.
//!
//! The p99 additionally gates only when *both* rows carry at least
//! [`Thresholds::tail_min_count`] samples. At n=100 the "p99" is
//! literally the second-worst sample — one scheduler preemption or VM
//! hiccup anywhere in the run moves it 2–3×, so gating on it turns the
//! bench into a dice roll. Underpowered tail movements are still printed
//! (marked `tail`), they just don't fail the build; p50 and throughput,
//! which are stable at any sample count the harness produces, remain the
//! primary regression detectors.
//!
//! A missing predecessor file is not an error: this harness created the
//! first `BENCH_<n>.json` in the repo's history, so the CLI treats
//! "nothing to compare against" as a clean pass with a note.

use crate::report::BenchReport;

/// Regression tolerances. Defaults are deliberately loose — shared CI
/// hardware jitters; the gate exists to catch step changes, not 3% noise.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Max allowed relative latency growth, percent (p50 and p99).
    pub latency_pct: f64,
    /// Latency growth below this many microseconds never regresses.
    pub latency_floor_us: f64,
    /// Max allowed relative throughput drop, percent.
    pub throughput_pct: f64,
    /// Minimum samples (on both sides) for the p99 to gate; below this
    /// the tail is an order statistic of a handful of samples and only
    /// reports.
    pub tail_min_count: u64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            latency_pct: 35.0,
            latency_floor_us: 25.0,
            throughput_pct: 30.0,
            tail_min_count: 1000,
        }
    }
}

/// One metric's old→new movement.
#[derive(Clone, Debug)]
pub struct Delta {
    /// `workload/target/op` row identity.
    pub row: String,
    /// Metric name ("p50_us", "p99_us", "throughput_ops_s").
    pub metric: &'static str,
    /// Value in the older report.
    pub old: f64,
    /// Value in the newer report.
    pub new: f64,
    /// Relative change in percent (positive = value grew).
    pub change_pct: f64,
    /// True when the movement crosses the regression threshold in the
    /// bad direction.
    pub regressed: bool,
    /// True when a p99 movement crossed the latency thresholds but the
    /// row is too small-sample for the tail to gate (see
    /// [`Thresholds::tail_min_count`]).
    pub underpowered: bool,
}

/// The comparator's verdict.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Every compared metric, in row order.
    pub deltas: Vec<Delta>,
    /// Rows present in exactly one of the two reports.
    pub unmatched: Vec<String>,
}

impl CompareReport {
    /// Metrics that crossed their regression threshold.
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// True when the newer report should fail the gate.
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }

    /// Render the verdict as a one-screen text report.
    pub fn render(&self, thresholds: &Thresholds) -> String {
        let mut out = format!(
            "{:<36} {:<18} {:>12} {:>12} {:>9}\n",
            "row", "metric", "old", "new", "change"
        );
        for d in &self.deltas {
            out.push_str(&format!(
                "{:<36} {:<18} {:>12.1} {:>12.1} {:>+8.1}%{}\n",
                d.row,
                d.metric,
                d.old,
                d.new,
                d.change_pct,
                if d.regressed {
                    "  REGRESSION"
                } else if d.underpowered {
                    "  tail (too few samples to gate)"
                } else {
                    ""
                }
            ));
        }
        for row in &self.unmatched {
            out.push_str(&format!("{row}: present in only one report (skipped)\n"));
        }
        let regressions = self.regressions();
        if regressions.is_empty() {
            out.push_str(&format!(
                "OK: no metric regressed beyond +{:.0}% latency (floor {:.0} µs) / \
                 -{:.0}% throughput\n",
                thresholds.latency_pct, thresholds.latency_floor_us, thresholds.throughput_pct
            ));
        } else {
            out.push_str(&format!("FAIL: {} regression(s)\n", regressions.len()));
        }
        out
    }
}

fn pct_change(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new - old) / old * 100.0
    }
}

/// Diff `new` against `old` under `thresholds`.
pub fn compare(old: &BenchReport, new: &BenchReport, thresholds: &Thresholds) -> CompareReport {
    let mut report = CompareReport::default();
    let row_key = |w: &str, t: &str, op: &str| format!("{w}/{t}/{op}");

    let mut old_rows = std::collections::BTreeMap::new();
    for w in &old.workloads {
        for op in &w.ops {
            old_rows.insert(row_key(&w.workload, &w.target, &op.op), op);
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    for w in &new.workloads {
        for op in &w.ops {
            let key = row_key(&w.workload, &w.target, &op.op);
            let Some(old_op) = old_rows.get(key.as_str()) else {
                report.unmatched.push(format!("{key} (new only)"));
                continue;
            };
            seen.insert(key.clone());
            for (metric, old_v, new_v) in [
                ("p50_us", old_op.p50_us, op.p50_us),
                ("p99_us", old_op.p99_us, op.p99_us),
                (
                    "throughput_ops_s",
                    old_op.throughput_ops_s,
                    op.throughput_ops_s,
                ),
            ] {
                let change = pct_change(old_v, new_v);
                let mut underpowered = false;
                let regressed = if metric == "throughput_ops_s" {
                    // Closed-loop throughput is 1/mean, so it inherits the
                    // latency floor via the implied per-op cost: a sub-µs
                    // row "loses" half its throughput to one scheduler
                    // tick landing in the run. Gate only when the per-op
                    // cost also grew past the absolute floor.
                    change < -thresholds.throughput_pct
                        && (op.mean_us - old_op.mean_us) > thresholds.latency_floor_us
                } else {
                    let over = change > thresholds.latency_pct
                        && (new_v - old_v) > thresholds.latency_floor_us;
                    if metric == "p99_us"
                        && over
                        && old_op.count.min(op.count) < thresholds.tail_min_count
                    {
                        underpowered = true;
                        false
                    } else {
                        over
                    }
                };
                report.deltas.push(Delta {
                    row: key.clone(),
                    metric,
                    old: old_v,
                    new: new_v,
                    change_pct: change,
                    regressed,
                    underpowered,
                });
            }
        }
    }
    for key in old_rows.keys() {
        if !seen.contains(key) {
            report.unmatched.push(format!("{key} (old only)"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::sample_report;

    #[test]
    fn identical_reports_pass() {
        let a = sample_report("BENCH_6");
        let out = compare(&a, &a, &Thresholds::default());
        assert!(!out.has_regressions(), "{:?}", out.regressions());
        assert!(out.unmatched.is_empty());
        assert!(out.render(&Thresholds::default()).contains("OK:"));
    }

    #[test]
    fn doctored_latency_regression_fails() {
        let old = sample_report("BENCH_6");
        let mut new = sample_report("BENCH_7");
        new.workloads[0].ops[0].p50_us *= 10.0;
        new.workloads[0].ops[0].p99_us *= 10.0;
        let out = compare(&old, &new, &Thresholds::default());
        assert!(out.has_regressions());
        let metrics: Vec<&str> = out.regressions().iter().map(|d| d.metric).collect();
        assert!(metrics.contains(&"p50_us"), "{metrics:?}");
        assert!(metrics.contains(&"p99_us"), "{metrics:?}");
        assert!(out.render(&Thresholds::default()).contains("REGRESSION"));
    }

    #[test]
    fn throughput_drop_fails_but_latency_improvement_passes() {
        let old = sample_report("BENCH_6");
        let mut new = sample_report("BENCH_7");
        new.workloads[0].ops[0].p50_us /= 4.0; // improvement
        new.workloads[0].ops[0].throughput_ops_s /= 3.0; // 67% drop
        new.workloads[0].ops[0].mean_us *= 10.0; // the matching cost growth
        let out = compare(&old, &new, &Thresholds::default());
        let regressed: Vec<&str> = out.regressions().iter().map(|d| d.metric).collect();
        assert_eq!(regressed, vec!["throughput_ops_s"], "{:?}", out.deltas);
    }

    #[test]
    fn sub_floor_throughput_collapse_is_interrupt_noise() {
        let old = sample_report("BENCH_6");
        let mut new = sample_report("BENCH_7");
        // A 0.4µs-per-op row that "lost" half its throughput to one
        // scheduler tick: the implied cost grew well under the floor.
        new.workloads[0].ops[0].mean_us = 0.84;
        new.workloads[0].ops[0].throughput_ops_s = 1_190_000.0;
        let mut old2 = old.clone();
        old2.workloads[0].ops[0].mean_us = 0.39;
        old2.workloads[0].ops[0].throughput_ops_s = 2_560_000.0;
        assert!(!compare(&old2, &new, &Thresholds::default()).has_regressions());
    }

    #[test]
    fn sub_floor_latency_jitter_never_regresses() {
        let old = sample_report("BENCH_6");
        let mut new = sample_report("BENCH_7");
        // +100% relative, but only +9 µs absolute: below the floor.
        new.workloads[0].ops[0].p50_us = 18.0;
        let th = Thresholds {
            latency_floor_us: 25.0,
            ..Thresholds::default()
        };
        assert!(!compare(&old, &new, &th).has_regressions());
        // Drop the floor and the same movement regresses.
        let th = Thresholds {
            latency_floor_us: 0.0,
            ..th
        };
        assert!(compare(&old, &new, &th).has_regressions());
    }

    #[test]
    fn small_sample_p99_reports_but_does_not_gate() {
        let old = sample_report("BENCH_6");
        let mut new = sample_report("BENCH_7");
        // Tail-only movement on a 95-sample row: the "p99" is the
        // second-worst sample, so it must not gate...
        new.workloads[0].ops[0].count = 95;
        new.workloads[0].ops[0].p99_us *= 3.0;
        let out = compare(&old, &new, &Thresholds::default());
        assert!(!out.has_regressions(), "{:?}", out.regressions());
        let tail = out
            .deltas
            .iter()
            .find(|d| d.metric == "p99_us")
            .expect("p99 delta");
        assert!(tail.underpowered);
        assert!(out
            .render(&Thresholds::default())
            .contains("too few samples"));
        // ...but the same movement with real sample counts on both sides
        // is a genuine tail regression and fails.
        new.workloads[0].ops[0].count = old.workloads[0].ops[0].count;
        let out = compare(&old, &new, &Thresholds::default());
        let regressed: Vec<&str> = out.regressions().iter().map(|d| d.metric).collect();
        assert_eq!(regressed, vec!["p99_us"], "{:?}", out.deltas);
    }

    #[test]
    fn unmatched_rows_are_reported_but_do_not_fail() {
        let old = sample_report("BENCH_6");
        let mut new = sample_report("BENCH_7");
        new.workloads[0].ops[0].op = "renamed".into();
        let out = compare(&old, &new, &Thresholds::default());
        assert!(!out.has_regressions());
        assert_eq!(out.unmatched.len(), 2, "{:?}", out.unmatched);
        let text = out.render(&Thresholds::default());
        assert!(text.contains("new only"), "{text}");
        assert!(text.contains("old only"), "{text}");
    }
}
