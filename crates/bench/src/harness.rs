//! The pinned-workload harness behind `BENCH_<n>.json`.
//!
//! Four workloads, each seeded and deterministic in the *operation stream*
//! it issues (latencies of course vary run to run — that is what the
//! comparator's thresholds absorb):
//!
//! - `small_op` — closed-loop 70/30 get/put mix over a 64-key space of
//!   128-byte values: the paper's metadata-sized hot-path shape.
//! - `large_value` — sequential puts then gets of 256 KiB values (64 KiB in
//!   quick mode): the streaming shape where codec and wire cost dominate.
//! - `batch` — `put_many`/`get_many` sweeps over growing batch sizes: the
//!   §IV.C batching amortization curve.
//! - `cache_hit` — the same reads through a primed `InProcessLru` versus a
//!   cache-less client: the paper's Guava-cache speedup, as a ratio the
//!   comparator can watch.
//! - `cluster` — a 70/30 mix through a three-node [`ClusterClient`] built
//!   from prefixed views of the target store (router overhead on the real
//!   target), plus a hedged-vs-unhedged read pair over tail-injected
//!   in-memory nodes so the hedging p99 win is a number the comparator can
//!   watch.
//!
//! Each workload runs against two targets: `inproc` ([`MemKv`], measuring
//! pure client overhead) and `remote` (a [`CloudServer`] behind the scaled
//! `Cloud2` netsim profile, measuring the WAN shape).

use crate::report::{
    BenchReport, EnvFingerprint, OpStats, ResourceUsage, WorkloadResult, SCHEMA_VERSION,
};
use cloudstore::{CloudClient, CloudServer, CloudServerConfig};
use cluster::{ClusterClient, ClusterPolicy};
use dscl::EnhancedClient;
use dscl_cache::InProcessLru;
use kvapi::mem::MemKv;
use kvapi::{KeyValue, Result, StoreError};
use netsim::Profile;
use obs::LatencyHistogram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The pinned workload names, in run order.
pub const WORKLOADS: &[&str] = &["small_op", "large_value", "batch", "cache_hit", "cluster"];

/// The pinned target names, in run order.
pub const TARGETS: &[&str] = &["inproc", "remote"];

/// Knobs for one harness run. The defaults are the committed-baseline
/// configuration; `quick` shrinks op counts and value sizes for CI smoke
/// runs (the resulting JSON is still schema-valid, just noisier).
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Seed for every workload's op-stream RNG.
    pub seed: u64,
    /// netsim latency scale for the remote target (1.0 = paper-like).
    pub scale: f64,
    /// Shrink op counts / value sizes for a fast smoke run.
    pub quick: bool,
}

impl Default for HarnessConfig {
    fn default() -> HarnessConfig {
        HarnessConfig {
            seed: 0x5EED,
            scale: 0.02,
            quick: false,
        }
    }
}

impl HarnessConfig {
    fn ops(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Records per-op-kind latency histograms during a workload.
#[derive(Default)]
struct OpRecorder {
    hists: BTreeMap<String, LatencyHistogram>,
}

impl OpRecorder {
    /// Time one operation under label `op`.
    fn time<R>(&mut self, op: &str, f: impl FnOnce() -> Result<R>) -> Result<R> {
        let t0 = Instant::now();
        let out = f()?;
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.hists.entry(op.to_string()).or_default().record(ns);
        Ok(out)
    }

    fn into_ops(self) -> Vec<OpStats> {
        self.hists
            .into_iter()
            .map(|(op, h)| OpStats::from_hist(op, &h.snapshot()))
            .collect()
    }
}

/// A deterministic, mildly compressible value of `len` bytes.
fn pattern_value(len: usize, tag: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(tag))
        .collect()
}

fn run_small_op(
    store: &Arc<dyn KeyValue>,
    cfg: &HarnessConfig,
    rec: &mut OpRecorder,
) -> Result<()> {
    const KEYS: usize = 64;
    // 4000 ops → ≥1000 samples on the 30% put side, enough for the p99 to
    // be a gateable statistic rather than the worst-two samples.
    let ops = cfg.ops(4000, 60);
    let value = pattern_value(128, 1);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    for i in 0..KEYS {
        store.put(&format!("small-{i:03}"), &value)?;
    }
    for _ in 0..ops {
        let key = format!("small-{:03}", rng.gen_range(0..KEYS));
        if rng.gen_bool(0.7) {
            rec.time("get", || store.get(&key))?;
        } else {
            rec.time("put", || store.put(&key, &value))?;
        }
    }
    Ok(())
}

fn run_large_value(
    store: &Arc<dyn KeyValue>,
    cfg: &HarnessConfig,
    rec: &mut OpRecorder,
) -> Result<()> {
    let size = if cfg.quick { 64 << 10 } else { 256 << 10 };
    let ops = cfg.ops(100, 6);
    let value = pattern_value(size, 2);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x1a56e);
    for _ in 0..ops {
        let key = format!("large-{}", rng.gen_range(0..4u32));
        rec.time("put_large", || store.put(&key, &value))?;
    }
    for _ in 0..ops {
        let key = format!("large-{}", rng.gen_range(0..4u32));
        rec.time("get_large", || store.get(&key))?;
    }
    Ok(())
}

fn run_batch(store: &Arc<dyn KeyValue>, cfg: &HarnessConfig, rec: &mut OpRecorder) -> Result<()> {
    let sizes: &[usize] = if cfg.quick { &[1, 8] } else { &[1, 8, 32] };
    // Enough rounds that the netsim's designed contention spikes average
    // into the mean instead of deciding it (one 20ms spike over 6 samples
    // is -67% "throughput"; over 200 it's noise).
    let rounds = cfg.ops(200, 2);
    let value = pattern_value(64, 3);
    for &size in sizes {
        let keys: Vec<String> = (0..size).map(|j| format!("batch-{size}-{j}")).collect();
        let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let entries: Vec<(&str, &[u8])> = key_refs.iter().map(|k| (*k, value.as_slice())).collect();
        for _ in 0..rounds {
            rec.time(&format!("put_many/{size}"), || store.put_many(&entries))?;
            rec.time(&format!("get_many/{size}"), || store.get_many(&key_refs))?;
        }
    }
    Ok(())
}

fn run_cache_hit(
    store: &Arc<dyn KeyValue>,
    cfg: &HarnessConfig,
    rec: &mut OpRecorder,
) -> Result<()> {
    const KEYS: usize = 32;
    // 2000 of each so both rows' p99s carry gate-grade sample counts.
    let ops = cfg.ops(2000, 40);
    let value = pattern_value(4 << 10, 4);
    let cached =
        EnhancedClient::new(Arc::clone(store)).with_cache(Arc::new(InProcessLru::new(16 << 20)));
    let uncached = EnhancedClient::new(Arc::clone(store));
    // Populate, then prime the LRU with one read per key so the measured
    // loop is all hits.
    for i in 0..KEYS {
        cached.put(&format!("ch-{i:02}"), &value)?;
    }
    for i in 0..KEYS {
        cached.get(&format!("ch-{i:02}"))?;
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xcac4e);
    for _ in 0..ops {
        let key = format!("ch-{:02}", rng.gen_range(0..KEYS));
        rec.time("get_hit", || cached.get(&key))?;
        rec.time("get_miss", || uncached.get(&key))?;
    }
    Ok(())
}

/// A namespaced view of a shared store: one cluster "node" living under a
/// key prefix, so three of them over one target store exercise the router's
/// replica fan-out against real target latency.
struct PrefixStore {
    inner: Arc<dyn KeyValue>,
    prefix: String,
}

impl PrefixStore {
    fn new(inner: Arc<dyn KeyValue>, prefix: impl Into<String>) -> PrefixStore {
        PrefixStore {
            inner,
            prefix: prefix.into(),
        }
    }
    fn full(&self, key: &str) -> String {
        format!("{}{key}", self.prefix)
    }
}

impl KeyValue for PrefixStore {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        self.inner.put(&self.full(key), value)
    }
    fn get(&self, key: &str) -> Result<Option<bytes::Bytes>> {
        self.inner.get(&self.full(key))
    }
    fn delete(&self, key: &str) -> Result<bool> {
        self.inner.delete(&self.full(key))
    }
    fn keys(&self) -> Result<Vec<String>> {
        Ok(self
            .inner
            .keys()?
            .into_iter()
            .filter_map(|k| k.strip_prefix(&self.prefix).map(str::to_string))
            .collect())
    }
    fn clear(&self) -> Result<()> {
        for key in self.keys()? {
            self.inner.delete(&self.full(&key))?;
        }
        Ok(())
    }
}

/// An in-memory store whose every `slow_every`-th read stalls for `stall` —
/// a deterministic stand-in for a replica's latency spikes, so the hedged
/// and unhedged clusters face the same tail.
struct TailStore {
    inner: MemKv,
    reads: AtomicU64,
    slow_every: u64,
    stall: Duration,
}

impl TailStore {
    fn new(name: &str, slow_every: u64, stall: Duration) -> TailStore {
        TailStore {
            inner: MemKv::new(name),
            reads: AtomicU64::new(0),
            slow_every: slow_every.max(1),
            stall,
        }
    }
}

impl KeyValue for TailStore {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        self.inner.put(key, value)
    }
    fn get(&self, key: &str) -> Result<Option<bytes::Bytes>> {
        let n = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(self.slow_every) {
            std::thread::sleep(self.stall);
        }
        self.inner.get(key)
    }
    fn delete(&self, key: &str) -> Result<bool> {
        self.inner.delete(key)
    }
    fn keys(&self) -> Result<Vec<String>> {
        self.inner.keys()
    }
    fn clear(&self) -> Result<()> {
        self.inner.clear()
    }
}

/// How often a [`TailStore`] read stalls, and for how long. At 2000 ops the
/// stalls are ~2.5% of reads — comfortably above the p99, so the unhedged
/// row's tail sits in the stall band while the hedged row's tracks the
/// hedge delay.
const TAIL_SLOW_EVERY: u64 = 40;
const TAIL_STALL: Duration = Duration::from_millis(2);
const HEDGE_DELAY: Duration = Duration::from_micros(300);

fn run_cluster(store: &Arc<dyn KeyValue>, cfg: &HarnessConfig, rec: &mut OpRecorder) -> Result<()> {
    const KEYS: usize = 48;
    let ops = cfg.ops(2000, 40);
    let value = pattern_value(256, 6);

    // Router overhead on the real target: three prefixed views of the
    // bench store form a replicated cluster (hedging off, so the op stream
    // the target sees stays deterministic under the seed).
    let nodes: Vec<(String, Arc<dyn KeyValue>)> = (0..3)
        .map(|i| {
            let id = format!("node-{i}");
            let view: Arc<dyn KeyValue> =
                Arc::new(PrefixStore::new(Arc::clone(store), format!("{id}:")));
            (id, view)
        })
        .collect();
    let routed = ClusterClient::from_stores("bench-cluster", nodes, ClusterPolicy::default());
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xc105e);
    for i in 0..KEYS {
        routed.put(&format!("cl-{i:02}"), &value)?;
    }
    for _ in 0..ops {
        let key = format!("cl-{:02}", rng.gen_range(0..KEYS));
        if rng.gen_bool(0.7) {
            rec.time("get", || routed.get(&key))?;
        } else {
            rec.time("put", || routed.put(&key, &value))?;
        }
    }

    // The hedging payoff, as a comparator-visible pair: two identical
    // three-node clusters over tail-injected in-memory stores, one with a
    // hedge delay and one without, reading the same key stream.
    let tail_cluster = |tag: &str, hedge: Option<Duration>| -> ClusterClient {
        let nodes: Vec<(String, Arc<dyn KeyValue>)> = (0..3)
            .map(|i| {
                let id = format!("node-{i}");
                let st: Arc<dyn KeyValue> = Arc::new(TailStore::new(
                    &format!("{tag}-{i}"),
                    TAIL_SLOW_EVERY,
                    TAIL_STALL,
                ));
                (id, st)
            })
            .collect();
        let policy = ClusterPolicy {
            hedge_delay: hedge,
            ..ClusterPolicy::default()
        };
        ClusterClient::from_stores(format!("tail-{tag}"), nodes, policy)
    };
    let unhedged = tail_cluster("unhedged", None);
    let hedged = tail_cluster("hedged", Some(HEDGE_DELAY));
    for i in 0..KEYS {
        let key = format!("cl-{i:02}");
        unhedged.put(&key, &value)?;
        hedged.put(&key, &value)?;
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x4ed6e);
    for _ in 0..ops {
        let key = format!("cl-{:02}", rng.gen_range(0..KEYS));
        rec.time("get_unhedged", || unhedged.get(&key))?;
        rec.time("get_hedged", || hedged.get(&key))?;
    }
    Ok(())
}

/// Run one named workload against one store, returning its result row.
/// Exposed so tests can drive a single workload against an instrumented
/// store (determinism checks, profiler attribution).
pub fn run_workload(
    name: &str,
    target: &str,
    store: &Arc<dyn KeyValue>,
    cfg: &HarnessConfig,
) -> Result<WorkloadResult> {
    let mut rec = OpRecorder::default();
    store.clear()?;
    let t0 = Instant::now();
    match name {
        "small_op" => run_small_op(store, cfg, &mut rec)?,
        "large_value" => run_large_value(store, cfg, &mut rec)?,
        "batch" => run_batch(store, cfg, &mut rec)?,
        "cache_hit" => run_cache_hit(store, cfg, &mut rec)?,
        "cluster" => run_cluster(store, cfg, &mut rec)?,
        other => {
            return Err(StoreError::Other(format!(
                "unknown workload {other:?} (pinned: {WORKLOADS:?})"
            )))
        }
    }
    Ok(WorkloadResult {
        workload: name.to_string(),
        target: target.to_string(),
        elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
        ops: rec.into_ops(),
    })
}

/// The two pinned targets. The remote server lives as long as this struct.
pub struct Targets {
    inproc: Arc<dyn KeyValue>,
    remote: Arc<dyn KeyValue>,
    _server: CloudServer,
}

impl Targets {
    /// Bring up both targets at the given netsim scale.
    pub fn start(scale: f64) -> Result<Targets> {
        let server = CloudServer::start(CloudServerConfig {
            latency: Profile::Cloud2.scaled_model(scale),
            seed: 0xbe6c,
            ..Default::default()
        })?;
        let remote: Arc<dyn KeyValue> =
            Arc::new(CloudClient::connect(server.addr()).with_name("remote"));
        Ok(Targets {
            inproc: Arc::new(MemKv::new("inproc")),
            remote,
            _server: server,
        })
    }

    /// `(name, store)` pairs in pinned order.
    pub fn all(&self) -> Vec<(&'static str, Arc<dyn KeyValue>)> {
        vec![
            ("inproc", Arc::clone(&self.inproc)),
            ("remote", Arc::clone(&self.remote)),
        ]
    }
}

/// Run the pinned matrix (optionally restricted to one workload name) and
/// return the result rows in pinned order.
pub fn run(cfg: &HarnessConfig, only: Option<&str>) -> Result<Vec<WorkloadResult>> {
    if let Some(name) = only {
        if !WORKLOADS.contains(&name) {
            return Err(StoreError::Other(format!(
                "unknown workload {name:?} (pinned: {WORKLOADS:?})"
            )));
        }
    }
    let targets = Targets::start(cfg.scale)?;
    let mut out = Vec::new();
    for (target, store) in targets.all() {
        for name in WORKLOADS {
            if only.is_some_and(|w| w != *name) {
                continue;
            }
            out.push(run_workload(name, target, &store, cfg)?);
        }
    }
    Ok(out)
}

/// Full harness run packaged as a `BENCH_<n>.json` document: process
/// resource samples bracket the workloads, and the environment fingerprint
/// records enough to judge whether two files are comparable.
pub fn run_to_report(bench: &str, cfg: &HarnessConfig, only: Option<&str>) -> Result<BenchReport> {
    let start = obs::procinfo::sample();
    let workloads = run(cfg, only)?;
    let end = obs::procinfo::sample();
    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        bench: bench.to_string(),
        env: EnvFingerprint {
            commit: current_commit(),
            scale: cfg.scale,
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            os: std::env::consts::OS.to_string(),
        },
        workloads,
        resources: ResourceUsage::between(start, end),
    };
    report.validate()?;
    Ok(report)
}

/// Resolve the current git commit by walking up from the working directory
/// to the nearest `.git/HEAD`. Returns `"unknown"` outside a checkout —
/// the fingerprint is advisory, never fatal.
pub fn current_commit() -> String {
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        if let Ok(head) = std::fs::read_to_string(d.join(".git/HEAD")) {
            let head = head.trim();
            if let Some(refname) = head.strip_prefix("ref: ") {
                if let Ok(hash) = std::fs::read_to_string(d.join(".git").join(refname)) {
                    return hash.trim().to_string();
                }
                return refname.to_string();
            }
            return head.to_string();
        }
        dir = d.parent().map(std::path::Path::to_path_buf);
    }
    "unknown".to_string()
}

/// An AES-dominated open-loop workload for exercising the sampling
/// profiler: every put encrypts and every get decrypts a 256 KiB value, so
/// a correct profile attributes the bulk of its samples to
/// `encrypt`/`decrypt`. Used by `udsm-cli profile` and the acceptance test.
pub fn run_aes_demo(ops: usize) -> Result<()> {
    let store: Arc<dyn KeyValue> = Arc::new(MemKv::new("profile-demo"));
    let client =
        EnhancedClient::new(store).with_codec(Box::new(dscl_crypto::AesCodec::from_passphrase(
            "bench-profile",
            dscl_crypto::KeySize::Aes128,
            dscl_crypto::codec::Mode::Cbc,
        )));
    let value = pattern_value(256 << 10, 5);
    for i in 0..ops {
        let key = format!("prof-{}", i % 8);
        client.put(&key, &value)?;
        client.get(&key)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Delegates to MemKv while logging every op it sees, so two runs can
    /// be compared op-for-op.
    struct RecordingStore {
        inner: MemKv,
        log: Mutex<Vec<String>>,
    }

    impl RecordingStore {
        fn new() -> RecordingStore {
            RecordingStore {
                inner: MemKv::new("recording"),
                log: Mutex::new(Vec::new()),
            }
        }
        fn note(&self, entry: String) {
            self.log.lock().unwrap().push(entry);
        }
    }

    impl KeyValue for RecordingStore {
        fn name(&self) -> &str {
            "recording"
        }
        fn put(&self, key: &str, value: &[u8]) -> Result<()> {
            self.note(format!("put {key} {}", value.len()));
            self.inner.put(key, value)
        }
        fn get(&self, key: &str) -> Result<Option<bytes::Bytes>> {
            self.note(format!("get {key}"));
            self.inner.get(key)
        }
        fn delete(&self, key: &str) -> Result<bool> {
            self.note(format!("delete {key}"));
            self.inner.delete(key)
        }
        fn clear(&self) -> Result<()> {
            self.inner.clear()
        }
        fn keys(&self) -> Result<Vec<String>> {
            self.inner.keys()
        }
    }

    fn op_stream(name: &str, cfg: &HarnessConfig) -> Vec<String> {
        let store = Arc::new(RecordingStore::new());
        let dyn_store: Arc<dyn KeyValue> = store.clone();
        run_workload(name, "inproc", &dyn_store, cfg).unwrap();
        let log = store.log.lock().unwrap();
        log.clone()
    }

    #[test]
    fn workload_op_streams_are_deterministic_under_a_seed() {
        let cfg = HarnessConfig {
            quick: true,
            ..HarnessConfig::default()
        };
        for name in WORKLOADS {
            let a = op_stream(name, &cfg);
            let b = op_stream(name, &cfg);
            assert!(!a.is_empty(), "{name} issued no ops");
            assert_eq!(a, b, "{name}: same seed must issue the same op stream");
        }
        // A different seed perturbs at least the keyed workloads.
        let other = HarnessConfig {
            seed: 0xD1FF,
            ..cfg
        };
        assert_ne!(
            op_stream("small_op", &cfg),
            op_stream("small_op", &other),
            "different seeds should pick different keys"
        );
    }

    #[test]
    fn every_pinned_workload_produces_expected_op_rows() {
        let cfg = HarnessConfig {
            quick: true,
            ..HarnessConfig::default()
        };
        let store: Arc<dyn KeyValue> = Arc::new(MemKv::new("rows"));
        let expect: &[(&str, &[&str])] = &[
            ("small_op", &["get", "put"]),
            ("large_value", &["get_large", "put_large"]),
            (
                "batch",
                &["get_many/1", "get_many/8", "put_many/1", "put_many/8"],
            ),
            ("cache_hit", &["get_hit", "get_miss"]),
            ("cluster", &["get", "get_hedged", "get_unhedged", "put"]),
        ];
        for (name, ops) in expect {
            let result = run_workload(name, "inproc", &store, &cfg).unwrap();
            let got: Vec<&str> = result.ops.iter().map(|o| o.op.as_str()).collect();
            assert_eq!(&got, ops, "{name}");
            for op in &result.ops {
                assert!(op.count > 0, "{name}/{}", op.op);
                assert!(op.throughput_ops_s > 0.0, "{name}/{}", op.op);
            }
        }
    }

    #[test]
    fn cluster_hedging_cuts_the_tail_p99() {
        // Full op counts: 2000 reads per row puts the p99 above the
        // comparator's tail_min_count, so this is the same statistic the
        // gate watches in BENCH_<n>.json.
        let cfg = HarnessConfig::default();
        let store: Arc<dyn KeyValue> = Arc::new(MemKv::new("hedge"));
        let result = run_workload("cluster", "inproc", &store, &cfg).unwrap();
        let p99 = |op: &str| {
            result
                .ops
                .iter()
                .find(|o| o.op == op)
                .map(|o| o.p99_us)
                .unwrap_or(f64::NAN)
        };
        let (hedged, unhedged) = (p99("get_hedged"), p99("get_unhedged"));
        // The injected stalls must dominate the unhedged tail (2 ms stall
        // band, generous floor for scheduler noise)…
        assert!(
            unhedged > 1_200.0,
            "unhedged p99 should sit in the stall band, got {unhedged} µs"
        );
        // …and the hedge must beat it: its tail tracks the 300 µs hedge
        // delay plus a fast replica read, far under the stall.
        assert!(
            hedged < unhedged,
            "hedged p99 {hedged} µs should beat unhedged {unhedged} µs"
        );
    }

    #[test]
    fn unknown_workload_is_rejected() {
        let store: Arc<dyn KeyValue> = Arc::new(MemKv::new("x"));
        let err = run_workload("nope", "inproc", &store, &HarnessConfig::default()).unwrap_err();
        assert!(err.to_string().contains("unknown workload"), "{err}");
    }

    #[test]
    fn quick_matrix_run_yields_a_valid_report() {
        let cfg = HarnessConfig {
            quick: true,
            scale: 0.0,
            ..HarnessConfig::default()
        };
        let report = run_to_report("BENCH_TEST", &cfg, None).unwrap();
        assert_eq!(report.workloads.len(), WORKLOADS.len() * TARGETS.len());
        let json = report.to_json().unwrap();
        BenchReport::from_json(&json).unwrap();
    }

    #[test]
    fn single_workload_filter_restricts_the_matrix() {
        let cfg = HarnessConfig {
            quick: true,
            scale: 0.0,
            ..HarnessConfig::default()
        };
        let rows = run(&cfg, Some("small_op")).unwrap();
        assert_eq!(rows.len(), TARGETS.len());
        assert!(rows.iter().all(|r| r.workload == "small_op"));
        assert!(run(&cfg, Some("bogus")).is_err());
    }
}
