//! Shared benchmark testbed: the paper's five stores, assembled.
//!
//! §V tests: a file system, a MySQL database (→ minisql), two commercial
//! cloud stores (→ cloudstore with the cloud1/cloud2 WAN profiles), and a
//! Redis instance (→ miniredis) which "also acts as a remote process cache
//! for the other data stores"; a Guava cache (→ `InProcessLru`) acts as the
//! in-process cache. [`Testbed::start`] brings all of that up on loopback
//! ports; `scale` shrinks the injected WAN latencies proportionally so quick
//! runs keep the figures' *shape* at a fraction of the wall-clock cost.

#![forbid(unsafe_code)]

pub mod compare;
pub mod harness;
pub mod report;

use cloudstore::{CloudClient, CloudServer, CloudServerConfig};
use fskv::FsKv;
use kvapi::KeyValue;
use miniredis::{RedisKv, RemoteCache, Server as RedisServer};
use minisql::wal::SyncMode;
use minisql::{SqlKv, SqlServer, SqlServerConfig};
use netsim::Profile;
use std::path::PathBuf;
use std::sync::Arc;

/// Handles to every running server plus client factories.
pub struct Testbed {
    /// Temp root for fskv and minisql data.
    pub dir: PathBuf,
    redis: RedisServer,
    cloud1: CloudServer,
    cloud2: CloudServer,
    sql: SqlServer,
    remove_on_drop: bool,
}

impl Testbed {
    /// Start every server. `scale` multiplies the WAN latency profiles
    /// (1.0 = paper-like, 0.05 = quick CI runs).
    pub fn start(scale: f64) -> Testbed {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "udsm-testbed-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create testbed dir");
        let redis = RedisServer::start().expect("start miniredis");
        let cloud1 = CloudServer::start(CloudServerConfig {
            latency: Profile::Cloud1.scaled_model(scale),
            seed: 0xc1,
            ..Default::default()
        })
        .expect("start cloud1");
        let cloud2 = CloudServer::start(CloudServerConfig {
            latency: Profile::Cloud2.scaled_model(scale),
            seed: 0xc2,
            ..Default::default()
        })
        .expect("start cloud2");
        let sql = SqlServer::start(SqlServerConfig {
            data_dir: Some(dir.join("minisql")),
            sync: SyncMode::Always, // the paper's "costly commit operations"
            ..Default::default()
        })
        .expect("start minisql");
        Testbed {
            dir,
            redis,
            cloud1,
            cloud2,
            sql,
            remove_on_drop: true,
        }
    }

    /// File system store client.
    pub fn fs(&self) -> Arc<dyn KeyValue> {
        Arc::new(
            FsKv::open(self.dir.join("fskv"))
                .expect("open fskv")
                .with_name("filesystem"),
        )
    }

    /// SQL store client (the MySQL stand-in).
    pub fn sql(&self) -> Arc<dyn KeyValue> {
        Arc::new(
            SqlKv::connect(self.sql.addr())
                .expect("connect minisql")
                .with_name("minisql"),
        )
    }

    /// Cloud Store 1 client (distant, variable).
    pub fn cloud1(&self) -> Arc<dyn KeyValue> {
        Arc::new(CloudClient::connect(self.cloud1.addr()).with_name("cloud1"))
    }

    /// Cloud Store 2 client (closer, steadier).
    pub fn cloud2(&self) -> Arc<dyn KeyValue> {
        Arc::new(CloudClient::connect(self.cloud2.addr()).with_name("cloud2"))
    }

    /// Redis-as-a-data-store client (namespaced away from the cache role).
    pub fn redis(&self) -> Arc<dyn KeyValue> {
        Arc::new(
            RedisKv::connect(self.redis.addr())
                .with_prefix("data:")
                .with_name("redis"),
        )
    }

    /// The remote process cache (same Redis instance, `cache:` namespace —
    /// exactly the paper's setup).
    pub fn remote_cache(&self) -> RemoteCache {
        RemoteCache::connect(self.redis.addr())
    }

    /// All five stores in the paper's order.
    pub fn all_stores(&self) -> Vec<(&'static str, Arc<dyn KeyValue>)> {
        vec![
            ("filesystem", self.fs()),
            ("minisql", self.sql()),
            ("cloud1", self.cloud1()),
            ("cloud2", self.cloud2()),
            ("redis", self.redis()),
        ]
    }

    /// Keep the data directory on drop (debugging).
    pub fn keep_dir(&mut self) {
        self.remove_on_drop = false;
    }
}

impl Drop for Testbed {
    fn drop(&mut self) {
        if self.remove_on_drop {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_brings_up_all_five_stores() {
        let tb = Testbed::start(0.0);
        for (name, store) in tb.all_stores() {
            store
                .put("smoke", name.as_bytes())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                store.get("smoke").unwrap().as_deref(),
                Some(name.as_bytes()),
                "{name}"
            );
            store.clear().unwrap();
        }
        let cache = tb.remote_cache();
        assert!(cache.ping().unwrap());
    }

    #[test]
    fn redis_store_and_cache_namespaces_are_disjoint() {
        use dscl_cache::Cache;
        let tb = Testbed::start(0.0);
        let store = tb.redis();
        let cache = tb.remote_cache();
        store.put("k", b"store-value").unwrap();
        cache.put("k", bytes::Bytes::from_static(b"cache-value"));
        assert_eq!(store.get("k").unwrap().unwrap(), &b"store-value"[..]);
        assert_eq!(
            cache.get("k").unwrap(),
            bytes::Bytes::from_static(b"cache-value")
        );
        store.clear().unwrap();
        assert_eq!(
            cache.get("k").unwrap(),
            bytes::Bytes::from_static(b"cache-value")
        );
    }
}
