//! The `BENCH_<n>.json` schema: what one pinned-workload harness run
//! records, versioned so future PRs can evolve the format without breaking
//! the comparator on historical files.
//!
//! One file is one run: an environment fingerprint (commit, latency scale,
//! CPU count, OS), one [`WorkloadResult`] per (workload × target) with
//! per-op latency percentiles and throughput, and the process resource
//! usage around the run (start/end [`obs::ProcSample`]s plus their delta).
//! Latencies are microseconds — the unit the paper's figures use — taken
//! from `obs` log-linear histograms, so percentile error is bounded at
//! 6.25%.

use kvapi::{Result, StoreError};
use obs::procinfo::{ProcDelta, ProcSample};
use serde::{Deserialize, Serialize};

/// Current schema version; bump when the JSON shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Latency/throughput summary for one operation kind within a workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OpStats {
    /// Operation label ("get", "put_large", "get_many/8", ...).
    pub op: String,
    /// Operations measured.
    pub count: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 95th percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// Closed-loop throughput: ops divided by summed op latency.
    pub throughput_ops_s: f64,
}

impl OpStats {
    /// Summarize a histogram of per-op nanosecond samples.
    pub fn from_hist(op: impl Into<String>, snap: &obs::HistogramSnapshot) -> OpStats {
        let secs = snap.sum as f64 / 1e9;
        OpStats {
            op: op.into(),
            count: snap.count,
            mean_us: snap.mean() / 1e3,
            p50_us: snap.p50() as f64 / 1e3,
            p95_us: snap.quantile(0.95) as f64 / 1e3,
            p99_us: snap.p99() as f64 / 1e3,
            throughput_ops_s: if secs > 0.0 {
                snap.count as f64 / secs
            } else {
                0.0
            },
        }
    }
}

/// One workload run against one target store.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadResult {
    /// Pinned workload name ("small_op", "large_value", "batch",
    /// "cache_hit").
    pub workload: String,
    /// Target store ("inproc" or "remote").
    pub target: String,
    /// Wall-clock time for the whole workload, milliseconds.
    pub elapsed_ms: f64,
    /// Per-op-kind stats.
    pub ops: Vec<OpStats>,
}

/// Where and how the run happened — enough to judge comparability.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnvFingerprint {
    /// Git commit hash (or "unknown" outside a checkout).
    pub commit: String,
    /// netsim latency scale factor the remote target ran at.
    pub scale: f64,
    /// Available CPU parallelism.
    pub cpus: u64,
    /// `std::env::consts::OS`.
    pub os: String,
}

/// Process resource usage bracketing the run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Sample taken before the first workload.
    pub start: ProcSample,
    /// Sample taken after the last workload.
    pub end: ProcSample,
    /// `end − start`.
    pub delta: ProcDelta,
}

impl ResourceUsage {
    /// Bracket two samples.
    pub fn between(start: ProcSample, end: ProcSample) -> ResourceUsage {
        ResourceUsage {
            start,
            end,
            delta: start.delta_to(&end),
        }
    }
}

/// A complete `BENCH_<n>.json` document.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u64,
    /// The file's identity, e.g. "BENCH_6".
    pub bench: String,
    /// Run environment.
    pub env: EnvFingerprint,
    /// One entry per (workload × target).
    pub workloads: Vec<WorkloadResult>,
    /// Process resource usage around the run.
    pub resources: ResourceUsage,
}

impl BenchReport {
    /// Serialize to the committed JSON form.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| StoreError::Other(format!("bench report does not serialize: {e}")))
    }

    /// Parse and validate a report. Rejects unknown schema versions and
    /// structurally empty reports, so the CI gate catches a truncated or
    /// hand-mangled file early.
    pub fn from_json(json: &str) -> Result<BenchReport> {
        let report: BenchReport = serde_json::from_str(json)
            .map_err(|e| StoreError::Other(format!("bench report does not parse: {e}")))?;
        report.validate()?;
        Ok(report)
    }

    /// Structural validity: known schema, at least one workload, every
    /// workload carrying at least one op row with a positive count.
    pub fn validate(&self) -> Result<()> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(StoreError::Other(format!(
                "unsupported bench schema version {} (this build reads {SCHEMA_VERSION})",
                self.schema_version
            )));
        }
        if self.workloads.is_empty() {
            return Err(StoreError::Other("bench report has no workloads".into()));
        }
        for w in &self.workloads {
            if w.ops.is_empty() {
                return Err(StoreError::Other(format!(
                    "workload {}/{} has no op stats",
                    w.workload, w.target
                )));
            }
            for op in &w.ops {
                if op.count == 0 {
                    return Err(StoreError::Other(format!(
                        "op {}/{}/{} has zero samples",
                        w.workload, w.target, op.op
                    )));
                }
            }
        }
        Ok(())
    }

    /// Load from a file path (parse + validate).
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<BenchReport> {
        BenchReport::from_json(&std::fs::read_to_string(path)?)
    }

    /// Write the committed JSON form to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        std::fs::write(path, self.to_json()?).map_err(StoreError::from)
    }

    /// Human-oriented one-screen summary (stderr companion to the JSON).
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{} @ {} (scale {}, {} cpus, {})\n",
            self.bench, self.env.commit, self.env.scale, self.env.cpus, self.env.os
        );
        out.push_str(&format!(
            "{:<12} {:<8} {:<14} {:>8} {:>10} {:>10} {:>10} {:>12}\n",
            "workload", "target", "op", "count", "p50_us", "p95_us", "p99_us", "ops/s"
        ));
        for w in &self.workloads {
            for op in &w.ops {
                out.push_str(&format!(
                    "{:<12} {:<8} {:<14} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>12.0}\n",
                    w.workload,
                    w.target,
                    op.op,
                    op.count,
                    op.p50_us,
                    op.p95_us,
                    op.p99_us,
                    op.throughput_ops_s
                ));
            }
        }
        let d = &self.resources.delta;
        out.push_str(&format!(
            "resources: rss {:+} B, cpu user {} ms / sys {} ms, fds {:+}, threads {:+}\n",
            d.rss_bytes, d.user_cpu_ms, d.sys_cpu_ms, d.open_fds, d.threads
        ));
        out
    }
}

/// A minimal, structurally valid report for tests and doctoring.
#[cfg(test)]
pub fn sample_report(bench: &str) -> BenchReport {
    let start = obs::procinfo::sample();
    BenchReport {
        schema_version: SCHEMA_VERSION,
        bench: bench.to_string(),
        env: EnvFingerprint {
            commit: "deadbeef".into(),
            scale: 0.02,
            cpus: 4,
            os: "linux".into(),
        },
        workloads: vec![WorkloadResult {
            workload: "small_op".into(),
            target: "inproc".into(),
            elapsed_ms: 12.5,
            ops: vec![OpStats {
                op: "get".into(),
                count: 2800,
                mean_us: 10.0,
                p50_us: 9.0,
                p95_us: 20.0,
                p99_us: 30.0,
                throughput_ops_s: 100_000.0,
            }],
        }],
        resources: ResourceUsage::between(start, obs::procinfo::sample()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report("BENCH_6");
        let json = report.to_json().unwrap();
        let back = BenchReport::from_json(&json).unwrap();
        assert_eq!(back, report, "serialize → parse must be the identity");
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let mut report = sample_report("BENCH_6");
        report.schema_version = SCHEMA_VERSION + 1;
        let json = report.to_json().unwrap();
        let err = BenchReport::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("schema version"), "{err}");
    }

    #[test]
    fn empty_or_zero_sample_reports_are_rejected() {
        let mut report = sample_report("BENCH_6");
        report.workloads.clear();
        assert!(report.validate().is_err());

        let mut report = sample_report("BENCH_6");
        report.workloads[0].ops[0].count = 0;
        let err = report.validate().unwrap_err();
        assert!(err.to_string().contains("zero samples"), "{err}");
    }

    #[test]
    fn op_stats_summarize_a_histogram() {
        let h = obs::LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1_000); // 1..=1000 µs
        }
        let stats = OpStats::from_hist("get", &h.snapshot());
        assert_eq!(stats.count, 1000);
        assert!((stats.mean_us - 500.5).abs() < 35.0, "{stats:?}");
        assert!((stats.p50_us - 500.0).abs() / 500.0 < 0.07, "{stats:?}");
        assert!((stats.p99_us - 990.0).abs() / 990.0 < 0.07, "{stats:?}");
        // 1000 ops in ~0.5005 s of summed latency ≈ 2000 ops/s.
        assert!((stats.throughput_ops_s - 1998.0).abs() < 50.0, "{stats:?}");
    }

    #[test]
    fn render_table_mentions_every_op_row() {
        let report = sample_report("BENCH_6");
        let table = report.render_table();
        assert!(table.contains("BENCH_6"), "{table}");
        assert!(table.contains("small_op"), "{table}");
        assert!(table.contains("resources:"), "{table}");
    }
}
