//! Any key-value store as a cache (the paper's third caching approach).
//!
//! §III: "The third approach for achieving caching is provided by the UDSM.
//! … any data store supported by the UDSM can function as a cache or
//! secondary repository for another data store supported by the UDSM."
//! [`StoreCache`] adapts a [`KeyValue`] store to the [`Cache`] interface;
//! store errors are absorbed as misses/no-ops because a cache, unlike a
//! store, is allowed to forget.

use crate::api::{Cache, CacheStats, Counters};
use bytes::Bytes;
use kvapi::KeyValue;

/// A [`Cache`] backed by an arbitrary [`KeyValue`] store.
///
/// Note the semantic shift the adapter performs: the underlying store's
/// failures (network blips, timeouts) degrade to cache misses rather than
/// surfacing as errors, and `put`/`remove` failures are dropped — the
/// authoritative copy lives in the main data store, so losing a cached copy
/// is always safe.
pub struct StoreCache<S> {
    store: S,
    name: String,
    counters: Counters,
}

impl<S: KeyValue> StoreCache<S> {
    /// Wrap a store.
    pub fn new(store: S) -> StoreCache<S> {
        let name = format!("store-cache({})", store.name());
        StoreCache {
            store,
            name,
            counters: Counters::default(),
        }
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.store
    }
}

impl<S: KeyValue> Cache for StoreCache<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn get(&self, key: &str) -> Option<Bytes> {
        match self.store.get(key) {
            Ok(Some(v)) => {
                self.counters.hit();
                Some(v)
            }
            Ok(None) | Err(_) => {
                self.counters.miss();
                None
            }
        }
    }

    fn put(&self, key: &str, value: Bytes) {
        self.counters.insert();
        let _ = self.store.put(key, &value);
    }

    fn remove(&self, key: &str) -> bool {
        self.store.delete(key).unwrap_or(false)
    }

    fn clear(&self) {
        let _ = self.store.clear();
    }

    fn len(&self) -> usize {
        self.store.stats().map(|s| s.keys as usize).unwrap_or(0)
    }

    fn stats(&self) -> CacheStats {
        let st = self.store.stats().unwrap_or_default();
        self.counters.snapshot(st.bytes, st.keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvapi::mem::MemKv;
    use kvapi::{Result, StoreError};

    #[test]
    fn store_backed_cache_basics() {
        let c = StoreCache::new(MemKv::new("mem"));
        assert!(c.get("k").is_none());
        c.put("k", Bytes::from_static(b"v"));
        assert_eq!(c.get("k").unwrap(), Bytes::from_static(b"v"));
        assert!(c.remove("k"));
        assert_eq!(c.len(), 0);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    /// A store that always fails: the cache must degrade, not error.
    struct FailingStore;
    impl KeyValue for FailingStore {
        fn name(&self) -> &str {
            "failing"
        }
        fn put(&self, _: &str, _: &[u8]) -> Result<()> {
            Err(StoreError::Timeout)
        }
        fn get(&self, _: &str) -> Result<Option<Bytes>> {
            Err(StoreError::Timeout)
        }
        fn delete(&self, _: &str) -> Result<bool> {
            Err(StoreError::Timeout)
        }
        fn keys(&self) -> Result<Vec<String>> {
            Err(StoreError::Timeout)
        }
        fn clear(&self) -> Result<()> {
            Err(StoreError::Timeout)
        }
        fn stats(&self) -> Result<kvapi::StoreStats> {
            Err(StoreError::Timeout)
        }
    }

    #[test]
    fn failures_degrade_to_misses() {
        let c = StoreCache::new(FailingStore);
        c.put("k", Bytes::from_static(b"v")); // swallowed
        assert!(c.get("k").is_none()); // miss, not panic/error
        assert!(!c.remove("k"));
        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().misses, 1);
    }
}
