//! The [`Cache`] trait and shared statistics plumbing.

use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache hit/miss/eviction counters. Cheap to clone (it is a snapshot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a value.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values displaced by the replacement policy.
    pub evictions: u64,
    /// Values inserted.
    pub insertions: u64,
    /// Current payload bytes held.
    pub bytes: u64,
    /// Current entry count.
    pub entries: u64,
}

impl CacheStats {
    /// Hit rate in \[0,1\]; 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Internal atomic counters shared by the implementations in this crate.
#[derive(Default)]
pub(crate) struct Counters {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub insertions: AtomicU64,
}

impl Counters {
    pub fn snapshot(&self, bytes: u64, entries: u64) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            bytes,
            entries,
        }
    }
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
    pub fn evict(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }
    pub fn insert(&self) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }
}

/// The cache interface (paper §III, Fig. 4).
///
/// Values are `Bytes` (reference-counted), so an in-process `get` hands the
/// caller a zero-copy view — the property behind the paper's observation
/// that in-process cache reads are fast and size-independent. Caches are
/// *not* responsible for expiration: the DSCL stores expiry metadata inside
/// the value envelope.
pub trait Cache: Send + Sync {
    /// Short display name ("lru", "clock", "gds", "remote-redis", ...).
    fn name(&self) -> &str;

    /// Look up `key`. Counts a hit or miss.
    fn get(&self, key: &str) -> Option<Bytes>;

    /// Insert or replace `key`. May trigger evictions.
    fn put(&self, key: &str, value: Bytes);

    /// Remove `key`; returns whether it was present.
    fn remove(&self, key: &str) -> bool;

    /// Drop every entry.
    fn clear(&self);

    /// Current entry count.
    fn len(&self) -> usize;

    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    fn stats(&self) -> CacheStats;
}

/// Mirror a cache's counters into an [`obs::Registry`], labeled by the
/// cache's display name. Collector-style: totals are overwritten with the
/// current values, so calling this repeatedly (e.g. on every scrape, or
/// after each traced DSCL operation) is idempotent.
pub fn publish_stats(cache: &dyn Cache, registry: &obs::Registry) {
    let s = cache.stats();
    let label: &[(&str, &str)] = &[("cache", cache.name())];
    registry.counter("cache_hits_total", label).set(s.hits);
    registry.counter("cache_misses_total", label).set(s.misses);
    registry
        .counter("cache_evictions_total", label)
        .set(s.evictions);
    registry
        .counter("cache_insertions_total", label)
        .set(s.insertions);
    registry
        .gauge("cache_bytes", label)
        .set(s.bytes.min(i64::MAX as u64) as i64);
    registry
        .gauge("cache_entries", label)
        .set(s.entries.min(i64::MAX as u64) as i64);
}

/// `Arc<C>` is a cache too, so callers can share one.
impl<C: Cache + ?Sized> Cache for Arc<C> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn get(&self, key: &str) -> Option<Bytes> {
        (**self).get(key)
    }
    fn put(&self, key: &str, value: Bytes) {
        (**self).put(key, value)
    }
    fn remove(&self, key: &str) -> bool {
        (**self).remove(key)
    }
    fn clear(&self) {
        (**self).clear()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn stats(&self) -> CacheStats {
        (**self).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_math() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn publish_stats_mirrors_counters() {
        let cache = crate::InProcessLru::new(1 << 16);
        cache.put("a", Bytes::from_static(b"xyz"));
        cache.get("a");
        cache.get("missing");
        let reg = obs::Registry::new();
        publish_stats(&cache, &reg);
        let text = reg.render_prometheus();
        assert!(text.contains("cache_hits_total{cache=\"lru\"} 1"), "{text}");
        assert!(
            text.contains("cache_misses_total{cache=\"lru\"} 1"),
            "{text}"
        );
        assert!(text.contains("cache_entries{cache=\"lru\"} 1"), "{text}");
        // Re-publishing is idempotent, not additive.
        publish_stats(&cache, &reg);
        assert!(reg
            .render_prometheus()
            .contains("cache_hits_total{cache=\"lru\"} 1"));
    }

    #[test]
    fn counters_snapshot() {
        let c = Counters::default();
        c.hit();
        c.hit();
        c.miss();
        c.evict();
        c.insert();
        let s = c.snapshot(10, 1);
        assert_eq!(
            s,
            CacheStats {
                hits: 2,
                misses: 1,
                evictions: 1,
                insertions: 1,
                bytes: 10,
                entries: 1
            }
        );
    }
}
