//! CLOCK replacement: one reference bit per entry, a sweeping hand.
//!
//! The paper cites MemC3's memcached optimizations, which replace strict
//! LRU with "a CLOCK-based eviction algorithm requiring only one extra bit
//! per cache entry" to cut metadata and lock traffic. This implementation
//! exists both as a usable policy and as the comparison point for the
//! replacement-policy ablation benchmark.

use crate::api::{Cache, CacheStats, Counters};
use bytes::Bytes;
use parking_lot::Mutex;

struct Slot {
    key: String,
    value: Bytes,
    referenced: bool,
}

struct Inner {
    slots: Vec<Option<Slot>>,
    map: std::collections::HashMap<String, usize>,
    hand: usize,
    bytes: u64,
}

/// Fixed-capacity (entry-count) CLOCK cache.
pub struct ClockCache {
    inner: Mutex<Inner>,
    capacity: usize,
    counters: Counters,
}

impl ClockCache {
    /// Cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> ClockCache {
        let capacity = capacity.max(1);
        ClockCache {
            inner: Mutex::new(Inner {
                slots: (0..capacity).map(|_| None).collect(),
                map: std::collections::HashMap::new(),
                hand: 0,
                bytes: 0,
            }),
            capacity,
            counters: Counters::default(),
        }
    }
}

impl Cache for ClockCache {
    fn name(&self) -> &str {
        "clock"
    }

    fn get(&self, key: &str) -> Option<Bytes> {
        let mut g = self.inner.lock();
        match g.map.get(key).copied() {
            Some(idx) => {
                let slot = g.slots[idx].as_mut().expect("mapped slot is filled");
                slot.referenced = true;
                let v = slot.value.clone();
                drop(g);
                self.counters.hit();
                Some(v)
            }
            None => {
                drop(g);
                self.counters.miss();
                None
            }
        }
    }

    fn put(&self, key: &str, value: Bytes) {
        let mut g = self.inner.lock();
        self.counters.insert();
        if let Some(idx) = g.map.get(key).copied() {
            let old_len = {
                let slot = g.slots[idx].as_mut().expect("mapped slot is filled");
                let old = slot.value.len() as u64;
                slot.value = value.clone();
                slot.referenced = true;
                old
            };
            g.bytes = g.bytes - old_len + value.len() as u64;
            return;
        }
        // Find a victim slot: sweep, clearing reference bits, until an
        // unreferenced (or empty) slot appears. Bounded by 2 full sweeps.
        let mut victim = None;
        for _ in 0..2 * self.capacity {
            let hand = g.hand;
            g.hand = (hand + 1) % self.capacity;
            match g.slots[hand] {
                None => {
                    victim = Some(hand);
                    break;
                }
                Some(ref mut slot) if slot.referenced => {
                    slot.referenced = false;
                }
                Some(_) => {
                    victim = Some(hand);
                    break;
                }
            }
        }
        let idx = victim.unwrap_or(0);
        if let Some(old) = g.slots[idx].take() {
            g.bytes -= old.value.len() as u64;
            g.map.remove(&old.key);
            self.counters.evict();
        }
        g.bytes += value.len() as u64;
        g.map.insert(key.to_string(), idx);
        g.slots[idx] = Some(Slot {
            key: key.to_string(),
            value,
            referenced: true,
        });
    }

    fn remove(&self, key: &str) -> bool {
        let mut g = self.inner.lock();
        match g.map.remove(key) {
            Some(idx) => {
                if let Some(old) = g.slots[idx].take() {
                    g.bytes -= old.value.len() as u64;
                }
                true
            }
            None => false,
        }
    }

    fn clear(&self) {
        let mut g = self.inner.lock();
        for s in g.slots.iter_mut() {
            *s = None;
        }
        g.map.clear();
        g.bytes = 0;
        g.hand = 0;
    }

    fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    fn stats(&self) -> CacheStats {
        let g = self.inner.lock();
        self.counters.snapshot(g.bytes, g.map.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let c = ClockCache::new(8);
        c.put("a", Bytes::from_static(b"1"));
        assert_eq!(c.get("a").unwrap(), Bytes::from_static(b"1"));
        assert!(c.get("b").is_none());
        assert!(c.remove("a"));
        assert!(!c.remove("a"));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn capacity_is_bounded() {
        let c = ClockCache::new(10);
        for i in 0..100 {
            c.put(&format!("k{i}"), Bytes::from_static(b"v"));
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.stats().evictions, 90);
    }

    #[test]
    fn reference_bit_protects_touched_entries() {
        let c = ClockCache::new(4);
        for k in ["a", "b", "c", "d"] {
            c.put(k, Bytes::from_static(b"v"));
        }
        // Freshly inserted entries all carry the reference bit, so this
        // insert sweeps once (clearing every bit) and evicts like FIFO.
        c.put("e", Bytes::from_static(b"v"));
        assert!(
            c.get("a").is_none(),
            "first insert under pressure evicts FIFO-style"
        );
        // Now only "e" (fresh) and "c" (touched here) hold reference bits;
        // the next insertion must evict one of the untouched b/d instead.
        assert!(c.get("c").is_some());
        c.put("f", Bytes::from_static(b"v"));
        assert!(
            c.get("c").is_some(),
            "entry with reference bit set was evicted ahead of unreferenced ones"
        );
        let survivors = ["b", "d"].iter().filter(|k| c.get(k).is_some()).count();
        assert_eq!(
            survivors, 1,
            "exactly one unreferenced entry should have been evicted"
        );
    }

    #[test]
    fn replace_updates_value_and_bytes() {
        let c = ClockCache::new(4);
        c.put("k", Bytes::from(vec![0u8; 100]));
        c.put("k", Bytes::from(vec![1u8; 10]));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().bytes, 10);
        assert_eq!(c.get("k").unwrap(), Bytes::from(vec![1u8; 10]));
    }

    #[test]
    fn clear_empties() {
        let c = ClockCache::new(4);
        c.put("a", Bytes::from_static(b"1"));
        c.put("b", Bytes::from_static(b"2"));
        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().bytes, 0);
        assert!(c.get("a").is_none());
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let c = Arc::new(ClockCache::new(64));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        let k = format!("k{}", (t * 13 + i) % 100);
                        c.put(&k, Bytes::from(vec![t as u8; 8]));
                        let _ = c.get(&k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 64);
    }
}
