//! Greedy-Dual-Size replacement.
//!
//! §III of the paper: "If caches become full, a cache replacement algorithm
//! such as least recently used (LRU) or greedy-dual-size can be used." GDS
//! assigns each object a credit `H = L + cost/size`; on eviction the
//! minimum-H object leaves and the global inflation value `L` rises to that
//! minimum, so small and recently useful objects outlive large cold ones.
//! With `cost = 1` this is the GDS(1) variant from Cao & Irani — a good fit
//! for data store clients where every miss costs roughly one round trip
//! regardless of size.

use crate::api::{Cache, CacheStats, Counters};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};

/// Entry priority, ordered by (H value bits, tiebreak sequence).
/// H ≥ 0 always, and for non-negative floats the IEEE-754 bit pattern
/// orders identically to the value, so storing bits keeps `Ord` exact.
type Pri = (u64, u64);

struct Entry {
    value: Bytes,
    pri: Pri,
}

struct Inner {
    map: HashMap<String, Entry>,
    queue: BTreeSet<(Pri, String)>,
    /// The inflation value L.
    l: f64,
    bytes: u64,
    seq: u64,
}

/// Byte-budgeted Greedy-Dual-Size cache.
pub struct GdsCache {
    inner: Mutex<Inner>,
    capacity_bytes: u64,
    counters: Counters,
}

impl GdsCache {
    /// Cache bounded by `capacity_bytes` of payload.
    pub fn new(capacity_bytes: u64) -> GdsCache {
        GdsCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                queue: BTreeSet::new(),
                l: 0.0,
                bytes: 0,
                seq: 0,
            }),
            capacity_bytes: capacity_bytes.max(1),
            counters: Counters::default(),
        }
    }

    fn h_value(l: f64, size: usize) -> f64 {
        // cost = 1 (uniform miss penalty), size in bytes (min 1).
        l + 1.0 / (size.max(1) as f64)
    }

    fn reprioritize(inner: &mut Inner, key: &str) {
        if let Some(e) = inner.map.get(key) {
            inner.queue.remove(&(e.pri, key.to_string()));
            let h = Self::h_value(inner.l, e.value.len());
            inner.seq += 1;
            let pri = (h.to_bits(), inner.seq);
            inner.queue.insert((pri, key.to_string()));
            inner.map.get_mut(key).expect("checked above").pri = pri;
        }
    }
}

impl Cache for GdsCache {
    fn name(&self) -> &str {
        "gds"
    }

    fn get(&self, key: &str) -> Option<Bytes> {
        let mut g = self.inner.lock();
        if g.map.contains_key(key) {
            Self::reprioritize(&mut g, key);
            let v = g.map[key].value.clone();
            drop(g);
            self.counters.hit();
            Some(v)
        } else {
            drop(g);
            self.counters.miss();
            None
        }
    }

    fn put(&self, key: &str, value: Bytes) {
        let mut g = self.inner.lock();
        self.counters.insert();
        if let Some(old) = g.map.remove(key) {
            g.queue.remove(&(old.pri, key.to_string()));
            g.bytes -= old.value.len() as u64;
        }
        let size = value.len();
        g.bytes += size as u64;
        let h = Self::h_value(g.l, size);
        g.seq += 1;
        let pri = (h.to_bits(), g.seq);
        g.queue.insert((pri, key.to_string()));
        g.map.insert(key.to_string(), Entry { value, pri });
        // Evict minimum-H entries while over budget; L rises to each
        // victim's H (the "inflation" that ages the cache).
        while g.bytes > self.capacity_bytes {
            let Some(((pri, victim), _)) = g.queue.iter().next().map(|e| (e.clone(), ())) else {
                break;
            };
            g.queue.remove(&(pri, victim.clone()));
            if let Some(e) = g.map.remove(&victim) {
                g.bytes -= e.value.len() as u64;
            }
            g.l = f64::from_bits(pri.0);
            self.counters.evict();
        }
    }

    fn remove(&self, key: &str) -> bool {
        let mut g = self.inner.lock();
        match g.map.remove(key) {
            Some(e) => {
                g.queue.remove(&(e.pri, key.to_string()));
                g.bytes -= e.value.len() as u64;
                true
            }
            None => false,
        }
    }

    fn clear(&self) {
        let mut g = self.inner.lock();
        g.map.clear();
        g.queue.clear();
        g.bytes = 0;
        g.l = 0.0;
    }

    fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    fn stats(&self) -> CacheStats {
        let g = self.inner.lock();
        self.counters.snapshot(g.bytes, g.map.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let c = GdsCache::new(1 << 20);
        c.put("k", Bytes::from_static(b"v"));
        assert_eq!(c.get("k").unwrap(), Bytes::from_static(b"v"));
        assert!(c.get("nope").is_none());
        assert!(c.remove("k"));
        assert!(!c.remove("k"));
    }

    #[test]
    fn budget_enforced() {
        let c = GdsCache::new(1000);
        for i in 0..100 {
            c.put(&format!("k{i}"), Bytes::from(vec![0u8; 50]));
        }
        let s = c.stats();
        assert!(s.bytes <= 1000);
        assert!(s.evictions >= 80);
    }

    #[test]
    fn prefers_evicting_large_objects() {
        let c = GdsCache::new(10_000);
        // One large object and many small ones; insert the large first so
        // tiebreaks don't favor it, then fill past budget.
        c.put("large", Bytes::from(vec![0u8; 6000]));
        for i in 0..50 {
            c.put(&format!("small{i}"), Bytes::from(vec![0u8; 100]));
        }
        // Budget pressure: 6000 + 5000 > 10000 → something was evicted.
        // GDS(1) gives the large object the lowest H, so it goes first.
        assert!(
            c.get("large").is_none(),
            "large cold object should be the victim"
        );
        let surviving_small = (0..50)
            .filter(|i| c.get(&format!("small{i}")).is_some())
            .count();
        assert!(
            surviving_small >= 40,
            "small objects should survive, got {surviving_small}"
        );
    }

    #[test]
    fn recently_touched_objects_gain_priority() {
        // All objects the same size, so H differs only through recency
        // (touching refreshes H to the current inflation level L).
        let c = GdsCache::new(2000);
        c.put("hot", Bytes::from(vec![0u8; 400]));
        c.put("cold", Bytes::from(vec![0u8; 400]));
        for i in 0..10 {
            assert!(c.get("hot").is_some(), "hot lost at iteration {i}");
            c.put(&format!("filler{i}"), Bytes::from(vec![0u8; 400]));
        }
        assert!(
            c.get("hot").is_some(),
            "repeatedly touched object must survive"
        );
        assert!(
            c.get("cold").is_none(),
            "untouched same-size object should be evicted first"
        );
    }

    #[test]
    fn replace_same_key() {
        let c = GdsCache::new(1 << 20);
        c.put("k", Bytes::from(vec![0u8; 100]));
        c.put("k", Bytes::from(vec![1u8; 10]));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().bytes, 10);
    }

    #[test]
    fn clear_resets_inflation() {
        let c = GdsCache::new(100);
        for i in 0..50 {
            c.put(&format!("k{i}"), Bytes::from(vec![0u8; 40]));
        }
        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.inner.lock().l, 0.0);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let c = Arc::new(GdsCache::new(50_000));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let k = format!("k{}", (t + i) % 40);
                        c.put(&k, Bytes::from(vec![t as u8; (i % 200) + 1]));
                        let _ = c.get(&k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.stats().bytes <= 50_000);
    }
}
