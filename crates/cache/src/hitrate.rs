//! Hit-rate curve estimation from a live access stream.
//!
//! The paper's related work highlights MIMIR, "a monitoring system which can
//! dynamically estimate hit rate curves for live cache servers which are
//! performing cache replacement using LRU". This module provides that
//! capability for the DSCL's caches using the classic Mattson stack-distance
//! construction: because LRU has the *inclusion property*, one pass over the
//! access trace yields the hit rate of **every** cache size at once —
//! an access at stack distance `d` hits any LRU cache holding ≥ `d+1`
//! entries.
//!
//! Feed it accesses (e.g. from a [`ProfiledCache`] wrapper) and ask for the
//! curve; operators use exactly this to answer "how much memory does this
//! cache need for a 90 % hit rate?" without running experiments at each
//! size.

use crate::api::{Cache, CacheStats};
use bytes::Bytes;
use parking_lot::Mutex;

/// Online LRU stack-distance profiler.
pub struct HitRateProfiler {
    inner: Mutex<ProfilerState>,
}

struct ProfilerState {
    /// MRU-first stack of recently seen keys (bounded by `max_depth`).
    stack: Vec<String>,
    /// histogram[d] = number of accesses at stack distance d.
    histogram: Vec<u64>,
    /// Accesses beyond `max_depth` or to never-seen keys.
    cold_or_deep: u64,
    max_depth: usize,
}

impl HitRateProfiler {
    /// Track distances up to `max_depth` (deeper accesses count as misses
    /// at every modelled size).
    pub fn new(max_depth: usize) -> HitRateProfiler {
        let max_depth = max_depth.max(1);
        HitRateProfiler {
            inner: Mutex::new(ProfilerState {
                stack: Vec::with_capacity(max_depth.min(4096)),
                histogram: vec![0; max_depth],
                cold_or_deep: 0,
                max_depth,
            }),
        }
    }

    /// Record one access to `key`.
    pub fn record(&self, key: &str) {
        let mut g = self.inner.lock();
        match g.stack.iter().position(|k| k == key) {
            Some(d) => {
                g.histogram[d] += 1;
                // Move to MRU position.
                let k = g.stack.remove(d);
                g.stack.insert(0, k);
            }
            None => {
                g.cold_or_deep += 1;
                g.stack.insert(0, key.to_string());
                if g.stack.len() > g.max_depth {
                    g.stack.pop();
                }
            }
        }
    }

    /// Total accesses recorded.
    pub fn accesses(&self) -> u64 {
        let g = self.inner.lock();
        g.histogram.iter().sum::<u64>() + g.cold_or_deep
    }

    /// Predicted hit rate for an LRU cache holding `entries` objects.
    pub fn hit_rate_at(&self, entries: usize) -> f64 {
        let g = self.inner.lock();
        let total: u64 = g.histogram.iter().sum::<u64>() + g.cold_or_deep;
        if total == 0 {
            return 0.0;
        }
        let hits: u64 = g.histogram.iter().take(entries).sum();
        hits as f64 / total as f64
    }

    /// The full curve at the requested cache sizes (entry counts).
    pub fn curve(&self, sizes: &[usize]) -> Vec<(usize, f64)> {
        sizes.iter().map(|&s| (s, self.hit_rate_at(s))).collect()
    }

    /// Smallest cache size (entries) predicted to reach `target` hit rate,
    /// or `None` if no modelled size reaches it.
    pub fn size_for_hit_rate(&self, target: f64) -> Option<usize> {
        let g = self.inner.lock();
        let total: u64 = g.histogram.iter().sum::<u64>() + g.cold_or_deep;
        if total == 0 {
            return None;
        }
        let mut hits = 0u64;
        for (d, &h) in g.histogram.iter().enumerate() {
            hits += h;
            if hits as f64 / total as f64 >= target {
                return Some(d + 1);
            }
        }
        None
    }

    /// Forget everything.
    pub fn reset(&self) {
        let mut g = self.inner.lock();
        g.stack.clear();
        g.histogram.fill(0);
        g.cold_or_deep = 0;
    }
}

/// A cache wrapper that feeds every lookup into a [`HitRateProfiler`] —
/// the "monitoring a live cache server" deployment mode.
pub struct ProfiledCache<C> {
    inner: C,
    /// The attached profiler (shared so callers can query it live).
    pub profiler: std::sync::Arc<HitRateProfiler>,
}

impl<C: Cache> ProfiledCache<C> {
    /// Wrap `inner`, profiling distances up to `max_depth`.
    pub fn new(inner: C, max_depth: usize) -> ProfiledCache<C> {
        ProfiledCache {
            inner,
            profiler: std::sync::Arc::new(HitRateProfiler::new(max_depth)),
        }
    }
}

impl<C: Cache> Cache for ProfiledCache<C> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn get(&self, key: &str) -> Option<Bytes> {
        self.profiler.record(key);
        self.inner.get(key)
    }
    fn put(&self, key: &str, value: Bytes) {
        self.inner.put(key, value)
    }
    fn remove(&self, key: &str) -> bool {
        self.inner.remove(key)
    }
    fn clear(&self) {
        self.inner.clear()
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::distributions::Distribution;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn repeated_single_key_hits_at_any_size() {
        let p = HitRateProfiler::new(100);
        for _ in 0..100 {
            p.record("hot");
        }
        // 99 of 100 accesses are at distance 0.
        assert!((p.hit_rate_at(1) - 0.99).abs() < 1e-9);
        assert_eq!(p.accesses(), 100);
    }

    #[test]
    fn round_robin_over_n_keys_needs_n_entries() {
        let p = HitRateProfiler::new(100);
        let n = 10;
        for round in 0..20 {
            for k in 0..n {
                let _ = round;
                p.record(&format!("k{k}"));
            }
        }
        // A cache smaller than n never hits on a cyclic scan (LRU's
        // pathological case); at n it always hits after warmup.
        assert_eq!(
            p.hit_rate_at(n - 1),
            0.0,
            "LRU thrashes on a cycle one larger than itself"
        );
        let at_n = p.hit_rate_at(n);
        assert!(
            at_n > 0.9,
            "full-loop cache should hit after warmup, got {at_n}"
        );
    }

    #[test]
    fn curve_is_monotone_nondecreasing() {
        let p = HitRateProfiler::new(256);
        let mut rng = SmallRng::seed_from_u64(3);
        let zipf_ish = |rng: &mut SmallRng| -> usize {
            let u: f64 = rand::distributions::Open01.sample(rng);
            ((1.0 / u).powf(0.7) as usize) % 200
        };
        for _ in 0..5000 {
            p.record(&format!("k{}", zipf_ish(&mut rng)));
        }
        let sizes: Vec<usize> = (0..=256).step_by(16).collect();
        let curve = p.curve(&sizes);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "curve must be monotone: {curve:?}");
        }
        assert!(
            curve.last().unwrap().1 > 0.5,
            "a 256-entry cache over 200 keys should hit"
        );
    }

    #[test]
    fn size_for_hit_rate_inverts_the_curve() {
        let p = HitRateProfiler::new(64);
        for _ in 0..50 {
            for k in 0..5 {
                p.record(&format!("k{k}"));
            }
        }
        let needed = p.size_for_hit_rate(0.9).expect("reachable");
        assert_eq!(needed, 5);
        assert!(
            p.size_for_hit_rate(0.999).is_none(),
            "cold misses cap the best rate"
        );
    }

    #[test]
    fn prediction_matches_real_lru_cache() {
        // The validation MIMIR performs: compare the predicted curve with
        // an actual LRU cache's measured hit rate at one size.
        use crate::lru::InProcessLru;
        let mut rng = SmallRng::seed_from_u64(9);
        let trace: Vec<String> = (0..4000)
            .map(|_| {
                let u: f64 = rand::distributions::Open01.sample(&mut rng);
                format!("k{}", ((1.0 / u).powf(0.8) as usize) % 100)
            })
            .collect();
        let p = HitRateProfiler::new(128);
        // Real cache: entry-count-equivalent via uniform value sizes.
        // cost/entry = key (≤4) + value 100 + overhead 64 ≈ 168; 30 entries.
        let entries = 30usize;
        let cache = InProcessLru::with_shards((entries * 168) as u64, 1);
        for key in &trace {
            p.record(key);
            if cache.get(key).is_none() {
                cache.put(key, Bytes::from(vec![0u8; 100]));
            }
        }
        let predicted = p.hit_rate_at(entries);
        let measured = cache.stats().hit_rate();
        assert!(
            (predicted - measured).abs() < 0.08,
            "predicted {predicted:.3} vs measured {measured:.3}"
        );
    }

    #[test]
    fn profiled_cache_wrapper_records() {
        let cache = ProfiledCache::new(crate::lru::InProcessLru::new(1 << 20), 64);
        cache.put("a", Bytes::from_static(b"1"));
        let _ = cache.get("a");
        let _ = cache.get("a");
        let _ = cache.get("b");
        assert_eq!(cache.profiler.accesses(), 3);
        assert!(cache.profiler.hit_rate_at(1) > 0.3);
    }
}
