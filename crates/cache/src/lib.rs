//! # dscl-cache — pluggable caches for enhanced data store clients
//!
//! §III of the paper: "The DSCL also supports multiple different types of
//! caches via a Cache interface which defines how an application interacts
//! with caches. There are multiple implementations of the Cache interface
//! which applications can choose from."
//!
//! This crate provides the [`Cache`] trait and the *in-process* family of
//! implementations (the paper's Guava-cache role):
//!
//! * [`InProcessLru`] — sharded, byte-budgeted, least-recently-used;
//! * [`ClockCache`] — CLOCK eviction, one reference bit per entry (the
//!   memcached optimization the paper cites from MemC3);
//! * [`GdsCache`] — Greedy-Dual-Size, the size-aware policy the paper cites
//!   for caches holding variably sized objects;
//! * [`ObjectCache`] — a typed cache storing `Arc<V>` directly, with no
//!   serialization, demonstrating the paper's point that in-process caches
//!   can hold objects (or references) at pointer speed, plus the
//!   copy-on-store variant that protects cached values from later mutation;
//! * [`StoreCache`] — adapter exposing *any* [`kvapi::KeyValue`] store
//!   through the Cache interface (the paper's third caching approach: "any
//!   data store supported by the UDSM can function as a cache … for another
//!   data store").
//!
//! The *remote-process* implementation (the paper's Redis role) lives in the
//! `miniredis` crate, which implements this same [`Cache`] trait over its
//! client.
//!
//! Expiration times are deliberately **not** handled here: the paper is
//! explicit that "cache expiration times are managed by the DSCL and not by
//! the underlying cache", so the DSCL layer (`dscl` crate) wraps values with
//! expiration metadata before they reach a cache.

#![forbid(unsafe_code)]

pub mod adapter;
pub mod api;
pub mod clock;
pub mod gds;
pub mod hitrate;
pub mod lru;
pub mod object;

pub use adapter::StoreCache;
pub use api::{publish_stats, Cache, CacheStats};
pub use clock::ClockCache;
pub use gds::GdsCache;
pub use hitrate::{HitRateProfiler, ProfiledCache};
pub use lru::InProcessLru;
pub use object::ObjectCache;
