//! Sharded in-process LRU cache with a byte budget.
//!
//! Each shard is an independent `HashMap` + intrusive doubly-linked list
//! (slab-backed), so `get`/`put` are O(1) and threads touching different
//! shards never contend — the concurrency structure the paper's cited
//! in-process caches (Guava, Ehcache) use.

use crate::api::{Cache, CacheStats, Counters};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

const NONE: usize = usize::MAX;
/// Fixed per-entry overhead charged against the byte budget (map + list
/// bookkeeping), so a million empty values can't pretend to be free.
const ENTRY_OVERHEAD: u64 = 64;

struct Node {
    key: String,
    value: Bytes,
    prev: usize,
    next: usize,
}

struct Shard {
    map: HashMap<String, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: u64,
    budget: u64,
}

impl Shard {
    fn new(budget: u64) -> Shard {
        Shard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            bytes: 0,
            budget,
        }
    }

    fn cost(key: &str, value: &Bytes) -> u64 {
        key.len() as u64 + value.len() as u64 + ENTRY_OVERHEAD
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NONE {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slab[idx].prev = NONE;
        self.slab[idx].next = NONE;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NONE;
        self.slab[idx].next = self.head;
        if self.head != NONE {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }

    fn get(&mut self, key: &str) -> Option<Bytes> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.push_front(idx);
        Some(self.slab[idx].value.clone())
    }

    /// Insert/replace; returns number of evictions performed.
    fn put(&mut self, key: &str, value: Bytes) -> u64 {
        if let Some(&idx) = self.map.get(key) {
            self.bytes -= Self::cost(key, &self.slab[idx].value);
            self.bytes += Self::cost(key, &value);
            self.slab[idx].value = value;
            self.detach(idx);
            self.push_front(idx);
        } else {
            self.bytes += Self::cost(key, &value);
            let node = Node {
                key: key.to_string(),
                value,
                prev: NONE,
                next: NONE,
            };
            let idx = if let Some(i) = self.free.pop() {
                self.slab[i] = node;
                i
            } else {
                self.slab.push(node);
                self.slab.len() - 1
            };
            self.map.insert(key.to_string(), idx);
            self.push_front(idx);
        }
        let mut evicted = 0;
        while self.bytes > self.budget && self.tail != NONE {
            let idx = self.tail;
            self.remove_idx(idx);
            evicted += 1;
        }
        evicted
    }

    fn remove_idx(&mut self, idx: usize) {
        self.detach(idx);
        let key = std::mem::take(&mut self.slab[idx].key);
        let value = std::mem::take(&mut self.slab[idx].value);
        self.bytes -= key.len() as u64 + value.len() as u64 + ENTRY_OVERHEAD;
        self.map.remove(&key);
        self.free.push(idx);
    }

    fn remove(&mut self, key: &str) -> bool {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.remove_idx(idx);
                true
            }
            None => false,
        }
    }
}

/// Sharded byte-budgeted LRU cache.
pub struct InProcessLru {
    shards: Vec<Mutex<Shard>>,
    counters: Counters,
    bytes: AtomicU64,
    entries: AtomicU64,
}

impl InProcessLru {
    /// Cache bounded by `capacity_bytes` total (split across 16 shards).
    pub fn new(capacity_bytes: u64) -> InProcessLru {
        Self::with_shards(capacity_bytes, 16)
    }

    /// Cache with an explicit shard count (1 = the single-lock ablation
    /// configuration used by the concurrency benchmark).
    pub fn with_shards(capacity_bytes: u64, shards: usize) -> InProcessLru {
        let shards = shards.max(1);
        let budget = (capacity_bytes / shards as u64).max(1);
        InProcessLru {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(budget)))
                .collect(),
            counters: Counters::default(),
            bytes: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn refresh_totals(&self) {
        let (mut b, mut e) = (0u64, 0u64);
        for s in &self.shards {
            let g = s.lock();
            b += g.bytes;
            e += g.map.len() as u64;
        }
        self.bytes.store(b, Ordering::Relaxed);
        self.entries.store(e, Ordering::Relaxed);
    }
}

impl Cache for InProcessLru {
    fn name(&self) -> &str {
        "lru"
    }

    fn get(&self, key: &str) -> Option<Bytes> {
        let out = self.shard(key).lock().get(key);
        if out.is_some() {
            self.counters.hit();
        } else {
            self.counters.miss();
        }
        out
    }

    fn put(&self, key: &str, value: Bytes) {
        let evicted = self.shard(key).lock().put(key, value);
        self.counters.insert();
        for _ in 0..evicted {
            self.counters.evict();
        }
    }

    fn remove(&self, key: &str) -> bool {
        self.shard(key).lock().remove(key)
    }

    fn clear(&self) {
        for s in &self.shards {
            let mut g = s.lock();
            let budget = g.budget;
            *g = Shard::new(budget);
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    fn stats(&self) -> CacheStats {
        self.refresh_totals();
        self.counters.snapshot(
            self.bytes.load(Ordering::Relaxed),
            self.entries.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn basic_get_put_remove() {
        let c = InProcessLru::new(1 << 20);
        assert!(c.get("k").is_none());
        c.put("k", b("v"));
        assert_eq!(c.get("k").unwrap(), b("v"));
        assert!(c.remove("k"));
        assert!(!c.remove("k"));
        assert!(c.get("k").is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        // Single shard so LRU order is global and observable.
        let c = InProcessLru::with_shards(3 * (ENTRY_OVERHEAD + 2 + 10), 1);
        for k in ["a", "b", "c"] {
            c.put(k, Bytes::from(vec![0u8; 10]));
            // two-byte keys? keys are 1 byte; cost margin absorbs it.
        }
        assert_eq!(c.len(), 3);
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get("a").is_some());
        c.put("d", Bytes::from(vec![0u8; 10]));
        assert!(c.get("b").is_none(), "b should have been evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some() || c.get("d").is_some());
        assert!(c.stats().evictions >= 1);
    }

    #[test]
    fn replacing_updates_bytes_not_entries() {
        let c = InProcessLru::new(1 << 20);
        c.put("k", Bytes::from(vec![0u8; 100]));
        let b1 = c.stats().bytes;
        c.put("k", Bytes::from(vec![0u8; 10]));
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert!(s.bytes < b1);
        assert_eq!(c.get("k").unwrap().len(), 10);
    }

    #[test]
    fn byte_budget_is_enforced() {
        let c = InProcessLru::with_shards(10_000, 4);
        for i in 0..1000 {
            c.put(&format!("key-{i}"), Bytes::from(vec![0u8; 100]));
        }
        let s = c.stats();
        assert!(s.bytes <= 10_000, "held {} bytes over budget", s.bytes);
        assert!(s.evictions > 0);
        assert!(c.len() < 1000);
    }

    #[test]
    fn oversized_item_does_not_wedge_the_cache() {
        let c = InProcessLru::with_shards(500, 1);
        c.put("big", Bytes::from(vec![0u8; 10_000]));
        assert_eq!(c.len(), 0, "item larger than the whole budget is dropped");
        c.put("ok", Bytes::from(vec![0u8; 10]));
        assert!(c.get("ok").is_some());
    }

    #[test]
    fn clear_resets() {
        let c = InProcessLru::new(1 << 20);
        for i in 0..50 {
            c.put(&format!("k{i}"), b("x"));
        }
        c.clear();
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        assert_eq!(c.stats().bytes, 0);
    }

    #[test]
    fn get_returns_zero_copy_view() {
        let c = InProcessLru::with_shards(1 << 22, 1);
        let v = Bytes::from(vec![7u8; 1 << 16]);
        let ptr = v.as_ptr();
        c.put("k", v);
        let got = c.get("k").unwrap();
        assert_eq!(
            got.as_ptr(),
            ptr,
            "in-process get must not copy the payload"
        );
    }

    #[test]
    fn concurrent_hammering() {
        use std::sync::Arc;
        let c = Arc::new(InProcessLru::new(1 << 20));
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let k = format!("k{}", (t * 31 + i) % 64);
                    c.put(&k, Bytes::from(format!("v{t}-{i}")));
                    let _ = c.get(&k);
                    if i % 7 == 0 {
                        c.remove(&k);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert!(s.hits + s.misses >= 4000);
    }

    #[test]
    fn free_list_reuses_slots() {
        let c = InProcessLru::with_shards(1 << 20, 1);
        for round in 0..10 {
            for i in 0..100 {
                c.put(&format!("k{i}"), b("value"));
            }
            for i in 0..100 {
                c.remove(&format!("k{i}"));
            }
            assert_eq!(c.len(), 0, "round {round}");
        }
        // The slab should not have grown unboundedly.
        let slab_len = c.shards[0].lock().slab.len();
        assert!(slab_len <= 100, "slab grew to {slab_len}");
    }
}
