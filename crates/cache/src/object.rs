//! Typed in-process object cache — no serialization.
//!
//! §III of the paper (in-process caches): "Java objects can directly be
//! cached. Data serialization is not required. In order to reduce overhead
//! when the object is cached, the object (or a reference to it) can be
//! stored directly in the cache. One consequence of this approach is that
//! changes to the object from the application will change the cached object
//! itself. In order to prevent the value of a cached object from being
//! modified … a copy of the object can be made before the object is cached."
//!
//! Rust's ownership system changes the failure mode but the design space is
//! the same: [`ObjectCache`] stores `Arc<V>` (a reference — zero copies,
//! shared immutably), and [`ObjectCache::put_copied`] clones the value first
//! so the caller's original can keep being mutated independently — the
//! paper's copy-before-caching option, with its copying overhead.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct Entry<V> {
    value: Arc<V>,
    tick: u64,
}

struct Inner<V> {
    map: HashMap<String, Entry<V>>,
    tick: u64,
}

/// Count-bounded LRU cache of typed values behind `Arc`.
pub struct ObjectCache<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
}

impl<V> ObjectCache<V> {
    /// Cache holding at most `capacity` objects (LRU eviction).
    pub fn new(capacity: usize) -> ObjectCache<V> {
        ObjectCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Store a reference to `value` (no copy). The cache and all getters
    /// share the same immutable object.
    pub fn put(&self, key: impl Into<String>, value: Arc<V>) {
        let mut g = self.inner.lock();
        g.tick += 1;
        let tick = g.tick;
        g.map.insert(key.into(), Entry { value, tick });
        if g.map.len() > self.capacity {
            // Evict the least recently used entry (linear scan: this cache
            // is for moderate numbers of rich objects, not byte hoards).
            if let Some(victim) = g
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                g.map.remove(&victim);
            }
        }
    }

    /// Retrieve a shared reference to the cached object.
    pub fn get(&self, key: &str) -> Option<Arc<V>> {
        let mut g = self.inner.lock();
        g.tick += 1;
        let tick = g.tick;
        let e = g.map.get_mut(key)?;
        e.tick = tick;
        Some(e.value.clone())
    }

    /// Remove an entry.
    pub fn remove(&self, key: &str) -> bool {
        self.inner.lock().map.remove(key).is_some()
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }
}

impl<V: Clone> ObjectCache<V> {
    /// Copy-before-caching: clones `value` so later mutations of the
    /// caller's copy cannot be observed through the cache (the paper's
    /// defensive-copy option; costs one clone).
    pub fn put_copied(&self, key: impl Into<String>, value: &V) {
        self.put(key, Arc::new(value.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Doc {
        title: String,
        body: Vec<u8>,
    }

    #[test]
    fn stores_references_without_copying() {
        let cache: ObjectCache<Doc> = ObjectCache::new(10);
        let doc = Arc::new(Doc {
            title: "t".into(),
            body: vec![1, 2, 3],
        });
        cache.put("d", doc.clone());
        let got = cache.get("d").unwrap();
        assert!(
            Arc::ptr_eq(&doc, &got),
            "cache must hand back the same allocation"
        );
    }

    #[test]
    fn put_copied_isolates_mutations() {
        let cache: ObjectCache<Doc> = ObjectCache::new(10);
        let mut doc = Doc {
            title: "original".into(),
            body: vec![1],
        };
        cache.put_copied("d", &doc);
        doc.title = "mutated".into();
        assert_eq!(cache.get("d").unwrap().title, "original");
    }

    #[test]
    fn lru_eviction_by_count() {
        let cache: ObjectCache<u32> = ObjectCache::new(3);
        for (i, k) in ["a", "b", "c"].iter().enumerate() {
            cache.put(*k, Arc::new(i as u32));
        }
        let _ = cache.get("a"); // refresh a
        cache.put("d", Arc::new(9));
        assert_eq!(cache.len(), 3);
        assert!(cache.get("b").is_none(), "b was LRU and should be gone");
        assert!(cache.get("a").is_some());
    }

    #[test]
    fn remove_and_clear() {
        let cache: ObjectCache<u32> = ObjectCache::new(5);
        cache.put("x", Arc::new(1));
        assert!(cache.remove("x"));
        assert!(!cache.remove("x"));
        cache.put("y", Arc::new(2));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_use() {
        let cache = Arc::new(ObjectCache::<String>::new(32));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        c.put(format!("k{}", i % 40), Arc::new(format!("{t}:{i}")));
                        let _ = c.get(&format!("k{}", i % 40));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 32);
    }
}
