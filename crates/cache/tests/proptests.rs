//! Property-based invariants for the in-process caches.
//!
//! A cache may forget, but it must never lie: any value returned must be
//! the most recently inserted value for that key, and budgets must hold
//! after arbitrary operation sequences.

use bytes::Bytes;
use dscl_cache::{Cache, ClockCache, GdsCache, InProcessLru};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Get(u8),
    Remove(u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..200))
                .prop_map(|(k, v)| Op::Put(k, v)),
            any::<u8>().prop_map(Op::Get),
            any::<u8>().prop_map(Op::Remove),
        ],
        1..120,
    )
}

fn check_cache_honesty(cache: &dyn Cache, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut oracle: HashMap<u8, Vec<u8>> = HashMap::new();
    for op in ops {
        match op {
            Op::Put(k, v) => {
                cache.put(&format!("k{k}"), Bytes::from(v.clone()));
                oracle.insert(*k, v.clone());
            }
            Op::Get(k) => {
                if let Some(got) = cache.get(&format!("k{k}")) {
                    let expect = oracle.get(k);
                    prop_assert_eq!(
                        Some(&got.to_vec()),
                        expect,
                        "cache returned a value that was never the latest for k{}",
                        k
                    );
                }
                // A miss is always legal (eviction).
            }
            Op::Remove(k) => {
                cache.remove(&format!("k{k}"));
                oracle.remove(k);
                prop_assert!(
                    cache.get(&format!("k{k}")).is_none(),
                    "removed key resurfaced"
                );
                oracle.remove(k);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lru_never_lies_and_respects_budget(ops in ops()) {
        let cache = InProcessLru::new(4000);
        check_cache_honesty(&cache, &ops)?;
        let stats = cache.stats();
        prop_assert!(stats.bytes <= 4000, "budget exceeded: {} bytes", stats.bytes);
    }

    #[test]
    fn clock_never_lies_and_respects_capacity(ops in ops()) {
        let cache = ClockCache::new(16);
        check_cache_honesty(&cache, &ops)?;
        prop_assert!(cache.len() <= 16);
    }

    #[test]
    fn gds_never_lies_and_respects_budget(ops in ops()) {
        let cache = GdsCache::new(4000);
        check_cache_honesty(&cache, &ops)?;
        prop_assert!(cache.stats().bytes <= 4000);
    }

    /// Single-shard LRU with roomy budget = perfect map (no evictions):
    /// every get must hit with the oracle's value.
    #[test]
    fn unevicted_lru_is_a_perfect_map(ops in ops()) {
        let cache = InProcessLru::with_shards(10_000_000, 1);
        let mut oracle: HashMap<u8, Vec<u8>> = HashMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    cache.put(&format!("k{k}"), Bytes::from(v.clone()));
                    oracle.insert(*k, v.clone());
                }
                Op::Get(k) => {
                    let got = cache.get(&format!("k{k}")).map(|b| b.to_vec());
                    prop_assert_eq!(&got, &oracle.get(k).cloned());
                }
                Op::Remove(k) => {
                    cache.remove(&format!("k{k}"));
                    oracle.remove(k);
                }
            }
        }
        prop_assert_eq!(cache.len(), oracle.len());
    }
}
