//! Framing for the `POST /v1/batch` multi-op protocol.
//!
//! A batch request carries any mix of get/put/delete operations in one HTTP
//! round trip; the server answers every operation positionally in one
//! response. This is what turns N WAN round trips into one: the simulated
//! network (and a real one) charges latency per request, so a 16-key
//! `get_many` pays ~1 RTT instead of ~16.
//!
//! Wire format (line-oriented header + length-prefixed binary payloads, in
//! the spirit of the store's HTTP framing — both ends always know their
//! lengths, so no chunking):
//!
//! ```text
//! request body:                      response body:
//!   batch/1 <n>\n                      batch/1 <n>\n
//!   G <escaped-key>\n                  V <etag-hex> <modified-ms> <len>\n<len bytes>\n
//!   P <escaped-key> <len>\n<bytes>\n   N\n
//!   D <escaped-key>\n                  P <etag-hex>\n
//!                                      D 0|1\n
//! ```
//!
//! Each reply line answers the request operation at the same position:
//! `G` → `V` (hit, with version metadata) or `N` (miss); `P` → `P` with the
//! server-assigned etag; `D` → `D` with whether a value was present.

// Wire-facing arithmetic must be visibly checked or saturating.
#![warn(clippy::arithmetic_side_effects)]

use crate::http::{escape_segment, unescape_segment};
use bytes::Bytes;
use kvapi::{Etag, Result, StoreError, Versioned};

/// Maximum operations accepted per batch — guards the server against a
/// hostile or buggy client asking it to materialize an unbounded plan.
pub const MAX_BATCH_OPS: usize = 65_536;

/// One operation in a batch request.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchOp {
    /// Fetch a key.
    Get(String),
    /// Store a value under a key.
    Put(String, Vec<u8>),
    /// Remove a key.
    Delete(String),
}

/// One positional reply in a batch response.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchReply {
    /// Get hit: the value with its version metadata.
    Value(Versioned),
    /// Get miss.
    Miss,
    /// Put acknowledged, with the etag the store now associates.
    Put(Etag),
    /// Delete outcome: whether a value was present.
    Deleted(bool),
}

fn bad(msg: impl std::fmt::Display) -> StoreError {
    StoreError::protocol(format!("batch framing: {msg}"))
}

/// Serialize a batch request body.
pub fn encode_request(ops: &[BatchOp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ops.len().saturating_mul(64));
    out.extend_from_slice(format!("batch/1 {}\n", ops.len()).as_bytes());
    for op in ops {
        match op {
            BatchOp::Get(key) => {
                out.extend_from_slice(format!("G {}\n", escape_segment(key)).as_bytes());
            }
            BatchOp::Put(key, value) => {
                out.extend_from_slice(
                    format!("P {} {}\n", escape_segment(key), value.len()).as_bytes(),
                );
                out.extend_from_slice(value);
                out.push(b'\n');
            }
            BatchOp::Delete(key) => {
                out.extend_from_slice(format!("D {}\n", escape_segment(key)).as_bytes());
            }
        }
    }
    out
}

/// Serialize a batch response body.
pub fn encode_response(replies: &[BatchReply]) -> Vec<u8> {
    let mut out = Vec::with_capacity(replies.len().saturating_mul(64));
    out.extend_from_slice(format!("batch/1 {}\n", replies.len()).as_bytes());
    for reply in replies {
        match reply {
            BatchReply::Value(v) => {
                out.extend_from_slice(
                    format!("V {} {} {}\n", v.etag.to_hex(), v.modified_ms, v.data.len())
                        .as_bytes(),
                );
                out.extend_from_slice(&v.data);
                out.push(b'\n');
            }
            BatchReply::Miss => out.extend_from_slice(b"N\n"),
            BatchReply::Put(etag) => {
                out.extend_from_slice(format!("P {}\n", etag.to_hex()).as_bytes());
            }
            BatchReply::Deleted(present) => {
                out.extend_from_slice(format!("D {}\n", u8::from(*present)).as_bytes());
            }
        }
    }
    out
}

/// Cheaply read the op count from a framed body's header line without
/// decoding the operations (used for batch-size metrics).
pub fn peek_len(body: &[u8]) -> Option<usize> {
    let end = body.iter().position(|&b| b == b'\n')?;
    std::str::from_utf8(body.get(..end)?)
        .ok()?
        .strip_prefix("batch/1 ")?
        .parse()
        .ok()
}

/// A cursor over the framed body: header lines + raw payload runs.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn line(&mut self) -> Result<&'a str> {
        let rest = self
            .buf
            .get(self.pos..)
            .ok_or_else(|| bad("cursor past end"))?;
        let end = rest
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| bad("missing line terminator"))?;
        self.pos = self.pos.saturating_add(end).saturating_add(1);
        let line = rest.get(..end).ok_or_else(|| bad("truncated line"))?;
        std::str::from_utf8(line).map_err(|_| bad("non-utf8 header line"))
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8]> {
        // Checked: a peer-declared length near usize::MAX must come back as
        // a protocol error, not an arithmetic overflow panic.
        let end = self
            .pos
            .checked_add(len)
            .ok_or_else(|| bad("payload length overflow"))?;
        let out = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| bad("truncated payload"))?;
        if self.buf.get(end) != Some(&b'\n') {
            return Err(bad("payload missing terminator"));
        }
        self.pos = end.saturating_add(1);
        Ok(out)
    }
}

fn parse_header(cur: &mut Cursor) -> Result<usize> {
    let header = cur.line()?;
    let n = header
        .strip_prefix("batch/1 ")
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| bad(format!("bad header {header:?}")))?;
    if n > MAX_BATCH_OPS {
        return Err(bad(format!(
            "batch of {n} ops exceeds limit {MAX_BATCH_OPS}"
        )));
    }
    Ok(n)
}

fn parse_key(seg: &str) -> Result<String> {
    unescape_segment(seg).ok_or_else(|| bad(format!("bad key encoding {seg:?}")))
}

/// Parse a batch request body.
pub fn decode_request(body: &[u8]) -> Result<Vec<BatchOp>> {
    let mut cur = Cursor { buf: body, pos: 0 };
    let n = parse_header(&mut cur)?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let line = cur.line()?;
        let mut parts = line.split(' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("G"), Some(key), None) => ops.push(BatchOp::Get(parse_key(key)?)),
            (Some("D"), Some(key), None) => ops.push(BatchOp::Delete(parse_key(key)?)),
            (Some("P"), Some(key), Some(len)) => {
                let len: usize = len.parse().map_err(|_| bad("bad put length"))?;
                let value = cur.bytes(len)?.to_vec();
                ops.push(BatchOp::Put(parse_key(key)?, value));
            }
            _ => return Err(bad(format!("bad op line {line:?}"))),
        }
    }
    Ok(ops)
}

/// Parse a batch response body.
pub fn decode_response(body: &[u8]) -> Result<Vec<BatchReply>> {
    let mut cur = Cursor { buf: body, pos: 0 };
    let n = parse_header(&mut cur)?;
    let mut replies = Vec::with_capacity(n);
    for _ in 0..n {
        let line = cur.line()?;
        let mut parts = line.split(' ');
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some("N"), None, ..) => replies.push(BatchReply::Miss),
            (Some("D"), Some(flag), None, _) => match flag {
                "0" => replies.push(BatchReply::Deleted(false)),
                "1" => replies.push(BatchReply::Deleted(true)),
                other => return Err(bad(format!("bad delete flag {other:?}"))),
            },
            (Some("P"), Some(tag), None, _) => {
                let etag = Etag::from_hex(tag).ok_or_else(|| bad("bad put etag"))?;
                replies.push(BatchReply::Put(etag));
            }
            (Some("V"), Some(tag), Some(modified), Some(len)) => {
                let etag = Etag::from_hex(tag).ok_or_else(|| bad("bad value etag"))?;
                let modified_ms: u64 = modified.parse().map_err(|_| bad("bad modified-ms"))?;
                let len: usize = len.parse().map_err(|_| bad("bad value length"))?;
                let data = Bytes::copy_from_slice(cur.bytes(len)?);
                replies.push(BatchReply::Value(Versioned::with_etag(
                    data,
                    etag,
                    modified_ms,
                )));
            }
            _ => return Err(bad(format!("bad reply line {line:?}"))),
        }
    }
    Ok(replies)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip_all_op_kinds() {
        let binary: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        let ops = vec![
            BatchOp::Get("plain".into()),
            BatchOp::Put("with space/slash".into(), binary.clone()),
            BatchOp::Put("empty-value".into(), Vec::new()),
            BatchOp::Delete("uni-ключ".into()),
            BatchOp::Get("newline\nkey".into()),
        ];
        let body = encode_request(&ops);
        assert_eq!(decode_request(&body).unwrap(), ops);
    }

    #[test]
    fn response_round_trip_all_reply_kinds() {
        let replies = vec![
            BatchReply::Value(Versioned::with_etag(
                Bytes::from_static(b"some\nbinary\x00value"),
                Etag(42),
                12345,
            )),
            BatchReply::Miss,
            BatchReply::Put(Etag(0xdead_beef)),
            BatchReply::Deleted(true),
            BatchReply::Deleted(false),
        ];
        let body = encode_response(&replies);
        assert_eq!(decode_response(&body).unwrap(), replies);
    }

    #[test]
    fn empty_batch_round_trips() {
        assert_eq!(decode_request(&encode_request(&[])).unwrap(), Vec::new());
        assert_eq!(decode_response(&encode_response(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn malformed_bodies_rejected() {
        for bad_body in [
            &b"garbage"[..],
            b"batch/2 1\nG k\n",
            b"batch/1 2\nG k\n",             // fewer ops than declared
            b"batch/1 1\nP key 10\nshort\n", // truncated put payload
            b"batch/1 1\nX k\n",             // unknown op
            b"batch/1 99999999\n",           // over the op limit
            // usize::MAX length must not overflow the cursor arithmetic
            b"batch/1 1\nP key 18446744073709551615\nx\n",
        ] {
            assert!(decode_request(bad_body).is_err(), "accepted {bad_body:?}");
        }
        for bad_body in [
            &b"batch/1 1\nV zz 0 1\nx\n"[..], // bad etag
            b"batch/1 1\nD 7\n",              // bad delete flag
            b"batch/1 1\nV 0 0 5\nab\n",      // truncated value
            // usize::MAX length must not overflow the cursor arithmetic
            b"batch/1 1\nV 0 0 18446744073709551615\nx\n",
        ] {
            assert!(decode_response(bad_body).is_err(), "accepted {bad_body:?}");
        }
    }

    #[test]
    fn payload_lengths_are_binary_safe() {
        // A value containing the header text itself must not confuse the
        // parser (length-prefixed, not delimiter-scanned).
        let evil = b"\nbatch/1 3\nG x\n".to_vec();
        let ops = vec![
            BatchOp::Put("k".into(), evil.clone()),
            BatchOp::Get("k".into()),
        ];
        let decoded = decode_request(&encode_request(&ops)).unwrap();
        assert_eq!(decoded, ops);
        match &decoded[0] {
            BatchOp::Put(_, v) => assert_eq!(v, &evil),
            other => panic!("expected put, got {other:?}"),
        }
    }
}
