//! [`CloudClient`] — the cloud store's client, implementing the common
//! key-value interface with *native* conditional gets.
//!
//! Unlike stores whose protocols lack revalidation (which fall back to the
//! trait's fetch-and-compare default), this client sends `If-None-Match`
//! and receives `304 Not Modified` without a body — the paper's Figure 7
//! interaction, saving both bandwidth and transfer time for unchanged
//! objects.

use crate::batch::{self, BatchOp, BatchReply};
use crate::http::{
    escape_segment, read_response, scan_response, unescape_segment, write_request, Request,
    Response, Scan,
};
use bytes::Bytes;
use kvapi::{
    CondGet, Etag, Framer, KeyValue, ReplyMeta, Result, RpcClient, RpcSender, SendOptions,
    StoreError, StoreStats, Transport, Versioned,
};
use resilience::{Resilience, ResiliencePolicy};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// [`Framer`] for HTTP/1.1 replies: delimits a status line + headers +
/// content-length body via [`scan_response`], honouring the parser's body
/// suppression (HEAD via [`ReplyMeta::head_only`], 304/204 by status), and
/// extracts the server's `x-mux-id` header echo as the correlation id.
struct HttpFramer;

impl Framer for HttpFramer {
    fn scan_reply(&self, buf: &[u8], meta: &ReplyMeta) -> Option<usize> {
        match scan_response(buf, meta.head_only) {
            Scan::Frame(n) => Some(n),
            Scan::NeedMore => None,
        }
    }

    fn reply_id(&self, frame: &[u8]) -> Option<u64> {
        // Walk the head only: the first empty line ends the search, so
        // body bytes are never scanned for a header-shaped pattern.
        for raw in frame.split(|&b| b == b'\n') {
            let line = match raw.last() {
                Some(&b'\r') => raw.get(..raw.len().saturating_sub(1)).unwrap_or_default(),
                _ => raw,
            };
            if line.is_empty() {
                return None;
            }
            let Some(idx) = line.iter().position(|&b| b == b':') else {
                continue;
            };
            let key = line.get(..idx).unwrap_or_default();
            if std::str::from_utf8(key)
                .map(|k| k.trim().eq_ignore_ascii_case("x-mux-id"))
                .unwrap_or(false)
            {
                return std::str::from_utf8(line.get(idx.saturating_add(1)..).unwrap_or_default())
                    .ok()
                    .and_then(|v| v.trim().parse().ok());
            }
        }
        None
    }
}

fn build_sender(
    addr: SocketAddr,
    policy: &ResiliencePolicy,
    transport: Transport,
) -> Box<dyn RpcSender> {
    let framer: Arc<dyn Framer> = Arc::new(HttpFramer);
    match transport {
        Transport::Blocking => Box::new(rpc::BlockingSender::new(addr, policy.clone(), framer)),
        Transport::Multiplexed => Box::new(rpc::MuxSender::new(addr, policy.clone(), framer)),
    }
}

/// HTTP client for a [`crate::CloudServer`], usable as a `KeyValue` store.
///
/// Requests travel over a pluggable [`RpcSender`]: the blocking transport
/// keeps a pool of keep-alive connections so concurrent callers (e.g. the
/// UDSM's asynchronous interface fanning out on its thread pool) issue
/// requests in parallel, while the multiplexed transport interleaves all
/// callers on one shared connection, correlating replies through the
/// server's `x-mux-id` header echo. Every round trip runs under the
/// client's [`resilience`] policy: a total request deadline, breaker
/// gating, and bounded-backoff retries (every cloudstore verb is
/// idempotent, so replays are safe).
pub struct CloudClient {
    addr: SocketAddr,
    name: String,
    resilience: Resilience,
    transport: Transport,
    sender: Box<dyn RpcSender>,
    registry: Option<Arc<obs::Registry>>,
}

impl CloudClient {
    /// Connect (lazily) to a cloud store server with the default
    /// [`ResiliencePolicy`] (shared by all native clients, so cross-store
    /// sweeps compare identical failure budgets) and the blocking
    /// transport.
    pub fn connect(addr: SocketAddr) -> CloudClient {
        CloudClient::connect_with(addr, ResiliencePolicy::default(), Transport::Blocking)
    }

    /// Connect with an explicit resilience policy and [`Transport`].
    pub fn connect_with(
        addr: SocketAddr,
        policy: ResiliencePolicy,
        transport: Transport,
    ) -> CloudClient {
        let sender = build_sender(addr, &policy, transport);
        CloudClient {
            addr,
            name: "cloud".to_string(),
            resilience: Resilience::new(policy),
            transport,
            sender,
            registry: None,
        }
    }

    /// Connect with an explicit resilience policy.
    #[deprecated(note = "transport-split API: use `connect_with` and pick a `Transport`")]
    pub fn connect_with_policy(addr: SocketAddr, policy: ResiliencePolicy) -> CloudClient {
        CloudClient::connect_with(addr, policy, Transport::Blocking)
    }

    /// Attach a metrics registry. Every round trip then counts into
    /// `cloudstore_client_requests_total{store,method,status}` (status
    /// `"error"` for transport failures), accumulates request/response
    /// bytes, and records wall-clock round-trip time into the
    /// `cloudstore_net_rtt_ns{store,method}` histogram.
    pub fn with_registry(mut self, registry: Arc<obs::Registry>) -> CloudClient {
        self.registry = Some(registry);
        self
    }

    /// Set the display name ("cloud1"/"cloud2" in the benchmarks).
    pub fn with_name(mut self, name: impl Into<String>) -> CloudClient {
        self.name = name.into();
        self
    }

    /// Override the total per-request deadline (connect timeout is clamped
    /// to it). The rest of the policy — and the transport — keeps its
    /// current values.
    pub fn with_timeout(self, timeout: Duration) -> CloudClient {
        let mut policy = self.resilience.policy().clone();
        policy.connect_timeout = policy.connect_timeout.min(timeout);
        policy.request_timeout = timeout;
        let mut c = CloudClient::connect_with(self.addr, policy, self.transport);
        c.name = self.name;
        c.registry = self.registry;
        c
    }

    /// This endpoint's live resilience state (breaker, retry counters).
    pub fn resilience(&self) -> &Resilience {
        &self.resilience
    }

    /// Send one HTTP request through the resilience layer and return the
    /// response. This is how non-object endpoints (`GET /metrics`,
    /// `GET /trace`) are reached; the key-value API is built on it.
    pub fn round_trip(&self, req: &Request) -> Result<Response> {
        // Join the caller's trace when one is active on this thread,
        // otherwise become the root of a new one. The context is minted
        // once, *outside* the retry loop, so every attempt of one logical
        // request shares a single span identity.
        let parent = obs::ctx::current();
        let ctx = match parent {
            Some(p) => p.child(),
            None => obs::TraceContext::new_root(),
        };
        let (trace, scope) = if parent.is_none() {
            (
                Some(obs::Trace::begin(req.method.clone()).with_ctx(ctx)),
                Some(obs::ctx::activate(ctx)),
            )
        } else {
            (None, None)
        };
        let traced = req.clone().with_header("x-trace-ctx", ctx.encode());
        let t0 = Instant::now();
        let result = self.round_trip_inner(&traced);
        if let Ok(resp) = &result {
            if let Some(span) = resp
                .header("x-server-span")
                .and_then(obs::ServerSpan::decode)
            {
                obs::ctx::report_server_span(span);
            }
        }
        if let Some(mut t) = trace {
            t.add("net_rtt", t0.elapsed());
            if let Some(s) = scope {
                t.absorb_scope(s.finish());
            }
            if let Err(e) = &result {
                t.set_error(e.to_string());
            }
            match &self.registry {
                Some(reg) => {
                    t.finish(reg, "cloudstore_client");
                }
                None => {
                    t.complete("cloudstore-client");
                }
            }
        }
        if let Some(reg) = &self.registry {
            let status = match &result {
                Ok(resp) => resp.status.to_string(),
                Err(_) => "error".to_string(),
            };
            let labels: &[(&str, &str)] = &[
                ("store", &self.name),
                ("method", &req.method),
                ("status", &status),
            ];
            reg.counter("cloudstore_client_requests_total", labels)
                .inc();
            reg.counter(
                "cloudstore_client_bytes_sent_total",
                &[("store", &self.name)],
            )
            .add(req.body.len() as u64);
            if let Ok(resp) = &result {
                reg.counter(
                    "cloudstore_client_bytes_received_total",
                    &[("store", &self.name)],
                )
                .add(resp.body.len() as u64);
            }
            reg.histogram(
                "cloudstore_net_rtt_ns",
                &[("store", &self.name), ("method", &req.method)],
            )
            .record_duration(t0.elapsed());
            self.resilience.publish(reg, &self.name);
        }
        result
    }

    fn round_trip_inner(&self, req: &Request) -> Result<Response> {
        let head_only = req.method == "HEAD";
        let meta = ReplyMeta { head_only };
        // Replays are safe here: every cloudstore verb is idempotent —
        // GET/HEAD/DELETE by definition, PUT carries the full object, and
        // batch POST re-applies the same op list to the same keys.
        self.resilience.run_idempotent(|deadline, attempt| {
            // A multiplexed sender interleaves callers on one shared
            // connection, so each request carries a correlation id the
            // server echoes back as `x-mux-id`; the blocking sender
            // answers `None` and the header is omitted — old wire shape.
            let id = self.sender.next_correlation_id();
            let mut wire = Vec::new();
            match id {
                Some(n) => write_request(
                    &mut wire,
                    &req.clone().with_header("x-mux-id", n.to_string()),
                )?,
                None => write_request(&mut wire, req)?,
            }
            let opts = SendOptions {
                // Retries bypass shared/pooled sockets — what just failed.
                fresh_conn: attempt > 1,
                deadline: Some(deadline.instant()),
                correlation_id: id,
                meta,
                ..SendOptions::default()
            };
            let frame = self.sender.send(&wire, &opts)?;
            read_response(&mut frame.as_slice(), head_only)
        })
    }

    fn object_path(key: &str) -> String {
        format!("/v1/objects/{}", escape_segment(key))
    }

    fn parse_versioned(resp: &Response) -> Result<Versioned> {
        let etag = resp
            .header("etag")
            .and_then(Etag::from_hex)
            .ok_or_else(|| StoreError::protocol("response missing etag"))?;
        // A missing or garbled modification time is a protocol violation,
        // exactly like a missing etag: defaulting it to 0 would make expiry
        // logic see an object "modified at the epoch" and treat it as
        // permanently stale.
        let modified_ms = resp
            .header("x-modified-ms")
            .ok_or_else(|| StoreError::protocol("response missing x-modified-ms"))?
            .parse()
            .map_err(|_| StoreError::protocol("unparseable x-modified-ms"))?;
        Ok(Versioned::with_etag(
            Bytes::copy_from_slice(&resp.body),
            etag,
            modified_ms,
        ))
    }

    /// Ship a whole batch in one `POST /v1/batch` round trip. The server
    /// answers every op positionally, so an N-key batch pays one RTT where
    /// the trait's default loop would pay N.
    fn run_batch(&self, ops: &[BatchOp]) -> Result<Vec<BatchReply>> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(reg) = &self.registry {
            reg.histogram("cloudstore_client_batch_size", &[("store", &self.name)])
                .record(ops.len() as u64);
        }
        let t0 = Instant::now();
        let req = Request::new("POST", "/v1/batch").with_body(batch::encode_request(ops));
        let resp = self.round_trip(&req)?;
        if resp.status != 200 {
            return Err(StoreError::Rejected(format!(
                "batch returned {}",
                resp.status
            )));
        }
        let replies = batch::decode_response(&resp.body)?;
        if replies.len() != ops.len() {
            return Err(StoreError::protocol(format!(
                "batch answered {} of {} ops",
                replies.len(),
                ops.len()
            )));
        }
        if let Some(reg) = &self.registry {
            reg.histogram(
                "cloudstore_client_batch_duration_ns",
                &[("store", &self.name)],
            )
            .record_duration(t0.elapsed());
        }
        Ok(replies)
    }

    /// Health check.
    pub fn ping(&self) -> Result<bool> {
        Ok(self.round_trip(&Request::new("GET", "/v1/ping"))?.status == 200)
    }

    /// Scrape the server's `GET /metrics` page (Prometheus text format).
    pub fn fetch_metrics(&self) -> Result<String> {
        let resp = self.round_trip(&Request::new("GET", "/metrics"))?;
        if resp.status != 200 {
            return Err(StoreError::Rejected(format!(
                "metrics returned {}",
                resp.status
            )));
        }
        String::from_utf8(resp.body).map_err(|_| StoreError::protocol("non-utf8 metrics body"))
    }
}

impl RpcClient for CloudClient {
    fn sender(&self) -> &dyn RpcSender {
        self.sender.as_ref()
    }
}

impl KeyValue for CloudClient {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        let req = Request::new("PUT", &Self::object_path(key)).with_body(value.to_vec());
        let resp = self.round_trip(&req)?;
        match resp.status {
            200 | 201 => Ok(()),
            s => Err(StoreError::Rejected(format!("PUT returned {s}"))),
        }
    }

    fn put_versioned(&self, key: &str, value: &[u8]) -> Result<Etag> {
        let req = Request::new("PUT", &Self::object_path(key)).with_body(value.to_vec());
        let resp = self.round_trip(&req)?;
        match resp.status {
            200 | 201 => resp
                .header("etag")
                .and_then(Etag::from_hex)
                .ok_or_else(|| StoreError::protocol("PUT response missing etag")),
            s => Err(StoreError::Rejected(format!("PUT returned {s}"))),
        }
    }

    fn get(&self, key: &str) -> Result<Option<Bytes>> {
        let resp = self.round_trip(&Request::new("GET", &Self::object_path(key)))?;
        match resp.status {
            200 => Ok(Some(Bytes::from(resp.body))),
            404 => Ok(None),
            s => Err(StoreError::Rejected(format!("GET returned {s}"))),
        }
    }

    fn delete(&self, key: &str) -> Result<bool> {
        let resp = self.round_trip(&Request::new("DELETE", &Self::object_path(key)))?;
        match resp.status {
            204 => Ok(true),
            404 => Ok(false),
            s => Err(StoreError::Rejected(format!("DELETE returned {s}"))),
        }
    }

    fn contains(&self, key: &str) -> Result<bool> {
        let resp = self.round_trip(&Request::new("HEAD", &Self::object_path(key)))?;
        Ok(resp.status == 200)
    }

    fn keys(&self) -> Result<Vec<String>> {
        let resp = self.round_trip(&Request::new("GET", "/v1/keys"))?;
        if resp.status != 200 {
            return Err(StoreError::Rejected(format!(
                "keys returned {}",
                resp.status
            )));
        }
        let text =
            String::from_utf8(resp.body).map_err(|_| StoreError::protocol("non-utf8 key list"))?;
        Ok(text.lines().filter_map(unescape_segment).collect())
    }

    fn clear(&self) -> Result<()> {
        let resp = self.round_trip(&Request::new("POST", "/v1/clear"))?;
        if resp.status == 200 {
            Ok(())
        } else {
            Err(StoreError::Rejected(format!(
                "clear returned {}",
                resp.status
            )))
        }
    }

    fn stats(&self) -> Result<StoreStats> {
        let resp = self.round_trip(&Request::new("GET", "/v1/stats"))?;
        let text =
            String::from_utf8(resp.body).map_err(|_| StoreError::protocol("non-utf8 stats"))?;
        let mut parts = text.split_whitespace();
        let keys = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
        let bytes = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
        Ok(StoreStats { keys, bytes })
    }

    fn get_versioned(&self, key: &str) -> Result<Option<Versioned>> {
        let resp = self.round_trip(&Request::new("GET", &Self::object_path(key)))?;
        match resp.status {
            200 => Ok(Some(Self::parse_versioned(&resp)?)),
            404 => Ok(None),
            s => Err(StoreError::Rejected(format!("GET returned {s}"))),
        }
    }

    fn get_many(&self, keys: &[&str]) -> Result<Vec<Option<Bytes>>> {
        let ops: Vec<BatchOp> = keys
            .iter()
            .map(|k| BatchOp::Get((*k).to_string()))
            .collect();
        self.run_batch(&ops)?
            .into_iter()
            .map(|r| match r {
                BatchReply::Value(v) => Ok(Some(v.data)),
                BatchReply::Miss => Ok(None),
                other => Err(StoreError::protocol(format!("get answered with {other:?}"))),
            })
            .collect()
    }

    fn put_many(&self, entries: &[(&str, &[u8])]) -> Result<()> {
        self.put_many_versioned(entries).map(|_| ())
    }

    fn delete_many(&self, keys: &[&str]) -> Result<Vec<bool>> {
        let ops: Vec<BatchOp> = keys
            .iter()
            .map(|k| BatchOp::Delete((*k).to_string()))
            .collect();
        self.run_batch(&ops)?
            .into_iter()
            .map(|r| match r {
                BatchReply::Deleted(present) => Ok(present),
                other => Err(StoreError::protocol(format!(
                    "delete answered with {other:?}"
                ))),
            })
            .collect()
    }

    fn get_many_versioned(&self, keys: &[&str]) -> Result<Vec<Option<Versioned>>> {
        let ops: Vec<BatchOp> = keys
            .iter()
            .map(|k| BatchOp::Get((*k).to_string()))
            .collect();
        self.run_batch(&ops)?
            .into_iter()
            .map(|r| match r {
                BatchReply::Value(v) => Ok(Some(v)),
                BatchReply::Miss => Ok(None),
                other => Err(StoreError::protocol(format!("get answered with {other:?}"))),
            })
            .collect()
    }

    fn put_many_versioned(&self, entries: &[(&str, &[u8])]) -> Result<Vec<Etag>> {
        let ops: Vec<BatchOp> = entries
            .iter()
            .map(|&(k, v)| BatchOp::Put(k.to_string(), v.to_vec()))
            .collect();
        self.run_batch(&ops)?
            .into_iter()
            .map(|r| match r {
                BatchReply::Put(etag) => Ok(etag),
                other => Err(StoreError::protocol(format!("put answered with {other:?}"))),
            })
            .collect()
    }

    fn get_if_none_match(&self, key: &str, etag: Etag) -> Result<CondGet> {
        let req = Request::new("GET", &Self::object_path(key))
            .with_header("if-none-match", format!("\"{}\"", etag.to_hex()));
        let resp = self.round_trip(&req)?;
        match resp.status {
            304 => Ok(CondGet::NotModified),
            200 => Ok(CondGet::Modified(Self::parse_versioned(&resp)?)),
            404 => Ok(CondGet::Missing),
            s => Err(StoreError::Rejected(format!(
                "conditional GET returned {s}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CloudServer;
    use std::sync::Arc;

    #[test]
    fn contract() {
        let server = CloudServer::start_local().unwrap();
        kvapi::contract::run_all(&CloudClient::connect(server.addr()));
    }

    #[test]
    fn contract_concurrent() {
        let server = CloudServer::start_local().unwrap();
        kvapi::contract::run_all_concurrent(Arc::new(CloudClient::connect(server.addr())));
    }

    #[test]
    fn native_conditional_get_uses_304() {
        let server = CloudServer::start_local().unwrap();
        let c = CloudClient::connect(server.addr());
        c.put("obj", b"version 1").unwrap();
        let v = c.get_versioned("obj").unwrap().unwrap();
        assert_eq!(&v.data[..], b"version 1");
        assert!(v.modified_ms > 0);
        // Matching etag → NotModified (no body crossed the wire).
        assert_eq!(
            c.get_if_none_match("obj", v.etag).unwrap(),
            CondGet::NotModified
        );
        // Server-side update → Modified with new tag.
        c.put("obj", b"version 2").unwrap();
        match c.get_if_none_match("obj", v.etag).unwrap() {
            CondGet::Modified(nv) => {
                assert_eq!(&nv.data[..], b"version 2");
                assert_ne!(nv.etag, v.etag);
            }
            other => panic!("expected Modified, got {other:?}"),
        }
        c.delete("obj").unwrap();
        assert_eq!(
            c.get_if_none_match("obj", v.etag).unwrap(),
            CondGet::Missing
        );
    }

    #[test]
    fn server_assigns_fresh_etags_per_put() {
        let server = CloudServer::start_local().unwrap();
        let c = CloudClient::connect(server.addr());
        c.put("k", b"same bytes").unwrap();
        let t1 = c.get_versioned("k").unwrap().unwrap().etag;
        c.put("k", b"same bytes").unwrap();
        let t2 = c.get_versioned("k").unwrap().unwrap().etag;
        assert_ne!(t1, t2, "cloud store uses version-counter etags");
    }

    #[test]
    fn latency_injection_slows_requests() {
        use netsim::LatencyModel;
        let server = CloudServer::start(crate::server::CloudServerConfig {
            latency: LatencyModel {
                base_rtt_ms: 30.0,
                jitter_sigma: 0.0,
                bandwidth_bps: f64::INFINITY,
                contention_prob: 0.0,
                contention_mult: 1.0,
                service_ms: 0.0,
            },
            ..Default::default()
        })
        .unwrap();
        let c = CloudClient::connect(server.addr());
        c.put("k", b"v").unwrap();
        let t0 = std::time::Instant::now();
        for _ in 0..3 {
            c.get("k").unwrap();
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(85),
            "3 gets at 30ms injected RTT took only {elapsed:?}"
        );
    }

    #[test]
    fn stats_and_ping() {
        let server = CloudServer::start_local().unwrap();
        let c = CloudClient::connect(server.addr());
        assert!(c.ping().unwrap());
        c.put("a", &[0u8; 100]).unwrap();
        c.put("b", &[0u8; 50]).unwrap();
        let st = c.stats().unwrap();
        assert_eq!(st.keys, 2);
        assert_eq!(st.bytes, 150);
    }

    #[test]
    fn stopped_server_yields_errors_not_hangs() {
        let mut server = CloudServer::start_local().unwrap();
        let c = CloudClient::connect(server.addr()).with_timeout(Duration::from_millis(500));
        c.put("k", b"v").unwrap();
        server.stop();
        assert!(c.get("k").is_err());
    }

    #[test]
    fn metrics_endpoint_reports_routes_statuses_and_latency() {
        let server = CloudServer::start_local().unwrap();
        let c = CloudClient::connect(server.addr());
        c.put("k", b"value").unwrap();
        c.get("k").unwrap();
        assert_eq!(c.get("absent").unwrap(), None); // object 404
                                                    // Fallthrough 404: a route no handler claims.
        let resp = c
            .round_trip(&Request::new("GET", "/no/such/route"))
            .unwrap();
        assert_eq!(resp.status, 404);

        let text = c.fetch_metrics().unwrap();
        // Every series carries the server's stable node identity.
        let node = format!("node=\"{}\"", server.addr());
        assert!(
            text.contains(&format!(
                "cloudstore_requests_total{{method=\"PUT\",route=\"/v1/objects\",status=\"201\",{node}}} 1"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "cloudstore_requests_total{{method=\"GET\",route=\"/v1/objects\",status=\"200\",{node}}} 1"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "cloudstore_requests_total{{method=\"GET\",route=\"/v1/objects\",status=\"404\",{node}}} 1"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "cloudstore_requests_total{{method=\"GET\",route=\"other\",status=\"404\",{node}}} 1"
            )),
            "fallthrough 404 not counted: {text}"
        );
        // The latency histogram saw all four object/other requests.
        assert!(
            text.contains(&format!(
                "cloudstore_request_duration_ns_count{{route=\"/v1/objects\",{node}}} 3"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "cloudstore_bytes_in_total{{route=\"/v1/objects\",{node}}} 5"
            )),
            "{text}"
        );
        // Server-side registry agrees with what the scrape returned.
        assert!(server
            .registry()
            .render_prometheus()
            .contains("cloudstore_requests_total"));
    }

    #[test]
    fn client_registry_counts_round_trips() {
        let server = CloudServer::start_local().unwrap();
        let reg = Arc::new(obs::Registry::new());
        let c = CloudClient::connect(server.addr())
            .with_name("cloud1")
            .with_registry(reg.clone());
        c.put("k", b"12345").unwrap();
        c.get("k").unwrap();
        c.get("k").unwrap();
        let text = reg.render_prometheus();
        assert!(
            text.contains(
                "cloudstore_client_requests_total{method=\"GET\",status=\"200\",store=\"cloud1\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains("cloudstore_client_bytes_sent_total{store=\"cloud1\"} 5"),
            "{text}"
        );
        assert!(
            text.contains("cloudstore_client_bytes_received_total{store=\"cloud1\"} 10"),
            "{text}"
        );
        let rtt = reg
            .histogram_snapshot(
                "cloudstore_net_rtt_ns",
                &[("store", "cloud1"), ("method", "GET")],
            )
            .unwrap();
        assert_eq!(rtt.count, 2);
        assert!(rtt.min > 0, "round trips take nonzero time");
    }

    #[test]
    fn batch_ops_round_trip_with_server_etags() {
        let server = CloudServer::start_local().unwrap();
        let c = CloudClient::connect(server.addr());
        let tags = c
            .put_many_versioned(&[("a", b"alpha".as_slice()), ("b", b"beta"), ("a", b"alpha2")])
            .unwrap();
        assert_eq!(tags.len(), 3);
        assert_ne!(
            tags[0], tags[2],
            "cloud store assigns a fresh version per put"
        );
        // Last write wins for the duplicate key.
        let got = c.get_many(&["a", "missing", "b"]).unwrap();
        assert_eq!(got[0].as_deref(), Some(b"alpha2".as_ref()));
        assert_eq!(got[1], None);
        assert_eq!(got[2].as_deref(), Some(b"beta".as_ref()));
        // Versioned batch reads return the server's tags, usable for
        // revalidation.
        let vers = c.get_many_versioned(&["a", "b"]).unwrap();
        assert_eq!(vers[0].as_ref().unwrap().etag, tags[2]);
        assert_eq!(
            c.get_if_none_match("b", vers[1].as_ref().unwrap().etag)
                .unwrap(),
            CondGet::NotModified
        );
        assert_eq!(
            c.delete_many(&["a", "missing", "b"]).unwrap(),
            vec![true, false, true]
        );
        assert_eq!(c.stats().unwrap().keys, 0);
    }

    #[test]
    fn batch_amortizes_injected_rtt() {
        use netsim::LatencyModel;
        // 30ms per request, no jitter, infinite bandwidth: latency is purely
        // per-round-trip, which is what batching amortizes.
        let server = CloudServer::start(crate::server::CloudServerConfig {
            latency: LatencyModel {
                base_rtt_ms: 30.0,
                jitter_sigma: 0.0,
                bandwidth_bps: f64::INFINITY,
                contention_prob: 0.0,
                contention_mult: 1.0,
                service_ms: 0.0,
            },
            ..Default::default()
        })
        .unwrap();
        let c = CloudClient::connect(server.addr());
        let keys: Vec<String> = (0..16).map(|i| format!("k{i}")).collect();
        let entries: Vec<(&str, &[u8])> = keys.iter().map(|k| (k.as_str(), k.as_bytes())).collect();
        c.put_many(&entries).unwrap();

        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let t0 = std::time::Instant::now();
        let got = c.get_many(&refs).unwrap();
        let batched = t0.elapsed();
        assert!(got.iter().all(Option::is_some));
        // One framed request = one RTT: 16 keys must land well under 4× the
        // 30ms single-RTT latency (the sequential default would pay ~16×).
        assert!(
            batched < Duration::from_millis(120),
            "batched get_many of 16 keys took {batched:?}, expected < 4×30ms"
        );
        assert!(
            batched >= Duration::from_millis(25),
            "latency injection disappeared"
        );
    }

    #[test]
    fn head_contains_skips_body_latency() {
        use netsim::LatencyModel;
        // Finite bandwidth so transferring the body would cost real time:
        // 1 MB at 1 MB/s ≈ 1s. An existence check must stay near the 5ms
        // base RTT because HEAD moves no body.
        let server = CloudServer::start(crate::server::CloudServerConfig {
            latency: LatencyModel {
                base_rtt_ms: 5.0,
                jitter_sigma: 0.0,
                bandwidth_bps: 1_000_000.0,
                contention_prob: 0.0,
                contention_mult: 1.0,
                service_ms: 0.0,
            },
            ..Default::default()
        })
        .unwrap();
        let c = CloudClient::connect(server.addr());
        c.put("big", &vec![7u8; 1_000_000]).unwrap();
        let t0 = std::time::Instant::now();
        assert!(c.contains("big").unwrap());
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(300),
            "contains transferred the body: took {elapsed:?}"
        );
    }

    #[test]
    fn batch_metrics_recorded_on_both_sides() {
        let server = CloudServer::start_local().unwrap();
        let reg = Arc::new(obs::Registry::new());
        let c = CloudClient::connect(server.addr())
            .with_name("cloud1")
            .with_registry(reg.clone());
        c.put_many(&[("a", b"1".as_slice()), ("b", b"2")]).unwrap();
        c.get_many(&["a", "b", "c"]).unwrap();
        let sizes = reg
            .histogram_snapshot("cloudstore_client_batch_size", &[("store", "cloud1")])
            .unwrap();
        assert_eq!(sizes.count, 2);
        assert_eq!(sizes.min, 2);
        assert_eq!(sizes.max, 3);
        let durations = reg
            .histogram_snapshot(
                "cloudstore_client_batch_duration_ns",
                &[("store", "cloud1")],
            )
            .unwrap();
        assert_eq!(durations.count, 2);
        // The server counted the same batches on its side (node-tagged).
        let text = c.fetch_metrics().unwrap();
        let node = format!("node=\"{}\"", server.addr());
        assert!(
            text.contains(&format!("cloudstore_batch_ops_count{{{node}}} 2")),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "cloudstore_requests_total{{method=\"POST\",route=\"/v1/batch\",status=\"200\",{node}}} 2"
            )),
            "{text}"
        );
    }

    #[test]
    fn empty_batches_do_not_touch_the_network() {
        let mut server = CloudServer::start_local().unwrap();
        let c = CloudClient::connect(server.addr()).with_timeout(Duration::from_millis(500));
        c.ping().unwrap();
        server.stop();
        // With the server gone, only a zero-op batch can still succeed.
        assert_eq!(c.get_many(&[]).unwrap(), Vec::<Option<Bytes>>::new());
        c.put_many(&[]).unwrap();
        assert_eq!(c.delete_many(&[]).unwrap(), Vec::<bool>::new());
    }

    #[test]
    fn missing_or_garbled_modified_ms_is_a_protocol_error() {
        let etag = format!("\"{}\"", Etag(7).to_hex());
        let ok = Response::new(200)
            .with_header("etag", etag.clone())
            .with_header("x-modified-ms", "123")
            .with_body(b"v".to_vec());
        assert_eq!(CloudClient::parse_versioned(&ok).unwrap().modified_ms, 123);
        // Regression: these used to silently parse as modified_ms == 0
        // ("modified at the epoch"), which expiry logic reads as
        // permanently stale.
        let missing = Response::new(200)
            .with_header("etag", etag.clone())
            .with_body(b"v".to_vec());
        assert!(matches!(
            CloudClient::parse_versioned(&missing),
            Err(StoreError::Protocol(_))
        ));
        let garbled = Response::new(200)
            .with_header("etag", etag)
            .with_header("x-modified-ms", "yesterday")
            .with_body(b"v".to_vec());
        assert!(matches!(
            CloudClient::parse_versioned(&garbled),
            Err(StoreError::Protocol(_))
        ));
    }

    #[test]
    fn aged_pool_does_not_inflate_first_request_latency() {
        let server = CloudServer::start_local().unwrap();
        let mut short_age = resilience::ResiliencePolicy::test_profile();
        short_age.max_idle_age = Duration::from_millis(50);
        let aging = CloudClient::connect_with(server.addr(), short_age, Transport::Blocking);
        let control = CloudClient::connect_with(
            server.addr(),
            resilience::ResiliencePolicy::test_profile(),
            Transport::Blocking,
        );

        aging.put("k", b"v").unwrap();
        control.put("k", b"v").unwrap();
        // Server-side idle close: both pools now hold dead sockets, but
        // only `aging` knows its connection is too old to trust.
        server.drop_connections();
        std::thread::sleep(Duration::from_millis(100));

        assert_eq!(aging.get("k").unwrap().as_deref(), Some(b"v".as_ref()));
        assert_eq!(
            aging.resilience().retries(),
            0,
            "aged-out conn must be dropped at checkout, not discovered via a doomed round trip"
        );
        assert_eq!(control.get("k").unwrap().as_deref(), Some(b"v".as_ref()));
        assert!(
            control.resilience().retries() >= 1,
            "control client (long idle age) pays the doomed first attempt"
        );
    }

    #[test]
    fn injected_error_faults_surface_and_clear() {
        use netsim::FaultModel;
        let server = CloudServer::start(crate::server::CloudServerConfig {
            fault: FaultModel {
                error_prob: 1.0,
                ..FaultModel::none()
            },
            ..Default::default()
        })
        .unwrap();
        let c = CloudClient::connect_with(
            server.addr(),
            resilience::ResiliencePolicy::test_profile(),
            Transport::Blocking,
        );
        // In-band server errors are rejections, not transport failures:
        // no retry, and the breaker stays closed.
        assert!(matches!(c.get("k"), Err(StoreError::Rejected(_))));
        assert_eq!(c.resilience().retries(), 0);
        server.fault_injector().set_model(FaultModel::none());
        assert_eq!(c.get("k").unwrap(), None);
    }

    #[test]
    fn joined_trace_carries_server_span_and_reaches_the_recorder() {
        use netsim::FaultModel;
        // Force a 500 so the server-side record is an error trace: the tail
        // sampler retains 100% of those, making retrieval deterministic.
        let server = CloudServer::start(crate::server::CloudServerConfig {
            fault: FaultModel {
                error_prob: 1.0,
                ..FaultModel::none()
            },
            ..Default::default()
        })
        .unwrap();
        let c = CloudClient::connect_with(
            server.addr(),
            resilience::ResiliencePolicy::test_profile(),
            Transport::Blocking,
        );
        let root = obs::TraceContext::new_root();
        let scope = obs::ctx::activate(root);
        assert!(matches!(c.put("k", b"v"), Err(StoreError::Rejected(_))));
        let data = scope.finish();
        // The server answered with its span even though the reply was a
        // fault-injected 500.
        assert_eq!(data.server_spans.len(), 1, "{:?}", data.server_spans);
        assert_eq!(data.server_spans[0].server, "cloudstore");
        // The server-side record joined our trace id and was retained.
        let traces = obs::FlightRecorder::global().by_trace_id(root.trace_id);
        let server_rec = traces
            .iter()
            .find(|t| t.origin == "cloudstore")
            .expect("server-side trace retained");
        assert_eq!(server_rec.op, "PUT /v1/objects");
        // The client minted a child span for the round trip; the server
        // span parents on that child, inside our trace.
        assert_eq!(server_rec.ctx.unwrap().trace_id, root.trace_id);
        assert!(
            server_rec.ctx.unwrap().parent_id.is_some(),
            "server span must parent on the client context"
        );
        assert!(server_rec.stages.iter().any(|&(s, _)| s == "execute"));
        // And GET /trace exports it as JSON.
        server.fault_injector().set_model(FaultModel::none());
        let resp = c.round_trip(&Request::new("GET", "/trace")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(
            body.contains(&format!("{:032x}", root.trace_id)),
            "GET /trace missing the joined trace: {body}"
        );
    }

    #[test]
    fn untraced_requests_still_work_and_get_no_span_header() {
        // Mixed versions, old client side: a request without `x-trace-ctx`
        // is served identically and the response carries no span header.
        let server = CloudServer::start_local().unwrap();
        let c = CloudClient::connect(server.addr());
        let bare = Request::new("GET", "/v1/ping");
        let resp = c.round_trip_inner(&bare).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-server-span"), None);
        // Mixed versions, old server side: the traced client tolerates a
        // response lacking the span header (and a garbled one).
        assert!(obs::ServerSpan::decode("not a span").is_none());
        let root = obs::TraceContext::new_root();
        let scope = obs::ctx::activate(root);
        let spanless = Response::new(200);
        if let Some(span) = spanless
            .header("x-server-span")
            .and_then(obs::ServerSpan::decode)
        {
            obs::ctx::report_server_span(span);
        }
        assert!(scope.finish().server_spans.is_empty());
    }

    #[test]
    fn request_counter_visible() {
        let server = CloudServer::start_local().unwrap();
        let c = CloudClient::connect(server.addr());
        c.put("k", b"v").unwrap();
        c.get("k").unwrap();
        assert!(
            server
                .requests_served
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 2
        );
    }

    fn mux_client(addr: SocketAddr) -> CloudClient {
        CloudClient::connect_with(
            addr,
            resilience::ResiliencePolicy::test_profile(),
            Transport::Multiplexed,
        )
    }

    #[test]
    fn transports_are_reported() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert_eq!(
            RpcClient::transport(&CloudClient::connect(addr)),
            Transport::Blocking,
            "default transport stays blocking for compatibility"
        );
        assert_eq!(
            RpcClient::transport(&mux_client(addr)),
            Transport::Multiplexed
        );
    }

    #[test]
    fn multiplexed_contract() {
        let server = CloudServer::start_local().unwrap();
        kvapi::contract::run_all(&mux_client(server.addr()));
    }

    #[test]
    fn multiplexed_contract_concurrent() {
        // Every thread's requests interleave on the one shared connection;
        // x-mux-id correlation must route each reply to its caller.
        let server = CloudServer::start_local().unwrap();
        kvapi::contract::run_all_concurrent(Arc::new(mux_client(server.addr())));
    }

    #[test]
    fn multiplexed_head_and_304_keep_the_shared_connection_in_sync() {
        // Body-suppressed replies are the framing hazard on a shared
        // connection: a HEAD reply advertises a content-length it never
        // sends, and a 304 does the same. If the framer waited for those
        // bodies, every later reply on the connection would misframe.
        let server = CloudServer::start_local().unwrap();
        let c = mux_client(server.addr());
        c.put("big", &vec![7u8; 100_000]).unwrap();
        let v = c.get_versioned("big").unwrap().unwrap();
        assert!(c.contains("big").unwrap(), "HEAD frames without a body");
        assert_eq!(
            c.get_if_none_match("big", v.etag).unwrap(),
            CondGet::NotModified,
            "304 frames without a body"
        );
        // The connection still frames full-body replies correctly.
        assert_eq!(c.get("big").unwrap().map(|b| b.len()), Some(100_000));
        assert!(!c.contains("absent").unwrap());
    }

    #[test]
    fn multiplexed_replies_carry_the_server_span() {
        let server = CloudServer::start_local().unwrap();
        let c = mux_client(server.addr());
        let root = obs::TraceContext::new_root();
        let scope = obs::ctx::activate(root);
        c.put("k", b"v").unwrap();
        let data = scope.finish();
        assert_eq!(data.server_spans.len(), 1, "{:?}", data.server_spans);
        assert_eq!(data.server_spans[0].server, "cloudstore");
    }

    #[test]
    fn multiplexed_batches_amortize_like_blocking_ones() {
        let server = CloudServer::start_local().unwrap();
        let c = mux_client(server.addr());
        let tags = c
            .put_many_versioned(&[("a", b"alpha".as_slice()), ("b", b"beta")])
            .unwrap();
        assert_eq!(tags.len(), 2);
        let got = c.get_many(&["a", "missing", "b"]).unwrap();
        assert_eq!(got[0].as_deref(), Some(b"alpha".as_ref()));
        assert_eq!(got[1], None);
        assert_eq!(got[2].as_deref(), Some(b"beta".as_ref()));
    }
}
