//! Minimal HTTP/1.1 framing: enough for an object-store protocol.
//!
//! Supports: request/status lines, headers, `Content-Length` bodies,
//! keep-alive (the default in 1.1) and `Connection: close`. Chunked
//! transfer encoding is deliberately out of scope — both ends of this
//! protocol always know their body lengths.

use kvapi::{Result, StoreError};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};

/// Maximum accepted header block size — guards the server against garbage.
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Maximum accepted body size (1 GiB).
const MAX_BODY_BYTES: usize = 1 << 30;

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method (GET/PUT/DELETE/HEAD/POST).
    pub method: String,
    /// Request target (path + optional query), percent-encoded.
    pub path: String,
    /// Header map, keys lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Body bytes (empty when no Content-Length).
    pub body: Vec<u8>,
}

impl Request {
    /// Build a request.
    pub fn new(method: &str, path: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// Attach a body (sets Content-Length on write).
    pub fn with_body(mut self, body: Vec<u8>) -> Request {
        self.body = body;
        self
    }

    /// Set a header (key stored lower-case).
    pub fn with_header(mut self, key: &str, value: impl Into<String>) -> Request {
        self.headers.insert(key.to_ascii_lowercase(), value.into());
        self
    }

    /// Header lookup (case-insensitive).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .get(&key.to_ascii_lowercase())
            .map(String::as_str)
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 304, 404, ...).
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Header map, keys lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Build a response with a standard reason phrase.
    pub fn new(status: u16) -> Response {
        let reason = match status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            304 => "Not Modified",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            _ => "Unknown",
        };
        Response {
            status,
            reason: reason.to_string(),
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// Attach a body.
    pub fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// Set a header (key stored lower-case).
    pub fn with_header(mut self, key: &str, value: impl Into<String>) -> Response {
        self.headers.insert(key.to_ascii_lowercase(), value.into());
        self
    }

    /// Header lookup (case-insensitive).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .get(&key.to_ascii_lowercase())
            .map(String::as_str)
    }
}

fn read_head(r: &mut impl BufRead) -> Result<Option<Vec<String>>> {
    let mut lines = Vec::new();
    let mut total = 0usize;
    loop {
        let mut line = String::new();
        let n = r.read_line(&mut line)?;
        if n == 0 {
            // Clean EOF before any bytes = peer closed between requests.
            return if lines.is_empty() && total == 0 {
                Ok(None)
            } else {
                Err(StoreError::protocol("connection closed mid-header"))
            };
        }
        total += n;
        if total > MAX_HEADER_BYTES {
            return Err(StoreError::protocol("header block too large"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            return Ok(Some(lines));
        }
        lines.push(trimmed.to_string());
    }
}

fn parse_headers(lines: &[String]) -> Result<BTreeMap<String, String>> {
    let mut headers = BTreeMap::new();
    for line in lines {
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| StoreError::protocol(format!("malformed header {line:?}")))?;
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
    }
    Ok(headers)
}

fn read_body(r: &mut impl BufRead, headers: &BTreeMap<String, String>) -> Result<Vec<u8>> {
    let len = match headers.get("content-length") {
        None => return Ok(Vec::new()),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| StoreError::protocol(format!("bad content-length {v:?}")))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(StoreError::protocol("body too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|_| StoreError::protocol("truncated body"))?;
    Ok(body)
}

/// Read one request; `Ok(None)` on clean connection close.
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>> {
    let Some(lines) = read_head(r)? else {
        return Ok(None);
    };
    let first = lines
        .first()
        .ok_or_else(|| StoreError::protocol("empty request"))?;
    let mut parts = first.split_whitespace();
    let (method, path, version) = (
        parts
            .next()
            .ok_or_else(|| StoreError::protocol("missing method"))?,
        parts
            .next()
            .ok_or_else(|| StoreError::protocol("missing path"))?,
        parts.next().unwrap_or("HTTP/1.1"),
    );
    if !version.starts_with("HTTP/1.") {
        return Err(StoreError::protocol(format!(
            "unsupported version {version}"
        )));
    }
    let headers = parse_headers(lines.get(1..).unwrap_or_default())?;
    let body = read_body(r, &headers)?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    }))
}

/// Write a request (always emits Content-Length, keeps the connection open).
pub fn write_request(w: &mut impl Write, req: &Request) -> std::io::Result<()> {
    write!(w, "{} {} HTTP/1.1\r\n", req.method, req.path)?;
    for (k, v) in &req.headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    write!(w, "content-length: {}\r\n\r\n", req.body.len())?;
    w.write_all(&req.body)?;
    w.flush()
}

/// Read one response. `head_only` skips the body (HEAD requests / 304s).
pub fn read_response(r: &mut impl BufRead, head_only: bool) -> Result<Response> {
    let lines = read_head(r)?.ok_or(StoreError::Closed)?;
    let first = lines
        .first()
        .ok_or_else(|| StoreError::protocol("empty response"))?;
    let mut parts = first.splitn(3, ' ');
    let _version = parts.next().unwrap_or_default();
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| StoreError::protocol(format!("bad status line {first:?}")))?;
    let reason = parts.next().unwrap_or("").to_string();
    let headers = parse_headers(lines.get(1..).unwrap_or_default())?;
    let body = if head_only || status == 304 || status == 204 {
        Vec::new()
    } else {
        read_body(r, &headers)?
    };
    Ok(Response {
        status,
        reason,
        headers,
        body,
    })
}

/// Write a response. 304/204 suppress the body per the RFC, but
/// Content-Length is still advertised for bookkeeping.
pub fn write_response(w: &mut impl Write, resp: &Response) -> std::io::Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\n", resp.status, resp.reason)?;
    for (k, v) in &resp.headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    write!(w, "content-length: {}\r\n\r\n", resp.body.len())?;
    if resp.status != 304 && resp.status != 204 {
        w.write_all(&resp.body)?;
    }
    w.flush()
}

/// Result of structurally scanning a buffer for one complete request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scan {
    /// Only a prefix of a request is buffered; read more bytes.
    NeedMore,
    /// `buf[..len]` is one deliverable unit: either a complete request or
    /// a malformed prefix [`read_request`] rejects without reading further.
    Frame(usize),
}

/// Structurally locate one request (head + content-length body) in `buf`
/// without validating it. Exactly as eager as [`read_request`]: a
/// [`Scan::Frame`] slice parses to a request or an error with no more
/// input needed, and on [`Scan::NeedMore`] the parser at EOF would report
/// truncation. This lets the event-driven server reuse the blocking
/// parser per request with byte-identical errors.
pub fn scan_request(buf: &[u8]) -> Scan {
    let mut pos = 0usize;
    let mut content_length: Option<&[u8]> = None;
    let mut first_line = true;
    let head_end = loop {
        let Some(nl) = buf
            .get(pos..)
            .and_then(|r| r.iter().position(|&b| b == b'\n'))
        else {
            // No complete line buffered. If the buffered prefix already
            // exceeds the header cap, the parser errors without more data.
            return if buf.len() > MAX_HEADER_BYTES {
                Scan::Frame(buf.len())
            } else {
                Scan::NeedMore
            };
        };
        let Some(line_end) = pos.checked_add(nl).and_then(|p| p.checked_add(1)) else {
            return Scan::Frame(buf.len());
        };
        if line_end > MAX_HEADER_BYTES {
            // The parser's running total trips the cap inside this line.
            return Scan::Frame(line_end);
        }
        let mut content = buf.get(pos..pos.saturating_add(nl)).unwrap_or_default();
        if content.last() == Some(&b'\r') {
            content = content
                .get(..content.len().saturating_sub(1))
                .unwrap_or_default();
        }
        if content.is_empty() {
            break line_end;
        }
        if !first_line {
            // Last occurrence wins, matching the parser's BTreeMap insert.
            if let Some(idx) = content.iter().position(|&b| b == b':') {
                let key = content.get(..idx).unwrap_or_default();
                if key
                    .iter()
                    .map(|b| b.to_ascii_lowercase())
                    .eq(b"content-length".iter().copied())
                    || std::str::from_utf8(key)
                        .map(|k| k.trim().eq_ignore_ascii_case("content-length"))
                        .unwrap_or(false)
                {
                    content_length = content.get(idx.saturating_add(1)..);
                }
            }
        }
        first_line = false;
        pos = line_end;
    };
    let Some(raw) = content_length else {
        // No body: the head alone is the request.
        return Scan::Frame(head_end);
    };
    let Some(len) = std::str::from_utf8(raw)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    else {
        // Unparseable content-length: the parser rejects the head as-is.
        return Scan::Frame(head_end);
    };
    if len > MAX_BODY_BYTES {
        // The parser rejects the length before reading the body.
        return Scan::Frame(head_end);
    }
    match head_end.checked_add(len) {
        Some(need) if buf.len() >= need => Scan::Frame(need),
        Some(_) => Scan::NeedMore,
        None => Scan::Frame(head_end),
    }
}

/// Structurally locate one response (status line + headers +
/// content-length body) in `buf` without validating it. Exactly as eager
/// as [`read_response`] with the same `head_only` flag: a [`Scan::Frame`]
/// slice parses to a response or a definitive error with no more input,
/// and 304/204 statuses suppress the body precisely as the parser does.
/// This is what lets a multiplexed client transport delimit replies on a
/// shared connection without understanding HTTP semantics itself.
pub fn scan_response(buf: &[u8], head_only: bool) -> Scan {
    let mut pos = 0usize;
    let mut content_length: Option<&[u8]> = None;
    let mut status: Option<u16> = None;
    let mut first_line = true;
    let head_end = loop {
        let Some(nl) = buf
            .get(pos..)
            .and_then(|r| r.iter().position(|&b| b == b'\n'))
        else {
            // No complete line buffered. If the buffered prefix already
            // exceeds the header cap, the parser errors without more data.
            return if buf.len() > MAX_HEADER_BYTES {
                Scan::Frame(buf.len())
            } else {
                Scan::NeedMore
            };
        };
        let Some(line_end) = pos.checked_add(nl).and_then(|p| p.checked_add(1)) else {
            return Scan::Frame(buf.len());
        };
        if line_end > MAX_HEADER_BYTES {
            // The parser's running total trips the cap inside this line.
            return Scan::Frame(line_end);
        }
        let mut content = buf.get(pos..pos.saturating_add(nl)).unwrap_or_default();
        if content.last() == Some(&b'\r') {
            content = content
                .get(..content.len().saturating_sub(1))
                .unwrap_or_default();
        }
        if content.is_empty() {
            break line_end;
        }
        if first_line {
            status = std::str::from_utf8(content)
                .ok()
                .and_then(|line| line.split(' ').nth(1))
                .and_then(|s| s.parse::<u16>().ok());
        } else if let Some(idx) = content.iter().position(|&b| b == b':') {
            // Last occurrence wins, matching the parser's BTreeMap insert.
            let key = content.get(..idx).unwrap_or_default();
            if std::str::from_utf8(key)
                .map(|k| k.trim().eq_ignore_ascii_case("content-length"))
                .unwrap_or(false)
            {
                content_length = content.get(idx.saturating_add(1)..);
            }
        }
        first_line = false;
        pos = line_end;
    };
    let Some(code) = status else {
        // Unparseable status line: the parser rejects the head as-is.
        return Scan::Frame(head_end);
    };
    if head_only || code == 304 || code == 204 {
        // The parser skips the body even when a length is advertised.
        return Scan::Frame(head_end);
    }
    let Some(raw) = content_length else {
        // No body: the head alone is the response.
        return Scan::Frame(head_end);
    };
    let Some(len) = std::str::from_utf8(raw)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    else {
        // Unparseable content-length: the parser rejects the head as-is.
        return Scan::Frame(head_end);
    };
    if len > MAX_BODY_BYTES {
        // The parser rejects the length before reading the body.
        return Scan::Frame(head_end);
    }
    match head_end.checked_add(len) {
        Some(need) if buf.len() >= need => Scan::Frame(need),
        Some(_) => Scan::NeedMore,
        None => Scan::Frame(head_end),
    }
}

/// Percent-encode a key for use as one path segment.
pub fn escape_segment(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for &b in key.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Invert [`escape_segment`].
pub fn unescape_segment(seg: &str) -> Option<String> {
    let bytes = seg.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        if b == b'%' {
            let hex = seg.get(i.saturating_add(1)..i.saturating_add(3))?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i = i.saturating_add(3);
        } else {
            out.push(b);
            i = i.saturating_add(1);
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_round_trip() {
        let req = Request::new("PUT", "/v1/objects/key%20x")
            .with_header("X-Custom", "val")
            .with_body(b"hello body".to_vec());
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let got = read_request(&mut BufReader::new(&buf[..]))
            .unwrap()
            .unwrap();
        assert_eq!(got.method, "PUT");
        assert_eq!(got.path, "/v1/objects/key%20x");
        assert_eq!(got.header("x-custom"), Some("val"));
        assert_eq!(got.body, b"hello body");
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::new(200)
            .with_header("ETag", "\"abc\"")
            .with_body(b"payload".to_vec());
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let got = read_response(&mut BufReader::new(&buf[..]), false).unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.header("etag"), Some("\"abc\""));
        assert_eq!(got.body, b"payload");
    }

    #[test]
    fn not_modified_has_no_body_on_the_wire() {
        let resp = Response::new(304).with_header("ETag", "\"x\"");
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 304 Not Modified"));
        let got = read_response(&mut BufReader::new(&buf[..]), false).unwrap();
        assert_eq!(got.status, 304);
        assert!(got.body.is_empty());
    }

    #[test]
    fn multiple_requests_on_one_connection() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::new("GET", "/a")).unwrap();
        write_request(
            &mut buf,
            &Request::new("GET", "/b").with_body(b"x".to_vec()),
        )
        .unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_request(&mut r).unwrap().unwrap().path, "/a");
        let second = read_request(&mut r).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(second.body, b"x");
        assert!(read_request(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_requests_rejected() {
        for bad in [
            "GARBAGE\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            "GET /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
        ] {
            assert!(
                read_request(&mut BufReader::new(bad.as_bytes())).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn truncated_body_detected() {
        let text = "PUT /k HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort";
        assert!(read_request(&mut BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn scanner_agrees_with_parser_on_complete_requests() {
        let cases: Vec<Vec<u8>> = vec![
            {
                let mut b = Vec::new();
                write_request(
                    &mut b,
                    &Request::new("PUT", "/v1/objects/k").with_body(b"hello".to_vec()),
                )
                .unwrap();
                b
            },
            {
                let mut b = Vec::new();
                write_request(&mut b, &Request::new("GET", "/v1/keys")).unwrap();
                b
            },
            b"GET /v1/ping HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(),
            // LF-only line endings and mixed-case content-length.
            b"PUT /k HTTP/1.1\nContent-Length: 3\n\nabc".to_vec(),
            // Duplicate content-length: last one wins, like the parser's map.
            b"PUT /k HTTP/1.1\r\ncontent-length: 9\r\ncontent-length: 2\r\n\r\nab".to_vec(),
        ];
        for wire in cases {
            // The exact frame scans complete...
            assert_eq!(scan_request(&wire), Scan::Frame(wire.len()), "{wire:?}");
            // ...and parses clean with nothing left over.
            let mut rd = BufReader::new(wire.as_slice());
            assert!(read_request(&mut rd).unwrap().is_some());
            // Every strict prefix needs more bytes.
            for cut in 0..wire.len() {
                assert_eq!(
                    scan_request(wire.get(..cut).unwrap()),
                    Scan::NeedMore,
                    "cut={cut}"
                );
            }
            // Pipelining: trailing bytes don't change the boundary.
            let mut two = wire.clone();
            two.extend_from_slice(&wire);
            assert_eq!(scan_request(&two), Scan::Frame(wire.len()));
        }
    }

    #[test]
    fn scanner_delivers_malformed_requests_for_parser_rejection() {
        // Each case is deliverable (no more input needed) and the parser
        // must reject the delivered slice — same outcome as the blocking
        // reader hitting the error mid-stream.
        let cases: Vec<Vec<u8>> = vec![
            b"NOT-HTTP\r\n\r\n".to_vec(),
            b"GET /x HTTP/0.9\r\n\r\n".to_vec(),
            b"GET /x HTTP/1.1\r\nbad-header-no-colon\r\n\r\n".to_vec(),
            b"PUT /k HTTP/1.1\r\ncontent-length: banana\r\n\r\n".to_vec(),
            {
                let huge = usize::MAX.to_string();
                format!("PUT /k HTTP/1.1\r\ncontent-length: {huge}\r\n\r\n").into_bytes()
            },
        ];
        for wire in cases {
            let Scan::Frame(len) = scan_request(&wire) else {
                panic!("not deliverable: {wire:?}");
            };
            let mut rd = BufReader::new(wire.get(..len).unwrap());
            assert!(read_request(&mut rd).is_err(), "{wire:?}");
        }
        // An endless header block trips the cap without a blank line.
        let mut huge = b"GET /x HTTP/1.1\r\n".to_vec();
        while huge.len() <= MAX_HEADER_BYTES {
            huge.extend_from_slice(b"x-pad: 0123456789abcdef\r\n");
        }
        let Scan::Frame(len) = scan_request(&huge) else {
            panic!("oversized head not deliverable");
        };
        let mut rd = BufReader::new(huge.get(..len).unwrap());
        assert!(read_request(&mut rd).is_err());
    }

    #[test]
    fn response_scanner_agrees_with_parser() {
        let cases: Vec<Vec<u8>> = vec![
            {
                let mut b = Vec::new();
                write_response(
                    &mut b,
                    &Response::new(200)
                        .with_header("etag", "\"ab\"")
                        .with_body(b"payload".to_vec()),
                )
                .unwrap();
                b
            },
            {
                let mut b = Vec::new();
                write_response(&mut b, &Response::new(404)).unwrap();
                b
            },
            // LF-only line endings and mixed-case content-length.
            b"HTTP/1.1 200 OK\nContent-Length: 3\n\nabc".to_vec(),
        ];
        for wire in cases {
            // The exact frame scans complete...
            assert_eq!(
                scan_response(&wire, false),
                Scan::Frame(wire.len()),
                "{wire:?}"
            );
            // ...and parses clean with nothing left over.
            let mut rd = BufReader::new(wire.as_slice());
            read_response(&mut rd, false).unwrap();
            // Every strict prefix needs more bytes.
            for cut in 0..wire.len() {
                assert_eq!(
                    scan_response(wire.get(..cut).unwrap(), false),
                    Scan::NeedMore,
                    "cut={cut}"
                );
            }
            // Pipelining: trailing bytes don't change the boundary.
            let mut two = wire.clone();
            two.extend_from_slice(&wire);
            assert_eq!(scan_response(&two, false), Scan::Frame(wire.len()));
        }
    }

    #[test]
    fn response_scanner_suppresses_bodies_like_the_parser() {
        // A HEAD reply advertises the body length but sends no body: with
        // head_only the head alone is the frame, and the parser agrees.
        let head = b"HTTP/1.1 200 OK\r\netag: \"ab\"\r\ncontent-length: 1000000\r\n\r\n";
        assert_eq!(scan_response(head, true), Scan::Frame(head.len()));
        let got = read_response(&mut BufReader::new(&head[..]), true).unwrap();
        assert_eq!(got.status, 200);
        assert!(got.body.is_empty());
        // Without the hint the scanner would wait for the advertised body.
        assert_eq!(scan_response(head, false), Scan::NeedMore);
        // 304 and 204 suppress the body by status, regardless of the hint.
        for status in [304u16, 204] {
            let wire = format!("HTTP/1.1 {status} X\r\ncontent-length: 5\r\n\r\n").into_bytes();
            assert_eq!(scan_response(&wire, false), Scan::Frame(wire.len()));
            let got = read_response(&mut BufReader::new(wire.as_slice()), false).unwrap();
            assert_eq!(got.status, status);
            assert!(got.body.is_empty());
        }
    }

    #[test]
    fn response_scanner_delivers_malformed_heads_for_rejection() {
        for wire in [
            b"NOT-HTTP\r\n\r\ntrailing".as_slice(),
            b"HTTP/1.1 banana OK\r\ncontent-length: 5\r\n\r\n".as_slice(),
            b"HTTP/1.1 200 OK\r\ncontent-length: nope\r\n\r\n".as_slice(),
        ] {
            let Scan::Frame(len) = scan_response(wire, false) else {
                panic!("not deliverable: {wire:?}");
            };
            let mut rd = BufReader::new(wire.get(..len).unwrap());
            assert!(read_response(&mut rd, false).is_err(), "{wire:?}");
        }
    }

    #[test]
    fn segment_escaping_round_trip() {
        for key in [
            "plain",
            "with space",
            "a/b?c=d",
            "uni-ключ",
            "%25",
            "dots..dots",
        ] {
            let esc = escape_segment(key);
            assert!(!esc.contains('/') && !esc.contains(' ') && !esc.contains('?'));
            assert_eq!(unescape_segment(&esc).as_deref(), Some(key));
        }
    }
}
