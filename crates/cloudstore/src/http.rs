//! Minimal HTTP/1.1 framing: enough for an object-store protocol.
//!
//! Supports: request/status lines, headers, `Content-Length` bodies,
//! keep-alive (the default in 1.1) and `Connection: close`. Chunked
//! transfer encoding is deliberately out of scope — both ends of this
//! protocol always know their body lengths.

use kvapi::{Result, StoreError};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};

/// Maximum accepted header block size — guards the server against garbage.
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Maximum accepted body size (1 GiB).
const MAX_BODY_BYTES: usize = 1 << 30;

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method (GET/PUT/DELETE/HEAD/POST).
    pub method: String,
    /// Request target (path + optional query), percent-encoded.
    pub path: String,
    /// Header map, keys lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Body bytes (empty when no Content-Length).
    pub body: Vec<u8>,
}

impl Request {
    /// Build a request.
    pub fn new(method: &str, path: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// Attach a body (sets Content-Length on write).
    pub fn with_body(mut self, body: Vec<u8>) -> Request {
        self.body = body;
        self
    }

    /// Set a header (key stored lower-case).
    pub fn with_header(mut self, key: &str, value: impl Into<String>) -> Request {
        self.headers.insert(key.to_ascii_lowercase(), value.into());
        self
    }

    /// Header lookup (case-insensitive).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .get(&key.to_ascii_lowercase())
            .map(String::as_str)
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 304, 404, ...).
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Header map, keys lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Build a response with a standard reason phrase.
    pub fn new(status: u16) -> Response {
        let reason = match status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            304 => "Not Modified",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            500 => "Internal Server Error",
            _ => "Unknown",
        };
        Response {
            status,
            reason: reason.to_string(),
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// Attach a body.
    pub fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// Set a header (key stored lower-case).
    pub fn with_header(mut self, key: &str, value: impl Into<String>) -> Response {
        self.headers.insert(key.to_ascii_lowercase(), value.into());
        self
    }

    /// Header lookup (case-insensitive).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .get(&key.to_ascii_lowercase())
            .map(String::as_str)
    }
}

fn read_head(r: &mut impl BufRead) -> Result<Option<Vec<String>>> {
    let mut lines = Vec::new();
    let mut total = 0usize;
    loop {
        let mut line = String::new();
        let n = r.read_line(&mut line)?;
        if n == 0 {
            // Clean EOF before any bytes = peer closed between requests.
            return if lines.is_empty() && total == 0 {
                Ok(None)
            } else {
                Err(StoreError::protocol("connection closed mid-header"))
            };
        }
        total += n;
        if total > MAX_HEADER_BYTES {
            return Err(StoreError::protocol("header block too large"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            return Ok(Some(lines));
        }
        lines.push(trimmed.to_string());
    }
}

fn parse_headers(lines: &[String]) -> Result<BTreeMap<String, String>> {
    let mut headers = BTreeMap::new();
    for line in lines {
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| StoreError::protocol(format!("malformed header {line:?}")))?;
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
    }
    Ok(headers)
}

fn read_body(r: &mut impl BufRead, headers: &BTreeMap<String, String>) -> Result<Vec<u8>> {
    let len = match headers.get("content-length") {
        None => return Ok(Vec::new()),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| StoreError::protocol(format!("bad content-length {v:?}")))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(StoreError::protocol("body too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|_| StoreError::protocol("truncated body"))?;
    Ok(body)
}

/// Read one request; `Ok(None)` on clean connection close.
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>> {
    let Some(lines) = read_head(r)? else {
        return Ok(None);
    };
    let first = lines
        .first()
        .ok_or_else(|| StoreError::protocol("empty request"))?;
    let mut parts = first.split_whitespace();
    let (method, path, version) = (
        parts
            .next()
            .ok_or_else(|| StoreError::protocol("missing method"))?,
        parts
            .next()
            .ok_or_else(|| StoreError::protocol("missing path"))?,
        parts.next().unwrap_or("HTTP/1.1"),
    );
    if !version.starts_with("HTTP/1.") {
        return Err(StoreError::protocol(format!(
            "unsupported version {version}"
        )));
    }
    let headers = parse_headers(lines.get(1..).unwrap_or_default())?;
    let body = read_body(r, &headers)?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    }))
}

/// Write a request (always emits Content-Length, keeps the connection open).
pub fn write_request(w: &mut impl Write, req: &Request) -> std::io::Result<()> {
    write!(w, "{} {} HTTP/1.1\r\n", req.method, req.path)?;
    for (k, v) in &req.headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    write!(w, "content-length: {}\r\n\r\n", req.body.len())?;
    w.write_all(&req.body)?;
    w.flush()
}

/// Read one response. `head_only` skips the body (HEAD requests / 304s).
pub fn read_response(r: &mut impl BufRead, head_only: bool) -> Result<Response> {
    let lines = read_head(r)?.ok_or(StoreError::Closed)?;
    let first = lines
        .first()
        .ok_or_else(|| StoreError::protocol("empty response"))?;
    let mut parts = first.splitn(3, ' ');
    let _version = parts.next().unwrap_or_default();
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| StoreError::protocol(format!("bad status line {first:?}")))?;
    let reason = parts.next().unwrap_or("").to_string();
    let headers = parse_headers(lines.get(1..).unwrap_or_default())?;
    let body = if head_only || status == 304 || status == 204 {
        Vec::new()
    } else {
        read_body(r, &headers)?
    };
    Ok(Response {
        status,
        reason,
        headers,
        body,
    })
}

/// Write a response. 304/204 suppress the body per the RFC, but
/// Content-Length is still advertised for bookkeeping.
pub fn write_response(w: &mut impl Write, resp: &Response) -> std::io::Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\n", resp.status, resp.reason)?;
    for (k, v) in &resp.headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    write!(w, "content-length: {}\r\n\r\n", resp.body.len())?;
    if resp.status != 304 && resp.status != 204 {
        w.write_all(&resp.body)?;
    }
    w.flush()
}

/// Percent-encode a key for use as one path segment.
pub fn escape_segment(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for &b in key.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Invert [`escape_segment`].
pub fn unescape_segment(seg: &str) -> Option<String> {
    let bytes = seg.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        if b == b'%' {
            let hex = seg.get(i.saturating_add(1)..i.saturating_add(3))?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i = i.saturating_add(3);
        } else {
            out.push(b);
            i = i.saturating_add(1);
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_round_trip() {
        let req = Request::new("PUT", "/v1/objects/key%20x")
            .with_header("X-Custom", "val")
            .with_body(b"hello body".to_vec());
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let got = read_request(&mut BufReader::new(&buf[..]))
            .unwrap()
            .unwrap();
        assert_eq!(got.method, "PUT");
        assert_eq!(got.path, "/v1/objects/key%20x");
        assert_eq!(got.header("x-custom"), Some("val"));
        assert_eq!(got.body, b"hello body");
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::new(200)
            .with_header("ETag", "\"abc\"")
            .with_body(b"payload".to_vec());
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let got = read_response(&mut BufReader::new(&buf[..]), false).unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.header("etag"), Some("\"abc\""));
        assert_eq!(got.body, b"payload");
    }

    #[test]
    fn not_modified_has_no_body_on_the_wire() {
        let resp = Response::new(304).with_header("ETag", "\"x\"");
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 304 Not Modified"));
        let got = read_response(&mut BufReader::new(&buf[..]), false).unwrap();
        assert_eq!(got.status, 304);
        assert!(got.body.is_empty());
    }

    #[test]
    fn multiple_requests_on_one_connection() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::new("GET", "/a")).unwrap();
        write_request(
            &mut buf,
            &Request::new("GET", "/b").with_body(b"x".to_vec()),
        )
        .unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_request(&mut r).unwrap().unwrap().path, "/a");
        let second = read_request(&mut r).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(second.body, b"x");
        assert!(read_request(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_requests_rejected() {
        for bad in [
            "GARBAGE\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            "GET /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
        ] {
            assert!(
                read_request(&mut BufReader::new(bad.as_bytes())).is_err(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn truncated_body_detected() {
        let text = "PUT /k HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort";
        assert!(read_request(&mut BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn segment_escaping_round_trip() {
        for key in [
            "plain",
            "with space",
            "a/b?c=d",
            "uni-ключ",
            "%25",
            "dots..dots",
        ] {
            let esc = escape_segment(key);
            assert!(!esc.contains('/') && !esc.contains(' ') && !esc.contains('?'));
            assert_eq!(unescape_segment(&esc).as_deref(), Some(key));
        }
    }
}
