//! # cloudstore — a simulated cloud object store over real HTTP/TCP
//!
//! The paper benchmarks two commercial cloud data stores ("Cloud Store 1"
//! and "Cloud Store 2" — Cloudant-like and OpenStack-Object-Storage-like
//! services) that are geographically distant from the client. Those services
//! are not reachable here, so this crate runs the whole client/server stack
//! locally and injects wide-area delay from `netsim`:
//!
//! * [`http`] — a minimal HTTP/1.1 implementation (request/response framing,
//!   headers, keep-alive), because data store clients in the paper talk to
//!   their servers "using a protocol such as HTTP";
//! * [`server`] — an object-store server with ETags, conditional GET
//!   (`If-None-Match` → `304 Not Modified`, the revalidation mechanism §III
//!   builds on), listing, and a per-request latency model;
//! * [`client`] — an HTTP client implementing [`kvapi::KeyValue`], with a
//!   **native** conditional get that really does skip the body transfer on
//!   304 — exactly the bandwidth saving the paper describes.
//!
//! What the substitution preserves: the client executes real socket I/O,
//! HTTP framing and header parsing; latency grows with object size through
//! the modeled bandwidth; Cloud Store 1 is slower and far more variable
//! than Cloud Store 2 (lognormal jitter + contention spikes). What it does
//! not preserve: absolute numbers of the authors' 2016 WAN paths — the
//! reproduction targets the figures' *shape*, per EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod batch;
pub mod client;
pub mod http;
pub mod server;

pub use client::CloudClient;
pub use http::{Request, Response};
pub use server::{CloudServer, CloudServerConfig};
