//! The object-store server with injected WAN latency.
//!
//! REST-ish protocol (all keys percent-encoded path segments):
//!
//! | request | reply |
//! |---|---|
//! | `PUT /v1/objects/{key}` (body) | `201` + `ETag` |
//! | `GET /v1/objects/{key}` | `200` + body + `ETag` + `X-Modified-Ms`, or `404` |
//! | `GET` with `If-None-Match` | `304` when the tag matches |
//! | `HEAD /v1/objects/{key}` | `200` headers only / `404` |
//! | `DELETE /v1/objects/{key}` | `204` / `404` |
//! | `POST /v1/batch` (framed ops) | `200` + framed replies (see [`crate::batch`]) |
//! | `GET /v1/keys` | newline-separated key list |
//! | `POST /v1/clear` | `200` |
//! | `GET /v1/stats` | `{keys} {bytes}` |
//! | `GET /metrics` | Prometheus text exposition of the server's registry |
//!
//! Each request sleeps for a delay drawn from the configured
//! [`netsim::LatencyModel`] before replying, sized by the dominant payload
//! direction — which is what makes latency grow with object size in the
//! reproduced figures.

use crate::batch::{self, BatchOp, BatchReply};
use crate::http::{
    read_request, scan_request, unescape_segment, write_response, Request, Response, Scan,
};
use bytes::Bytes;
use kvapi::value::{now_millis, Etag};
use kvapi::{Result, Versioned};
use netsim::{FaultAction, FaultInjector, FaultModel, LatencyModel, LatencySampler};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct CloudServerConfig {
    /// Bind address (port 0 = ephemeral).
    pub bind: SocketAddr,
    /// Injected latency model.
    pub latency: LatencyModel,
    /// Injected fault model (refusals, resets, stalls, dribbles, ...).
    pub fault: FaultModel,
    /// RNG seed for the latency sampler and fault injector (fixed =
    /// reproducible runs).
    pub seed: u64,
    /// Serve with the historical thread-per-connection loop instead of the
    /// epoll reactor. Kept only to demonstrate the scaling ceiling the
    /// reactor removes; the wire behavior is identical.
    pub legacy_threads: bool,
    /// Kernel accept backlog for the listener (reactor mode). Sized for
    /// connect bursts; std's bind() default of 128 drops overflow SYNs.
    pub accept_backlog: usize,
}

impl Default for CloudServerConfig {
    fn default() -> Self {
        CloudServerConfig {
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            latency: LatencyModel::zero(),
            fault: FaultModel::none(),
            seed: 0xc10d,
            legacy_threads: false,
            accept_backlog: reactor::DEFAULT_ACCEPT_BACKLOG,
        }
    }
}

struct Object {
    data: Bytes,
    etag: Etag,
    modified_ms: u64,
}

#[derive(Default)]
struct ObjectMap {
    map: HashMap<String, Object>,
    bytes: u64,
    version: u64,
}

/// A running cloud object-store server.
pub struct CloudServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    reactor: Option<reactor::ReactorThread>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    /// Requests served (observability).
    pub requests_served: Arc<AtomicU64>,
    /// Connections accepted and handed a handler (refused ones excluded).
    /// Lets tests assert how many sockets a client strategy really opened —
    /// e.g. that a multiplexed client's concurrent callers share one.
    pub connections_accepted: Arc<AtomicU64>,
    registry: Arc<obs::Registry>,
    fault: Arc<FaultInjector>,
}

impl CloudServer {
    /// Start with zero injected latency (useful for functional tests).
    pub fn start_local() -> Result<CloudServer> {
        CloudServer::start(CloudServerConfig::default())
    }

    /// Start with a latency profile.
    pub fn start_with_profile(profile: netsim::Profile, seed: u64) -> Result<CloudServer> {
        CloudServer::start(CloudServerConfig {
            latency: profile.model(),
            seed,
            ..Default::default()
        })
    }

    /// Start with explicit config.
    pub fn start(cfg: CloudServerConfig) -> Result<CloudServer> {
        let listener = TcpListener::bind(cfg.bind)?;
        let addr = listener.local_addr()?;
        let objects = Arc::new(RwLock::new(ObjectMap::default()));
        let sampler = Arc::new(cfg.latency.sampler(cfg.seed));
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests_served = Arc::new(AtomicU64::new(0));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let connections_accepted = Arc::new(AtomicU64::new(0));
        let registry = Arc::new(obs::Registry::new());
        // Stable node identity on every federated series.
        registry.set_base_label("node", &addr.to_string());
        // The fault injector draws from its own RNG stream (offset seed) so
        // enabling faults does not perturb the latency sample sequence.
        let fault = Arc::new(cfg.fault.injector(cfg.seed ^ 0xfa17));

        let shared = ConnShared {
            objects,
            sampler,
            served: requests_served.clone(),
            registry: registry.clone(),
            fault: fault.clone(),
        };
        let (accept_thread, reactor) = if cfg.legacy_threads {
            let shutdown = shutdown.clone();
            let conns = conns.clone();
            let accepted = connections_accepted.clone();
            let shared = shared.clone();
            let thread = std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if shared.fault.refuse_connection() {
                        // Sever before any byte is exchanged, like a load
                        // balancer shedding or a dead backend.
                        shared
                            .registry
                            .counter("cloudstore_faults_injected_total", &[("action", "refuse")])
                            .inc();
                        drop(stream);
                        continue;
                    }
                    accepted.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = stream.try_clone() {
                        let mut g = conns.lock();
                        g.retain(|s| s.peer_addr().is_ok());
                        g.push(clone);
                    }
                    let shared = shared.clone();
                    std::thread::spawn(move || {
                        let _ = serve_connection(stream, shared);
                    });
                }
            });
            (Some(thread), None)
        } else {
            let mut r = reactor::Reactor::new()?;
            let shutdown = shutdown.clone();
            let accepted = connections_accepted.clone();
            r.listen_with_backlog(
                listener,
                move |_peer: SocketAddr| {
                    if shutdown.load(Ordering::Relaxed) {
                        return None;
                    }
                    if shared.fault.refuse_connection() {
                        shared
                            .registry
                            .counter("cloudstore_faults_injected_total", &[("action", "refuse")])
                            .inc();
                        return None;
                    }
                    accepted.fetch_add(1, Ordering::Relaxed);
                    Some(Box::new(CloudConn {
                        shared: shared.clone(),
                        dead: false,
                    }) as Box<dyn reactor::ConnHandler>)
                },
                cfg.accept_backlog,
            )?;
            (None, Some(r.spawn()))
        };

        Ok(CloudServer {
            addr,
            shutdown,
            accept_thread,
            reactor,
            conns,
            requests_served,
            connections_accepted,
            registry,
            fault,
        })
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This server's metrics registry (per-instance, so concurrently
    /// running servers — e.g. in tests — never mix metrics). The same data
    /// is served over HTTP at `GET /metrics`.
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.registry
    }

    /// This server's fault injector. Swap its model at runtime to start or
    /// clear an outage mid-test: `server.fault_injector().set_model(...)`.
    pub fn fault_injector(&self) -> &Arc<FaultInjector> {
        &self.fault
    }

    /// Sever every established connection while keeping the listener alive
    /// — the shape of a server-side idle close (or a rolling restart), used
    /// to exercise client pool staleness.
    pub fn drop_connections(&self) {
        if let Some(rt) = &self.reactor {
            rt.handle().close_all_conns();
        }
        for c in self.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Stop the server and sever connections.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(mut rt) = self.reactor.take() {
            rt.shutdown();
        }
        if self.accept_thread.is_some() {
            // Unblock the legacy accept() with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        for c in self.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for CloudServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Collapse a request path onto a bounded route label (metric label values
/// must not include per-key cardinality).
fn route_label(path: &str) -> &'static str {
    if path.starts_with("/v1/objects/") {
        return "/v1/objects";
    }
    match path {
        "/v1/batch" => "/v1/batch",
        "/v1/keys" => "/v1/keys",
        "/v1/clear" => "/v1/clear",
        "/v1/stats" => "/v1/stats",
        "/v1/ping" => "/v1/ping",
        "/metrics" => "/metrics",
        "/trace" => "/trace",
        _ => "other",
    }
}

fn fault_label(action: &FaultAction) -> &'static str {
    match action {
        FaultAction::Deliver => "deliver",
        FaultAction::ErrorReply => "error",
        FaultAction::Reset => "reset",
        FaultAction::Stall(_) => "stall",
        FaultAction::Dribble(_) => "dribble",
        FaultAction::PartialWrite => "partial",
    }
}

/// Everything one connection needs (reactor handler or legacy thread),
/// shared across all connections of a server instance.
#[derive(Clone)]
struct ConnShared {
    objects: Arc<RwLock<ObjectMap>>,
    sampler: Arc<LatencySampler>,
    served: Arc<AtomicU64>,
    registry: Arc<obs::Registry>,
    fault: Arc<FaultInjector>,
}

/// The outcome of serving one parsed request: the (possibly fault-mangled)
/// response plus the injected delays that must elapse before its bytes hit
/// the wire. Shared verbatim by the reactor handler and the legacy
/// thread-per-connection loop so the two modes cannot drift.
struct Reply {
    action: FaultAction,
    /// `None` when the action is [`FaultAction::Reset`]: the connection is
    /// severed with no reply, no trace record, and no metrics.
    resp: Option<Response>,
    /// Injected stall (reply-side fault) preceding any reply byte.
    stall: Duration,
    /// Injected WAN delay preceding the reply bytes.
    wan: Duration,
    t0: Instant,
}

/// Route one request and decide its fate: tracing, fault action, response
/// headers (server span, `x-mux-id` echo), and injected delays. Performs
/// every side effect except sleeping and writing — callers apply
/// `stall + wan` (thread sleep or outbox delay steps) before the bytes.
fn execute_request(req: &Request, shared: &ConnShared) -> Reply {
    shared.served.fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    // Distributed tracing: an `x-trace-ctx` header joins this request
    // to the client's trace. Requests without the header (old clients)
    // are served identically, minus the span.
    let trace_ctx = req
        .header("x-trace-ctx")
        .and_then(obs::TraceContext::decode);
    // Queue wait: everything between arrival and dispatch (parsing,
    // bookkeeping; a real accept queue would land here too).
    let queue = t0.elapsed();
    let t_exec = Instant::now();
    let resp = if req.method == "GET" && req.path == "/metrics" {
        // Refresh process gauges (RSS, CPU, fds, threads) so every
        // scrape sees current resource telemetry.
        obs::procinfo::publish(&shared.registry);
        Response::new(200)
            .with_header("content-type", "text/plain; version=0.0.4")
            .with_body(shared.registry.render_prometheus().into_bytes())
    } else {
        route(req, &shared.objects)
    };
    let execute = t_exec.elapsed();
    let mut resp = resp;
    if req.method == "HEAD" {
        // Drop the body before sizing the delay: an existence check only
        // transfers headers, so it must not be charged body latency.
        resp.body.clear();
    }
    // The fault decision is made after the request was fully read —
    // these are reply-side faults, modelling a server that *received*
    // the operation (and may have applied it) but whose answer is lost
    // or degraded.
    let action = shared.fault.reply_action();
    if action != FaultAction::Deliver {
        shared
            .registry
            .counter(
                "cloudstore_faults_injected_total",
                &[("action", fault_label(&action))],
            )
            .inc();
    }
    let mut stall = Duration::ZERO;
    match action {
        FaultAction::Reset => {
            return Reply {
                action,
                resp: None,
                stall,
                wan: Duration::ZERO,
                t0,
            }
        }
        FaultAction::Stall(d) => stall = d,
        FaultAction::ErrorReply => {
            resp = Response::new(500).with_body(b"injected fault".to_vec());
        }
        _ => {}
    }
    // Connection multiplexing: a client interleaving requests on one
    // connection tags each with `x-mux-id`; echoing it lets replies be
    // matched by correlation id instead of arrival order.
    if let Some(id) = req.header("x-mux-id") {
        let id = id.to_string();
        resp = resp.with_header("x-mux-id", id);
    }
    if let Some(cctx) = trace_ctx {
        // Serialize cost is measured on a probe render (only when the
        // request is traced) because the span rides a response header
        // and therefore must exist before the real serialization.
        let t_ser = Instant::now();
        let mut probe = Vec::new();
        let _ = write_response(&mut probe, &resp);
        let serialize = t_ser.elapsed();
        let span = obs::ServerSpan::new("cloudstore", queue, execute, serialize);
        resp = resp.with_header("x-server-span", span.encode());
        let mut rec = obs::CompletedTrace::server_side(
            &cctx,
            &span,
            format!("{} {}", req.method, route_label(&req.path)),
        );
        if resp.status >= 500 {
            // Mark failures so the tail sampler's 100%-error rule
            // applies to the server-side record too.
            rec.error = Some(format!("status {}", resp.status));
        }
        obs::FlightRecorder::global().record(rec);
    }
    // Inject WAN delay sized by the dominant payload direction. A 304
    // only carries headers, which is exactly why revalidation saves
    // bandwidth and time in the reproduced experiments.
    let payload = if resp.status == 304 {
        0
    } else {
        req.body.len().max(resp.body.len())
    };
    let wan = shared.sampler.sample(payload);
    Reply {
        action,
        resp: Some(resp),
        stall,
        wan,
        t0,
    }
}

/// Per-request accounting, recorded only for replies that were fully
/// written (resets, dribbles, and partial writes are not counted — the
/// fault counter already saw them).
fn record_reply_metrics(shared: &ConnShared, req: &Request, resp: &Response, duration: Duration) {
    let route = route_label(&req.path);
    let status = resp.status.to_string();
    shared
        .registry
        .counter(
            "cloudstore_requests_total",
            &[
                ("route", route),
                ("method", &req.method),
                ("status", &status),
            ],
        )
        .inc();
    shared
        .registry
        .counter("cloudstore_bytes_in_total", &[("route", route)])
        .add(req.body.len() as u64);
    shared
        .registry
        .counter("cloudstore_bytes_out_total", &[("route", route)])
        .add(resp.body.len() as u64);
    shared
        .registry
        .histogram("cloudstore_request_duration_ns", &[("route", route)])
        .record_duration(duration);
    if req.path == "/v1/batch" {
        if let Some(n) = batch::peek_len(&req.body) {
            shared
                .registry
                .histogram("cloudstore_batch_ops", &[])
                .record(n as u64);
        }
    }
}

/// The historical blocking loop, kept behind
/// [`CloudServerConfig::legacy_threads`]. Shares [`execute_request`] with
/// the reactor handler; only the sleeping and writing live here.
fn serve_connection(stream: TcpStream, shared: ConnShared) -> Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(req) = read_request(&mut reader)? {
        let reply = execute_request(&req, &shared);
        let Some(resp) = reply.resp else {
            // Reset: sever with nothing written.
            return Ok(());
        };
        std::thread::sleep(reply.stall);
        std::thread::sleep(reply.wan);
        match reply.action {
            FaultAction::Dribble(delay) => {
                let mut wire = Vec::new();
                write_response(&mut wire, &resp)?;
                for &b in wire.iter().take(netsim::fault::DRIBBLE_MAX_BYTES) {
                    writer.write_all(&[b])?;
                    writer.flush()?;
                    std::thread::sleep(delay);
                }
                // The rest of the reply never arrives.
                return Ok(());
            }
            FaultAction::PartialWrite => {
                let mut wire = Vec::new();
                write_response(&mut wire, &resp)?;
                writer.write_all(wire.get(..wire.len() / 2).unwrap_or_default())?;
                writer.flush()?;
                return Ok(());
            }
            _ => write_response(&mut writer, &resp)?,
        }
        // Account after replying so the delay isn't inflated further; the
        // histogram still includes the injected WAN latency by design.
        record_reply_metrics(&shared, &req, &resp, reply.t0.elapsed());
    }
    Ok(())
}

/// Per-connection state machine driven by the reactor: scan one complete
/// request out of the input buffer, parse it with the same blocking-path
/// parser (byte-identical errors), and queue the reply — injected stall and
/// WAN delays become outbox delay steps preceding the bytes.
struct CloudConn {
    shared: ConnShared,
    /// The session is over (reset, dribble, partial write, malformed
    /// request) but the socket stays open: the blocking build parked such
    /// connections without ever sending a FIN (the accept loop holds a
    /// clone), so a lost reply black-holes until the client's deadline.
    /// Later buffered requests must not execute and never get replies.
    dead: bool,
}

impl CloudConn {
    /// Serve one parsed request. Returns `false` when the session is over
    /// (reset, dribble, partial write — the reply is deliberately
    /// incomplete and the blocking path also stopped serving).
    fn process(&mut self, req: &Request, out: &mut reactor::Outbox) -> bool {
        let reply = execute_request(req, &self.shared);
        let Some(resp) = reply.resp else {
            // Reset: sever with nothing written.
            return false;
        };
        out.delay(reply.stall);
        out.delay(reply.wan);
        let mut wire = Vec::new();
        let _ = write_response(&mut wire, &resp);
        match reply.action {
            FaultAction::Dribble(delay) => {
                for &b in wire.iter().take(netsim::fault::DRIBBLE_MAX_BYTES) {
                    out.send(vec![b]);
                    out.delay(delay);
                }
                // The rest of the reply never arrives.
                return false;
            }
            FaultAction::PartialWrite => {
                out.send(wire.get(..wire.len() / 2).unwrap_or_default().to_vec());
                return false;
            }
            _ => out.send(wire),
        }
        // The reply is queued, not yet written; charge the injected delays
        // explicitly so the histogram includes the WAN latency exactly as
        // the blocking path's post-write accounting did.
        let duration = reply
            .t0
            .elapsed()
            .saturating_add(reply.stall)
            .saturating_add(reply.wan);
        record_reply_metrics(&self.shared, req, &resp, duration);
        true
    }
}

impl reactor::ConnHandler for CloudConn {
    fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut reactor::Outbox) {
        while !self.dead {
            match scan_request(inbuf) {
                Scan::NeedMore => break,
                Scan::Frame(len) => {
                    let len = len.min(inbuf.len());
                    let frame: Vec<u8> = inbuf.drain(..len).collect();
                    let mut reader = BufReader::new(frame.as_slice());
                    match read_request(&mut reader) {
                        Ok(Some(req)) if self.process(&req, out) => {}
                        // Malformed request or fault-severed reply: the
                        // blocking loop stopped serving with no (further)
                        // bytes — and no FIN, since the accept loop holds
                        // a clone of the socket.
                        _ => self.dead = true,
                    }
                }
            }
        }
        if self.dead {
            // Discard anything the parked client keeps sending so the
            // buffer stays bounded.
            inbuf.clear();
        }
    }

    fn on_eof(&mut self, inbuf: &mut Vec<u8>, out: &mut reactor::Outbox) {
        // A partial head or truncated body at EOF is a read error on the
        // blocking path: the connection closes with no reply.
        inbuf.clear();
        out.close();
    }
}

fn route(req: &Request, objects: &RwLock<ObjectMap>) -> Response {
    let path = req.path.as_str();
    if let Some(seg) = path.strip_prefix("/v1/objects/") {
        let Some(key) = unescape_segment(seg) else {
            return Response::new(400).with_body(b"bad key encoding".to_vec());
        };
        return match req.method.as_str() {
            "PUT" => {
                let mut g = objects.write();
                g.version += 1;
                let etag = Etag(g.version);
                if let Some(old) = g.map.get(&key) {
                    g.bytes -= old.data.len() as u64;
                }
                g.bytes += req.body.len() as u64;
                g.map.insert(
                    key,
                    Object {
                        data: Bytes::copy_from_slice(&req.body),
                        etag,
                        modified_ms: now_millis(),
                    },
                );
                Response::new(201).with_header("etag", format!("\"{}\"", etag.to_hex()))
            }
            "GET" | "HEAD" => {
                let g = objects.read();
                match g.map.get(&key) {
                    None => Response::new(404),
                    Some(obj) => {
                        if let Some(tag) = req.header("if-none-match") {
                            if Etag::from_hex(tag) == Some(obj.etag) {
                                return Response::new(304)
                                    .with_header("etag", format!("\"{}\"", obj.etag.to_hex()));
                            }
                        }
                        Response::new(200)
                            .with_header("etag", format!("\"{}\"", obj.etag.to_hex()))
                            .with_header("x-modified-ms", obj.modified_ms.to_string())
                            .with_body(obj.data.to_vec())
                    }
                }
            }
            "DELETE" => {
                let mut g = objects.write();
                match g.map.remove(&key) {
                    Some(old) => {
                        g.bytes -= old.data.len() as u64;
                        Response::new(204)
                    }
                    None => Response::new(404),
                }
            }
            _ => Response::new(405),
        };
    }
    match (req.method.as_str(), path) {
        ("GET", "/v1/keys") => {
            let g = objects.read();
            let mut body = String::new();
            for k in g.map.keys() {
                body.push_str(&crate::http::escape_segment(k));
                body.push('\n');
            }
            Response::new(200).with_body(body.into_bytes())
        }
        ("POST", "/v1/batch") => match batch::decode_request(&req.body) {
            Err(e) => Response::new(400).with_body(e.to_string().into_bytes()),
            Ok(ops) => {
                let replies = apply_batch(ops, objects);
                Response::new(200)
                    .with_header("content-type", "application/x-batch")
                    .with_body(batch::encode_response(&replies))
            }
        },
        ("POST", "/v1/clear") => {
            let mut g = objects.write();
            g.map.clear();
            g.bytes = 0;
            Response::new(200)
        }
        ("GET", "/v1/stats") => {
            let g = objects.read();
            Response::new(200).with_body(format!("{} {}", g.map.len(), g.bytes).into_bytes())
        }
        ("GET", "/v1/ping") => Response::new(200).with_body(b"pong".to_vec()),
        ("GET", "/trace") => Response::new(200)
            .with_header("content-type", "application/json")
            .with_body(obs::FlightRecorder::global().render_json().into_bytes()),
        _ => Response::new(404).with_body(b"no such route".to_vec()),
    }
}

/// Apply a batch under one write lock, answering each op positionally.
/// Holding the lock across the whole batch makes the batch appear atomic to
/// other connections, though clients must not rely on that (the trait
/// documents batches as an optimization, not a transaction).
fn apply_batch(ops: Vec<BatchOp>, objects: &RwLock<ObjectMap>) -> Vec<BatchReply> {
    let mut g = objects.write();
    ops.into_iter()
        .map(|op| match op {
            BatchOp::Get(key) => match g.map.get(&key) {
                Some(obj) => BatchReply::Value(Versioned::with_etag(
                    obj.data.clone(),
                    obj.etag,
                    obj.modified_ms,
                )),
                None => BatchReply::Miss,
            },
            BatchOp::Put(key, value) => {
                g.version += 1;
                let etag = Etag(g.version);
                if let Some(old) = g.map.get(&key) {
                    g.bytes -= old.data.len() as u64;
                }
                g.bytes += value.len() as u64;
                g.map.insert(
                    key,
                    Object {
                        data: Bytes::from(value),
                        etag,
                        modified_ms: now_millis(),
                    },
                );
                BatchReply::Put(etag)
            }
            BatchOp::Delete(key) => match g.map.remove(&key) {
                Some(old) => {
                    g.bytes -= old.data.len() as u64;
                    BatchReply::Deleted(true)
                }
                None => BatchReply::Deleted(false),
            },
        })
        .collect()
}
