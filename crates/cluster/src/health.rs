//! Heartbeat health monitoring for a [`ClusterClient`]'s nodes.
//!
//! The cluster already has per-node circuit breakers, but a breaker only
//! learns from traffic: a quiet shard can sit Open (or dead) for minutes
//! without anyone noticing, and a slow node looks healthy until its
//! latency finally trips the retry budget. The heartbeat closes both
//! gaps. On each interval [`ClusterClient::probe_once`] fires one cheap
//! read probe at every node — in parallel, on the same worker pool that
//! runs hedge legs — and folds the probe latency together with the
//! breaker's opinion into a three-state verdict:
//!
//! ```text
//!           probe ok, fast, breaker closed
//!        ┌────────────────────────────────────┐
//!        ▼                                    │
//!      ┌────┐  slow probe or half-open     ┌──────────┐
//!      │ Up │ ────────────────────────────▶│ Degraded │
//!      └────┘                              └──────────┘
//!        │  probe error / timeout / shed        │
//!        ▼                                      ▼
//!      ┌──────┐◀───────────────────────────────┘
//!      │ Down │   (recovery transitions run the same edges in reverse)
//!      └──────┘
//! ```
//!
//! State transitions emit a trace event and record a synthetic trace into
//! the global flight recorder (errors for `-> Down`, so they are always
//! retained), and [`ClusterClient::publish`] exports the verdicts as
//! `cluster_node_up` / `cluster_node_health_state` / `cluster_node_probe_us`
//! gauges for the federation layer to merge. The probe targets a reserved
//! key ([`PROBE_KEY`]) that no workload writes; a miss is a perfectly
//! healthy answer — only transport failures and timeouts count against a
//! node.

use crate::ClusterClient;
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::{mpsc, Arc, Weak};
use std::time::{Duration, Instant};

/// The reserved key health probes read. Nothing writes it; a clean miss
/// proves the endpoint is alive and serving.
pub const PROBE_KEY: &str = "__cluster_probe__";

/// A node's health verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeState {
    /// Probe answered promptly and the breaker is closed.
    Up,
    /// Probe answered but slowly, or the breaker is still re-proving the
    /// node (half-open).
    Degraded,
    /// Probe failed, timed out, or was shed by an open breaker.
    Down,
}

impl NodeState {
    /// Gauge encoding for `cluster_node_health_state`: Up=2, Degraded=1,
    /// Down=0 — ordered so "bigger is healthier" survives aggregation.
    pub fn as_gauge(self) -> i64 {
        match self {
            NodeState::Up => 2,
            NodeState::Degraded => 1,
            NodeState::Down => 0,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            NodeState::Up => "up",
            NodeState::Degraded => "degraded",
            NodeState::Down => "down",
        }
    }
}

/// Heartbeat tuning.
#[derive(Clone, Debug)]
pub struct HealthPolicy {
    /// Time between probe rounds.
    pub interval: Duration,
    /// A probe slower than this is a timeout (counts as Down).
    pub probe_timeout: Duration,
    /// A successful probe slower than this marks the node Degraded.
    pub degraded_latency: Duration,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            interval: Duration::from_secs(2),
            probe_timeout: Duration::from_secs(1),
            degraded_latency: Duration::from_millis(100),
        }
    }
}

impl HealthPolicy {
    /// Millisecond-scale intervals so tests observe transitions quickly.
    pub fn test_profile() -> HealthPolicy {
        HealthPolicy {
            interval: Duration::from_millis(25),
            probe_timeout: Duration::from_millis(150),
            degraded_latency: Duration::from_millis(20),
        }
    }
}

/// One node's latest health observation.
#[derive(Clone, Debug)]
pub struct NodeHealth {
    pub state: NodeState,
    /// Last probe round-trip in microseconds; `-1` when the probe failed.
    pub probe_us: i64,
    /// State changes observed since monitoring began.
    pub transitions: u64,
    /// The error that drove the last `Down` verdict, if any.
    pub last_error: Option<String>,
}

/// Handle for a running heartbeat thread. Dropping it (or calling
/// [`stop`](Heartbeat::stop)) stops the thread promptly; the thread also
/// exits on its own once the cluster it watches is dropped, because it
/// holds only a [`Weak`] reference.
pub struct Heartbeat {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Signal the probe loop to exit and wait for it.
    pub fn stop(&mut self) {
        let (flag, cv) = &*self.stop;
        *flag.lock() = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop();
    }
}

impl ClusterClient {
    /// Run one probe round against every current node, in parallel on the
    /// hedge leg pool, and fold the results into the health map. Returns
    /// the verdicts. Callers normally go through
    /// [`start_heartbeat`](ClusterClient::start_heartbeat); this is public
    /// so tests and CLI snapshots can probe deterministically.
    pub fn probe_once(&self, hp: &HealthPolicy) -> BTreeMap<String, NodeHealth> {
        let nodes = self.topo.read().nodes.clone();
        let (tx, rx) = mpsc::channel::<(String, Result<Duration, String>)>();
        let expected = nodes.len();
        for node in nodes {
            let tx = tx.clone();
            self.legs.submit(move || {
                let started = Instant::now();
                let res = node.run(|s| s.get(PROBE_KEY));
                let verdict = match res {
                    // A miss (or any logical answer) proves liveness.
                    Ok(_) => Ok(started.elapsed()),
                    // Transient transport errors are the node failing to
                    // answer. A shed (`Unavailable`, breaker open) is the
                    // breaker remembering recent failures: the node is not
                    // serving, which is exactly what Down means — and
                    // under traffic the breaker usually opens before the
                    // next probe round gets its own look.
                    Err(e)
                        if e.is_transient() || matches!(e, kvapi::StoreError::Unavailable(_)) =>
                    {
                        Err(e.to_string())
                    }
                    Err(_) => Ok(started.elapsed()),
                };
                let _ = tx.send((node.id().to_string(), verdict));
            });
        }
        drop(tx);
        // One shared deadline: a node that cannot answer within the probe
        // timeout is Down even if its store call eventually returns.
        let deadline = Instant::now() + hp.probe_timeout;
        let mut results: BTreeMap<String, Result<Duration, String>> = BTreeMap::new();
        while results.len() < expected {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                break;
            };
            match rx.recv_timeout(remaining) {
                Ok((id, verdict)) => {
                    results.insert(id, verdict);
                }
                Err(_) => break,
            }
        }
        self.apply_probe_results(hp, &results)
    }

    /// Derive states from probe outcomes, record transitions, and return
    /// the updated map.
    fn apply_probe_results(
        &self,
        hp: &HealthPolicy,
        results: &BTreeMap<String, Result<Duration, String>>,
    ) -> BTreeMap<String, NodeHealth> {
        let nodes = self.topo.read().nodes.clone();
        let mut health = self.health.lock();
        // Forget nodes a reshard removed.
        health.retain(|id, _| nodes.iter().any(|n| n.id() == id));
        for node in &nodes {
            let id = node.id().to_string();
            let (state, probe_us, error) = match results.get(&id) {
                Some(Ok(rtt)) => {
                    let half_open = node.breaker().state() == resilience::BreakerState::HalfOpen;
                    let state = if *rtt >= hp.degraded_latency || half_open {
                        NodeState::Degraded
                    } else {
                        NodeState::Up
                    };
                    (state, rtt.as_micros() as i64, None)
                }
                Some(Err(e)) => (NodeState::Down, -1, Some(e.clone())),
                // No answer before the shared deadline.
                None => (NodeState::Down, -1, Some("probe timeout".to_string())),
            };
            let entry = health.entry(id.clone()).or_insert(NodeHealth {
                state,
                probe_us,
                transitions: 0,
                last_error: None,
            });
            let changed = entry.state != state || entry.transitions == 0;
            let prev = entry.state;
            entry.probe_us = probe_us;
            if let Some(e) = &error {
                entry.last_error = Some(e.clone());
            }
            if changed {
                entry.state = state;
                entry.transitions = entry.transitions.saturating_add(1);
                self.report_transition(&id, prev, state, probe_us, error.as_deref());
            }
        }
        health.clone()
    }

    /// Emit the transition as a trace event and a recorder entry, so
    /// "when did node-2 go down?" is answerable from the flight recorder.
    fn report_transition(
        &self,
        node: &str,
        prev: NodeState,
        next: NodeState,
        probe_us: i64,
        error: Option<&str>,
    ) {
        let detail = format!(
            "cluster={} node={node} {}->{} probe_us={probe_us}",
            self.name,
            prev.as_str(),
            next.as_str()
        );
        obs::ctx::report_event("node_health", detail.clone());
        let err = match next {
            NodeState::Down => Some(format!(
                "node {node} down: {}",
                error.unwrap_or("probe failed")
            )),
            _ => None,
        };
        obs::FlightRecorder::global().record(obs::CompletedTrace {
            origin: format!("cluster:{}", self.name),
            op: "node_health".to_string(),
            total: Duration::ZERO,
            stages: Vec::new(),
            other: Duration::ZERO,
            ctx: Some(obs::TraceContext::new_root()),
            events: vec![obs::TraceEvent {
                at: Duration::ZERO,
                name: "node_health".to_string(),
                detail,
            }],
            server_spans: Vec::new(),
            error: err,
        });
    }

    /// The latest health verdicts (empty until the first probe round).
    pub fn node_health(&self) -> BTreeMap<String, NodeHealth> {
        self.health.lock().clone()
    }

    /// Start a background heartbeat probing every `policy.interval`. The
    /// thread holds only a weak reference to the cluster and exits when
    /// the cluster is dropped, the returned handle is dropped, or
    /// [`Heartbeat::stop`] is called.
    pub fn start_heartbeat(self: &Arc<Self>, policy: HealthPolicy) -> Heartbeat {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let weak: Weak<ClusterClient> = Arc::downgrade(self);
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("cluster-heartbeat".to_string())
            .spawn(move || loop {
                {
                    let (flag, cv) = &*stop2;
                    let mut stopped = flag.lock();
                    if !*stopped {
                        cv.wait_until(&mut stopped, Instant::now() + policy.interval);
                    }
                    if *stopped {
                        return;
                    }
                }
                let Some(cluster) = weak.upgrade() else {
                    return;
                };
                cluster.probe_once(&policy);
            })
            .expect("spawn heartbeat thread");
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }

    /// Ring, ownership, migration, and health introspection as a JSON
    /// document — the "what is the cluster doing right now" surface the
    /// dashboard and operators read.
    pub fn introspect_json(&self) -> String {
        let (node_list, version, resharding) = {
            let t = self.topo.read();
            (t.nodes.clone(), t.version, t.prev.is_some())
        };
        let health = self.health.lock().clone();
        let migration_pending = self.migration.lock().len();
        let dirty_keys = self.dirty.lock().len();
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"cluster\":{},\"ring_version\":{version},\"resharding\":{resharding},\
             \"migration_pending\":{migration_pending},\"dirty_keys\":{dirty_keys},\
             \"migrated_keys\":{},\"nodes\":[",
            json_string(&self.name),
            self.migrated_keys()
        ));
        for (i, node) in node_list.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (state, probe_us, transitions) = match health.get(node.id()) {
                Some(h) => (h.state.as_str(), h.probe_us, h.transitions),
                None => ("unknown", -1, 0),
            };
            out.push_str(&format!(
                "{{\"id\":{},\"state\":{},\"probe_us\":{probe_us},\
                 \"transitions\":{transitions},\"breaker\":{},\
                 \"requests\":{},\"failures\":{},\"sheds\":{}}}",
                json_string(node.id()),
                json_string(state),
                json_string(breaker_name(node.breaker().state())),
                node.requests(),
                node.failures(),
                node.sheds()
            ));
        }
        out.push_str("]}");
        out
    }
}

fn breaker_name(state: resilience::BreakerState) -> &'static str {
    match state {
        resilience::BreakerState::Closed => "closed",
        resilience::BreakerState::Open => "open",
        resilience::BreakerState::HalfOpen => "half-open",
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// True once `stopped` observes the flag — helper for tests that need to
/// wait on the heartbeat's first round without sleeping a fixed time.
pub fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{FlakyStore, SlowStore};
    use crate::{ClusterClient, ClusterPolicy};
    use kvapi::mem::MemKv;
    use kvapi::KeyValue;
    use std::sync::atomic::Ordering;

    fn flaky_cluster(n: usize) -> (Arc<ClusterClient>, Vec<Arc<FlakyStore>>) {
        let mut stores: Vec<(String, Arc<dyn KeyValue>)> = Vec::new();
        let mut flaky = Vec::new();
        for i in 0..n {
            let f = Arc::new(FlakyStore::new(&format!("node-{i}")));
            flaky.push(f.clone());
            stores.push((format!("node-{i}"), f as Arc<dyn KeyValue>));
        }
        (
            Arc::new(ClusterClient::from_stores(
                "hc",
                stores,
                ClusterPolicy::test_profile(),
            )),
            flaky,
        )
    }

    #[test]
    fn probe_round_marks_healthy_nodes_up() {
        let (c, _) = flaky_cluster(3);
        let health = c.probe_once(&HealthPolicy::test_profile());
        assert_eq!(health.len(), 3);
        for (id, h) in &health {
            assert_eq!(h.state, NodeState::Up, "{id}: {h:?}");
            assert!(h.probe_us >= 0);
            assert_eq!(h.transitions, 1, "first observation counts once");
        }
    }

    #[test]
    fn shedding_breaker_counts_as_down() {
        // Under traffic the breaker usually opens before the heartbeat's
        // own probe sees the failure; the shed (`Unavailable`) must read
        // as Down, not as a healthy logical answer.
        let (c, flaky) = flaky_cluster(3);
        let hp = HealthPolicy::test_profile();
        c.probe_once(&hp);
        flaky[0].fail_reads.store(true, Ordering::Relaxed);
        flaky[0].fail_writes.store(true, Ordering::Relaxed);
        // Hammer until node-0's breaker is open and sheds.
        let tripped = wait_until(Duration::from_secs(3), || {
            for i in 0..8 {
                let _ = c.put(&format!("trip-{i}"), b"x");
                let _ = c.get(&format!("trip-{i}"));
            }
            c.topo
                .read()
                .nodes
                .iter()
                .find(|n| n.id() == "node-0")
                .is_some_and(|n| n.is_shedding())
        });
        assert!(tripped, "breaker never opened on node-0");
        let health = c.probe_once(&hp);
        assert_eq!(health["node-0"].state, NodeState::Down, "{health:?}");
        assert!(health["node-0"]
            .last_error
            .as_deref()
            .is_some_and(|e| e.contains("unavailable")));
    }

    #[test]
    fn dead_node_goes_down_and_recovers() {
        let (c, flaky) = flaky_cluster(3);
        let hp = HealthPolicy::test_profile();
        c.probe_once(&hp);
        flaky[1].fail_reads.store(true, Ordering::Relaxed);
        let health = c.probe_once(&hp);
        assert_eq!(health["node-1"].state, NodeState::Down);
        assert_eq!(health["node-1"].probe_us, -1);
        assert!(health["node-1"].last_error.is_some());
        assert_eq!(health["node-0"].state, NodeState::Up);
        // The transition left a retained (error) trace in the recorder.
        let traces = obs::FlightRecorder::global().recent(256);
        assert!(
            traces.iter().any(|t| {
                t.origin == "cluster:hc" && t.error.as_deref().is_some_and(|e| e.contains("node-1"))
            }),
            "recorder holds the down transition"
        );
        // Heal; breaker may need a probe round or two to re-close.
        flaky[1].fail_reads.store(false, Ordering::Relaxed);
        let recovered = wait_until(Duration::from_secs(3), || {
            c.probe_once(&hp)["node-1"].state == NodeState::Up
        });
        assert!(recovered, "node-1 never recovered: {:?}", c.node_health());
    }

    #[test]
    fn slow_node_is_degraded_not_down() {
        let mut stores: Vec<(String, Arc<dyn KeyValue>)> = vec![(
            "node-0".to_string(),
            Arc::new(SlowStore {
                inner: MemKv::new("node-0"),
                delay: Duration::from_millis(40),
            }) as Arc<dyn KeyValue>,
        )];
        for i in 1..3 {
            stores.push((
                format!("node-{i}"),
                Arc::new(MemKv::new(format!("node-{i}"))) as Arc<dyn KeyValue>,
            ));
        }
        let c = Arc::new(ClusterClient::from_stores(
            "hc2",
            stores,
            ClusterPolicy::test_profile(),
        ));
        // degraded_latency 20ms < 40ms delay < probe_timeout 150ms.
        let health = c.probe_once(&HealthPolicy::test_profile());
        assert_eq!(health["node-0"].state, NodeState::Degraded);
        assert_eq!(health["node-1"].state, NodeState::Up);
    }

    #[test]
    fn heartbeat_thread_probes_on_its_own() {
        let (c, _) = flaky_cluster(3);
        let mut hb = c.start_heartbeat(HealthPolicy::test_profile());
        let observed = wait_until(Duration::from_secs(3), || c.node_health().len() == 3);
        assert!(observed, "heartbeat never completed a round");
        hb.stop();
        // Stop is prompt and idempotent.
        hb.stop();
    }

    #[test]
    fn introspect_json_names_every_node_and_the_ring() {
        let (c, flaky) = flaky_cluster(3);
        c.put("k", b"v").unwrap();
        c.probe_once(&HealthPolicy::test_profile());
        flaky[2].fail_reads.store(true, Ordering::Relaxed);
        c.probe_once(&HealthPolicy::test_profile());
        let j = c.introspect_json();
        assert!(j.contains("\"ring_version\":1"), "{j}");
        assert!(j.contains("\"resharding\":false"), "{j}");
        assert!(j.contains("\"id\":\"node-0\""), "{j}");
        assert!(j.contains("\"state\":\"down\""), "{j}");
        assert!(j.contains("\"state\":\"up\""), "{j}");
        // Sanity: it parses as JSON by the serde already in-tree.
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v.get("nodes").and_then(|n| n.as_array()).unwrap().len(), 3);
    }

    #[test]
    fn publish_exports_health_gauges() {
        let (c, flaky) = flaky_cluster(3);
        c.probe_once(&HealthPolicy::test_profile());
        flaky[1].fail_reads.store(true, Ordering::Relaxed);
        c.probe_once(&HealthPolicy::test_profile());
        let reg = obs::Registry::new();
        c.publish(&reg);
        let text = reg.render_prometheus();
        assert!(
            text.contains("cluster_node_up{cluster=\"hc\",node=\"node-0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("cluster_node_up{cluster=\"hc\",node=\"node-1\"} 0"),
            "{text}"
        );
        assert!(text.contains("cluster_node_probe_us{cluster=\"hc\",node=\"node-0\"}"));
        assert!(text.contains("cluster_node_health_state{cluster=\"hc\",node=\"node-1\"} 0"));
    }
}
