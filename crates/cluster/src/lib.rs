//! # cluster — a client-side router over any set of kvapi stores
//!
//! The paper's Universal Data Store Manager gives every store one common
//! key-value interface; this crate exploits that uniformity one level up.
//! A [`ClusterClient`] *is itself* a [`KeyValue`]: it shards keys across N
//! endpoint stores with a consistent-hash ring ([`ring::HashRing`], virtual
//! nodes for balance and minimal movement), replicates each key to
//! `replicas` distinct owners, and layers the workspace's resilience
//! toolkit per endpoint — a [`resilience::CircuitBreaker`] per node, one
//! deadline + retry budget per logical request.
//!
//! Three behaviours distinguish it from a plain proxy:
//!
//! * **Hedged reads** — when [`ClusterPolicy::hedge_delay`] is set and a
//!   read has not answered within the delay, a second request is fired at
//!   the next owner and the first reply wins. The loser is *abandoned*:
//!   its eventual failure reports [`Verdict::Abandoned`] so a cancelled
//!   hedge can never be mistaken for a failed half-open breaker probe.
//! * **Replication with read-repair** — writes go to every current owner;
//!   a partially-applied write marks the key *dirty* and pins the etag the
//!   cluster acknowledged, and the next read of a dirty key reads all
//!   owners, restores the pinned version (falling back to the newest copy
//!   by `(modified_ms, etag)` only when no pin exists) and rewrites stale
//!   or missing copies. The pin matters: `modified_ms` ties on the
//!   millisecond, and breaking a tie by etag hash could resurrect an
//!   older copy over the acknowledged write.
//! * **Live resharding** ([`reshard`]) — a ring change keeps the previous
//!   topology as a read-union until a background migration sweep has moved
//!   every key, guarded per key by etag comparison so re-running a sweep
//!   (or resuming one after a crash) is at-most-once in effects.
//!
//! The router never speaks a wire protocol: endpoints are materialised by
//! a [`kvapi::Connector`], so the same cluster logic runs over in-process
//! `MemKv` nodes in tests and real remote clients in production.

#![forbid(unsafe_code)]

pub mod health;
pub mod node;
mod pool;
pub mod reshard;
pub mod ring;

pub use health::{HealthPolicy, Heartbeat, NodeHealth, NodeState};
pub use node::{no_nodes, verdict_for, Node, Verdict};
pub use ring::HashRing;

use kvapi::{Bytes, CondGet, Connector, Etag, KeyValue, Result, StoreError, StoreStats, Versioned};
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use resilience::{Deadline, ResiliencePolicy};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Tuning for one [`ClusterClient`].
#[derive(Clone, Debug)]
pub struct ClusterPolicy {
    /// Total copies of each key, primary included. Clamped to the node
    /// count at routing time.
    pub replicas: usize,
    /// Virtual nodes per endpoint on the hash ring.
    pub vnodes: usize,
    /// Fire a second read at the next owner if the first has not answered
    /// within this delay. `None` disables hedging (reads fail over
    /// sequentially instead).
    pub hedge_delay: Option<Duration>,
    /// Repair dirty keys (partially-applied writes) on read.
    pub read_repair: bool,
    /// Per-request deadline, retry schedule and per-node breaker tuning.
    pub resilience: ResiliencePolicy,
}

impl Default for ClusterPolicy {
    fn default() -> ClusterPolicy {
        ClusterPolicy {
            replicas: 2,
            vnodes: 64,
            hedge_delay: None,
            read_repair: true,
            resilience: ResiliencePolicy::default(),
        }
    }
}

impl ClusterPolicy {
    /// Tight budgets for tests: the resilience test profile, fewer vnodes.
    pub fn test_profile() -> ClusterPolicy {
        ClusterPolicy {
            replicas: 2,
            vnodes: 32,
            hedge_delay: None,
            read_repair: true,
            resilience: ResiliencePolicy::test_profile(),
        }
    }
}

/// Current routing state: the live node set and ring, plus — during a
/// reshard — the previous topology, kept as a read union until the
/// migration sweep completes.
pub(crate) struct Topology {
    pub(crate) nodes: Vec<Arc<Node>>,
    pub(crate) ring: HashRing,
    pub(crate) prev: Option<(Vec<Arc<Node>>, HashRing)>,
    pub(crate) version: u64,
}

#[derive(Default)]
struct Metrics {
    hedges_fired: AtomicU64,
    hedge_wins: AtomicU64,
    failovers: AtomicU64,
    read_repairs: AtomicU64,
    migrated_keys: AtomicU64,
}

/// A sharded, replicated, hedging [`KeyValue`] router over N endpoints.
pub struct ClusterClient {
    name: String,
    policy: ClusterPolicy,
    topo: RwLock<Topology>,
    /// Keys whose replicas may disagree (a write skipped an owner), each
    /// pinned to the etag the cluster acknowledged for its last write so
    /// repair and migration can never resurrect an older copy over it.
    dirty: Mutex<BTreeMap<String, Etag>>,
    /// Keys still to be examined by the active migration sweep.
    pub(crate) migration: Mutex<VecDeque<String>>,
    /// Reusable workers for hedged read legs — keeps thread spawning off
    /// the hot read path.
    legs: pool::LegPool,
    rng: Mutex<SmallRng>,
    metrics: Metrics,
    /// Latest heartbeat verdict per node id (see [`health`]). Empty until
    /// the first probe round.
    pub(crate) health: Mutex<BTreeMap<String, health::NodeHealth>>,
}

impl ClusterClient {
    /// Build a cluster over pre-constructed stores (id, client) — the
    /// in-process path used by tests and benchmarks.
    pub fn from_stores(
        name: impl Into<String>,
        stores: Vec<(String, Arc<dyn KeyValue>)>,
        policy: ClusterPolicy,
    ) -> ClusterClient {
        let nodes: Vec<Arc<Node>> = stores
            .into_iter()
            .map(|(id, st)| Arc::new(Node::new(id, st, policy.resilience.breaker.clone())))
            .collect();
        let ids: Vec<String> = nodes.iter().map(|n| n.id().to_string()).collect();
        let ring = HashRing::new(&ids, policy.vnodes);
        ClusterClient {
            name: name.into(),
            rng: Mutex::new(SmallRng::seed_from_u64(policy.resilience.seed)),
            policy,
            topo: RwLock::new(Topology {
                nodes,
                ring,
                prev: None,
                version: 1,
            }),
            dirty: Mutex::new(BTreeMap::new()),
            migration: Mutex::new(VecDeque::new()),
            legs: pool::LegPool::new(),
            metrics: Metrics::default(),
            health: Mutex::new(BTreeMap::new()),
        }
    }

    /// Connect to each endpoint through `connector` and build the cluster.
    pub fn connect(
        name: impl Into<String>,
        endpoints: &[String],
        connector: &dyn Connector,
        policy: ClusterPolicy,
    ) -> Result<ClusterClient> {
        let mut stores = Vec::with_capacity(endpoints.len());
        for ep in endpoints {
            stores.push((ep.clone(), connector.connect(ep)?));
        }
        Ok(ClusterClient::from_stores(name, stores, policy))
    }

    pub fn policy(&self) -> &ClusterPolicy {
        &self.policy
    }

    /// Monotonic topology version, bumped by every ring change.
    pub fn ring_version(&self) -> u64 {
        self.topo.read().version
    }

    /// Ids of the current (post-reshard) node set, in ring order.
    pub fn node_ids(&self) -> Vec<String> {
        self.topo
            .read()
            .nodes
            .iter()
            .map(|n| n.id().to_string())
            .collect()
    }

    /// Hedge requests fired (second leg launched after the hedge delay).
    pub fn hedges_fired(&self) -> u64 {
        self.metrics.hedges_fired.load(Ordering::Relaxed)
    }

    /// Hedged reads where the *second* leg answered first.
    pub fn hedge_wins(&self) -> u64 {
        self.metrics.hedge_wins.load(Ordering::Relaxed)
    }

    /// Reads/writes that fell over to another owner after a failure.
    pub fn failovers(&self) -> u64 {
        self.metrics.failovers.load(Ordering::Relaxed)
    }

    /// Dirty keys repaired on read.
    pub fn read_repairs(&self) -> u64 {
        self.metrics.read_repairs.load(Ordering::Relaxed)
    }

    /// Keys copied to a new owner by migration sweeps.
    pub fn migrated_keys(&self) -> u64 {
        self.metrics.migrated_keys.load(Ordering::Relaxed)
    }

    /// Is `key` currently marked dirty (replicas may disagree)?
    pub fn is_dirty(&self, key: &str) -> bool {
        self.dirty.lock().contains_key(key)
    }

    /// The etag pinned by `key`'s last partially-applied write, if dirty.
    pub(crate) fn dirty_pin(&self, key: &str) -> Option<Etag> {
        self.dirty.lock().get(key).copied()
    }

    fn mark_dirty(&self, key: &str, acked: Etag) {
        self.dirty.lock().insert(key.to_string(), acked);
    }

    fn clear_dirty(&self, key: &str) {
        self.dirty.lock().remove(key);
    }

    /// Publish cluster and per-node health to `reg`.
    pub fn publish(&self, reg: &obs::Registry) {
        let labels = &[("cluster", self.name.as_str())];
        reg.counter("cluster_hedges_fired_total", labels)
            .set(self.hedges_fired());
        reg.counter("cluster_hedge_wins_total", labels)
            .set(self.hedge_wins());
        reg.counter("cluster_failovers_total", labels)
            .set(self.failovers());
        reg.counter("cluster_read_repairs_total", labels)
            .set(self.read_repairs());
        reg.counter("cluster_migrated_keys_total", labels)
            .set(self.migrated_keys());
        let (nodes, version) = {
            let t = self.topo.read();
            (t.nodes.clone(), t.version)
        };
        reg.gauge("cluster_ring_version", labels)
            .set(i64::try_from(version).unwrap_or(i64::MAX));
        let health = self.health.lock().clone();
        for node in &nodes {
            let nl = &[("cluster", self.name.as_str()), ("node", node.id())];
            reg.counter("cluster_node_requests_total", nl)
                .set(node.requests());
            reg.counter("cluster_node_failures_total", nl)
                .set(node.failures());
            reg.counter("cluster_node_sheds_total", nl)
                .set(node.sheds());
            reg.gauge("cluster_node_breaker_state", nl)
                .set(node.breaker().state().as_gauge());
            if let Some(h) = health.get(node.id()) {
                // Binary liveness (degraded still serves) plus the full
                // three-state verdict and the raw probe latency.
                reg.gauge("cluster_node_up", nl)
                    .set(i64::from(h.state != health::NodeState::Down));
                reg.gauge("cluster_node_health_state", nl)
                    .set(h.state.as_gauge());
                reg.gauge("cluster_node_probe_us", nl).set(h.probe_us);
            }
        }
    }

    // ---- routing ---------------------------------------------------------

    /// Current owners of `key` (primary first).
    fn owner_nodes(&self, key: &str) -> Vec<Arc<Node>> {
        let t = self.topo.read();
        t.ring
            .owners(key, self.policy.replicas)
            .into_iter()
            .filter_map(|i| t.nodes.get(i).cloned())
            .collect()
    }

    /// Current owners plus — during a reshard — previous owners, deduped
    /// by node id. This union is what keeps every key readable while the
    /// migration sweep is still moving it.
    fn candidates_for(&self, key: &str) -> Vec<Arc<Node>> {
        let t = self.topo.read();
        let mut out: Vec<Arc<Node>> = t
            .ring
            .owners(key, self.policy.replicas)
            .into_iter()
            .filter_map(|i| t.nodes.get(i).cloned())
            .collect();
        if let Some((pnodes, pring)) = &t.prev {
            for i in pring.owners(key, self.policy.replicas) {
                if let Some(n) = pnodes.get(i) {
                    if !out.iter().any(|o| o.id() == n.id()) {
                        out.push(n.clone());
                    }
                }
            }
        }
        out
    }

    // ---- failure budget --------------------------------------------------

    /// One deadline + backoff budget wrapped around a whole routing round.
    /// Rounds are idempotent: reads are read-only and replicated writes
    /// rewrite identical bytes, so a replayed round cannot double-apply.
    fn with_retry<T>(&self, mut f: impl FnMut(&Deadline) -> Result<T>) -> Result<T> {
        let retry = self.policy.resilience.retry.clone();
        let deadline = Deadline::within(self.policy.resilience.request_timeout);
        let mut prev_sleep = retry.base;
        let mut attempt: u32 = 0;
        loop {
            attempt = attempt.saturating_add(1);
            let err = match f(&deadline) {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            if !err.is_transient() || attempt >= retry.max_attempts.max(1) {
                return Err(err);
            }
            let sleep = {
                let mut rng = self.rng.lock();
                retry.backoff(prev_sleep, &mut rng)
            };
            prev_sleep = sleep;
            match deadline.remaining() {
                Some(rem) => {
                    let backoff = sleep.min(rem);
                    obs::ctx::report_event(
                        "retry",
                        format!(
                            "attempt={} backoff_ms={}",
                            attempt.saturating_add(1),
                            backoff.as_millis()
                        ),
                    );
                    std::thread::sleep(backoff);
                }
                None => return Err(StoreError::Timeout),
            }
        }
    }

    // ---- read path -------------------------------------------------------

    /// The versioned read behind `get`/`get_versioned`/`get_if_none_match`:
    /// repair-first for dirty keys, then a hedged or sequential sweep over
    /// the owner union, retried within one deadline on transient failure.
    fn read(&self, key: &str) -> Result<Option<Versioned>> {
        if self.policy.read_repair && self.is_dirty(key) {
            return self.repair_key(key);
        }
        let candidates = self.candidates_for(key);
        if candidates.is_empty() {
            return Err(no_nodes());
        }
        self.with_retry(|deadline| match self.policy.hedge_delay {
            Some(delay) => self.hedged_round(key, &candidates, deadline, delay),
            None => self.sequential_round(key, &candidates),
        })
    }

    /// Probe owners in ring order; first hit wins. A miss is only
    /// authoritative once every reachable owner has been asked — a stale
    /// replica may miss a key its peers hold.
    fn sequential_round(&self, key: &str, candidates: &[Arc<Node>]) -> Result<Option<Versioned>> {
        let mut saw_miss = false;
        let mut last_err: Option<StoreError> = None;
        let last = candidates.len().saturating_sub(1);
        for (i, node) in candidates.iter().enumerate() {
            match node.run(|s| s.get_versioned(key)) {
                Ok(Some(v)) => return Ok(Some(v)),
                Ok(None) => saw_miss = true,
                Err(e) => {
                    last_err = Some(e);
                    if i < last {
                        self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        if saw_miss {
            Ok(None)
        } else {
            Err(last_err.unwrap_or_else(no_nodes))
        }
    }

    /// One hedged read round. The first leg goes to the primary; if it has
    /// not answered within `delay`, the next owner gets a hedge leg and the
    /// first `Ok(Some)` wins. Losers are left running: when one later
    /// fails, its worker reports [`Verdict::Abandoned`] to the node breaker
    /// (a cancelled hedge is not evidence the endpoint is down, and must
    /// never consume a half-open probe verdict).
    fn hedged_round(
        &self,
        key: &str,
        candidates: &[Arc<Node>],
        deadline: &Deadline,
        delay: Duration,
    ) -> Result<Option<Versioned>> {
        let (tx, rx) = mpsc::channel::<(usize, Result<Option<Versioned>>)>();
        let settled = Arc::new(AtomicBool::new(false));
        let mut hedge_launched = vec![false; candidates.len()];
        let mut launched = 0usize;
        let mut outstanding = 0usize;
        let mut saw_miss = false;
        let mut last_err: Option<StoreError> = None;
        loop {
            // Fire the next leg whenever nothing is in flight: the first
            // leg, or a failover after a miss/failure concluded the last.
            if outstanding == 0 && launched < candidates.len() {
                if let Some(node) = candidates.get(launched) {
                    spawn_leg(
                        &self.legs,
                        node.clone(),
                        key.to_string(),
                        launched,
                        tx.clone(),
                        settled.clone(),
                    );
                }
                launched = launched.saturating_add(1);
                outstanding = outstanding.saturating_add(1);
            }
            if outstanding == 0 {
                settled.store(true, Ordering::Release);
                return if saw_miss {
                    Ok(None)
                } else {
                    Err(last_err.unwrap_or_else(no_nodes))
                };
            }
            let Some(remaining) = deadline.remaining() else {
                settled.store(true, Ordering::Release);
                return Err(StoreError::Timeout);
            };
            let hedge_armed = launched < candidates.len();
            let wait = if hedge_armed {
                delay.min(remaining)
            } else {
                remaining
            };
            match rx.recv_timeout(wait) {
                Ok((idx, Ok(Some(v)))) => {
                    settled.store(true, Ordering::Release);
                    if hedge_launched.get(idx).copied().unwrap_or(false) {
                        self.metrics.hedge_wins.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(Some(v));
                }
                Ok((_, Ok(None))) => {
                    outstanding = outstanding.saturating_sub(1);
                    saw_miss = true;
                }
                Ok((_, Err(e))) => {
                    outstanding = outstanding.saturating_sub(1);
                    last_err = Some(e);
                    if launched < candidates.len() {
                        self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) if hedge_armed && !deadline.expired() => {
                    if let Some(node) = candidates.get(launched) {
                        self.metrics.hedges_fired.fetch_add(1, Ordering::Relaxed);
                        obs::ctx::report_event("hedge_fired", format!("key={key} leg={launched}"));
                        if let Some(slot) = hedge_launched.get_mut(launched) {
                            *slot = true;
                        }
                        spawn_leg(
                            &self.legs,
                            node.clone(),
                            key.to_string(),
                            launched,
                            tx.clone(),
                            settled.clone(),
                        );
                        launched = launched.saturating_add(1);
                        outstanding = outstanding.saturating_add(1);
                    }
                }
                Err(_) => {
                    settled.store(true, Ordering::Release);
                    return Err(StoreError::Timeout);
                }
            }
        }
    }

    // ---- write path ------------------------------------------------------

    /// Replicated write: every current owner gets the value; the first
    /// owner to accept it is the acting primary whose etag is returned.
    /// Any skipped owner marks the key dirty for read-repair. Only a write
    /// rejected by *every* owner fails.
    fn write_key(&self, key: &str, value: &[u8]) -> Result<Etag> {
        let owners = self.owner_nodes(key);
        if owners.is_empty() {
            return Err(no_nodes());
        }
        self.with_retry(|_deadline| {
            let mut etag: Option<Etag> = None;
            let mut partial = false;
            let mut last_err: Option<StoreError> = None;
            for node in &owners {
                match node.run(|s| s.put_versioned(key, value)) {
                    Ok(e) => {
                        if etag.is_none() {
                            etag = Some(e);
                        }
                    }
                    Err(e) => {
                        partial = true;
                        last_err = Some(e);
                    }
                }
            }
            match etag {
                Some(e) => {
                    if partial {
                        self.mark_dirty(key, e);
                        self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.clear_dirty(key);
                    }
                    Ok(e)
                }
                None => Err(last_err.unwrap_or_else(no_nodes)),
            }
        })
    }

    // ---- read-repair -----------------------------------------------------

    /// Read every reachable owner, pick the winner — the version pinned by
    /// the key's dirty mark when there is one, else the newest copy by
    /// `(modified_ms, etag)` — rewrite stale/missing current owners, and
    /// clear the dirty mark once all of them are confirmed converged. A
    /// pinned version whose copy is unreachable blocks the rewrite: repair
    /// then serves the best available value but changes nothing, so an
    /// older same-millisecond copy can never overwrite the acknowledged
    /// write by winning an etag-hash tiebreak.
    pub fn repair_key(&self, key: &str) -> Result<Option<Versioned>> {
        let owners = self.owner_nodes(key);
        let readers = self.candidates_for(key);
        if readers.is_empty() {
            return Err(no_nodes());
        }
        let mut votes: Vec<(Arc<Node>, Option<Versioned>)> = Vec::new();
        let mut errors = 0usize;
        let mut last_err: Option<StoreError> = None;
        for node in &readers {
            match node.run(|s| s.get_versioned(key)) {
                Ok(v) => votes.push((node.clone(), v)),
                Err(e) => {
                    errors = errors.saturating_add(1);
                    last_err = Some(e);
                }
            }
        }
        if votes.is_empty() {
            return Err(last_err.unwrap_or_else(no_nodes));
        }
        let present: Vec<Versioned> = votes.iter().filter_map(|(_, v)| v.clone()).collect();
        if present.is_empty() {
            // Every reachable owner agrees the key is absent.
            if errors == 0 {
                self.clear_dirty(key);
            }
            return Ok(None);
        }
        let pin = self.dirty_pin(key);
        let pinned = pin.and_then(|p| present.iter().find(|v| v.etag == p).cloned());
        if pin.is_some() && pinned.is_none() {
            // The acknowledged write's copy is not reachable right now:
            // serve the best available value but repair nothing, so the
            // pinned version survives until its holder comes back.
            return Ok(present
                .into_iter()
                .max_by_key(|v| (v.modified_ms, v.etag.0)));
        }
        let winner = pinned.or_else(|| {
            present
                .iter()
                .max_by_key(|v| (v.modified_ms, v.etag.0))
                .cloned()
        });
        let Some(winner) = winner else {
            return Ok(None);
        };
        let mut rewrote = false;
        let mut failed = errors > 0;
        for node in &owners {
            let have = votes
                .iter()
                .find(|(n, _)| Arc::ptr_eq(n, node))
                .map(|(_, v)| v.clone());
            match have {
                Some(Some(v)) if v.etag == winner.etag => {}
                Some(_) => match node.run(|s| s.put(key, &winner.data)) {
                    Ok(()) => rewrote = true,
                    Err(_) => failed = true,
                },
                // Unreadable owner: can't prove convergence, stay dirty.
                None => failed = true,
            }
        }
        if rewrote {
            self.metrics.read_repairs.fetch_add(1, Ordering::Relaxed);
            obs::ctx::report_event("read_repair", format!("key={key}"));
        }
        if !failed {
            self.clear_dirty(key);
        }
        Ok(Some(winner))
    }

    // ---- batch (per-key results) ----------------------------------------

    /// Per-key batch read. Clean keys are grouped by primary and fetched
    /// with one native `get_many` per shard; only *hits* from that fast
    /// path are trusted. A primary miss is never authoritative — a
    /// replica may hold a copy the primary lacks (another client's
    /// partial write) — so misses, keys on a failed shard, and dirty keys
    /// (which need the repair path) all fall back to the full per-key
    /// read, where only a complete owner round can conclude `None`.
    /// During a reshard the fast path is skipped entirely: keys may still
    /// live only on previous-topology owners the new ring never names.
    /// Each position gets its own verdict.
    pub fn try_get_many(&self, keys: &[&str]) -> Vec<Result<Option<Bytes>>> {
        let (nodes, ring, resharding) = {
            let t = self.topo.read();
            (t.nodes.clone(), t.ring.clone(), t.prev.is_some())
        };
        let mut out: Vec<Option<Result<Option<Bytes>>>> = keys.iter().map(|_| None).collect();
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        if !resharding {
            let dirty = self.dirty.lock();
            for (pos, key) in keys.iter().enumerate() {
                if self.policy.read_repair && dirty.contains_key(*key) {
                    continue; // slow path below
                }
                match ring.primary(key) {
                    Some(n) => groups.entry(n).or_default().push(pos),
                    None => {
                        if let Some(slot) = out.get_mut(pos) {
                            *slot = Some(Err(no_nodes()));
                        }
                    }
                }
            }
        }
        for (nidx, positions) in groups {
            let Some(node) = nodes.get(nidx) else {
                continue; // slow path below
            };
            let gkeys: Vec<&str> = positions
                .iter()
                .filter_map(|&p| keys.get(p).copied())
                .collect();
            match node.run(|s| s.get_many(&gkeys)) {
                Ok(vals) if vals.len() == gkeys.len() => {
                    for (i, &pos) in positions.iter().enumerate() {
                        // Hits settle here; a miss stays unresolved and
                        // takes the full read below, because only a round
                        // over every reachable owner may conclude `None`.
                        if let Some(v) = vals.get(i).cloned().flatten() {
                            if let Some(slot) = out.get_mut(pos) {
                                *slot = Some(Ok(Some(v)));
                            }
                        }
                    }
                }
                // Shard call failed (or was malformed): every key in the
                // group retries individually with failover below.
                Ok(_) | Err(_) => {
                    self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        out.into_iter()
            .enumerate()
            .map(|(pos, slot)| match slot {
                Some(r) => r,
                None => keys.get(pos).map_or_else(
                    || Err(no_nodes()),
                    |k| self.read(k).map(|ov| ov.map(|v| v.data)),
                ),
            })
            .collect()
    }

    /// Per-key batch write: each entry is a full replicated [`write_key`]
    /// with its own verdict, so one rejected key never hides the etags of
    /// the keys that did land.
    pub fn try_put_many(&self, entries: &[(&str, &[u8])]) -> Vec<Result<Etag>> {
        entries.iter().map(|(k, v)| self.write_key(k, v)).collect()
    }
}

/// Fire one read leg on the cluster's leg pool (an idle pooled worker in
/// the common case — never a fresh thread on the hot path unless every
/// worker is wedged). The worker reports its own breaker verdict:
/// truthfully on success, and as [`Verdict::Abandoned`] when it failed
/// *after* the round settled — at that point the failure is
/// indistinguishable from cancellation and must not count against the node.
fn spawn_leg(
    legs: &pool::LegPool,
    node: Arc<Node>,
    key: String,
    idx: usize,
    tx: mpsc::Sender<(usize, Result<Option<Versioned>>)>,
    settled: Arc<AtomicBool>,
) {
    legs.submit(move || {
        let res = match node.begin() {
            Ok(permit) => {
                let res = node.store().get_versioned(&key);
                let lost = settled.load(Ordering::Acquire);
                let verdict = match (&res, lost) {
                    (Err(e), true) if e.is_transient() => Verdict::Abandoned,
                    _ => verdict_for(&res),
                };
                node.finish(permit, verdict);
                res
            }
            Err(e) => Err(e),
        };
        let _ = tx.send((idx, res));
    });
}

impl KeyValue for ClusterClient {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        self.write_key(key, value).map(|_| ())
    }

    fn put_versioned(&self, key: &str, value: &[u8]) -> Result<Etag> {
        self.write_key(key, value)
    }

    fn get(&self, key: &str) -> Result<Option<Bytes>> {
        self.read(key).map(|ov| ov.map(|v| v.data))
    }

    fn get_versioned(&self, key: &str) -> Result<Option<Versioned>> {
        self.read(key)
    }

    fn get_if_none_match(&self, key: &str, etag: Etag) -> Result<CondGet> {
        match self.read(key)? {
            None => Ok(CondGet::Missing),
            Some(v) if v.etag == etag => Ok(CondGet::NotModified),
            Some(v) => Ok(CondGet::Modified(v)),
        }
    }

    /// Delete from every reachable owner (current and, mid-reshard,
    /// previous). Succeeds if any owner answered; an owner that was down
    /// during the delete may later resurrect the key through read-repair —
    /// see DESIGN.md §13 for the blind spot.
    fn delete(&self, key: &str) -> Result<bool> {
        let candidates = self.candidates_for(key);
        if candidates.is_empty() {
            return Err(no_nodes());
        }
        let mut existed = false;
        let mut oks = 0usize;
        let mut last_err: Option<StoreError> = None;
        for node in &candidates {
            match node.run(|s| s.delete(key)) {
                Ok(b) => {
                    oks = oks.saturating_add(1);
                    existed = existed || b;
                }
                Err(e) => last_err = Some(e),
            }
        }
        if oks == 0 {
            return Err(last_err.unwrap_or_else(no_nodes));
        }
        if last_err.is_none() {
            self.clear_dirty(key);
        }
        Ok(existed)
    }

    /// Union of keys over every reachable node (current and previous).
    /// Tolerates individual node failures; errors only when no node
    /// answered at all.
    fn keys(&self) -> Result<Vec<String>> {
        let (nodes, prev) = {
            let t = self.topo.read();
            (t.nodes.clone(), t.prev.clone())
        };
        let mut all = nodes;
        if let Some((pnodes, _)) = prev {
            for n in pnodes {
                if !all.iter().any(|a| a.id() == n.id()) {
                    all.push(n);
                }
            }
        }
        let mut set = BTreeSet::new();
        let mut oks = 0usize;
        let mut last_err: Option<StoreError> = None;
        for node in &all {
            match node.run(|s| s.keys()) {
                Ok(ks) => {
                    oks = oks.saturating_add(1);
                    set.extend(ks);
                }
                Err(e) => last_err = Some(e),
            }
        }
        if oks == 0 {
            if let Some(e) = last_err {
                return Err(e);
            }
        }
        Ok(set.into_iter().collect())
    }

    fn clear(&self) -> Result<()> {
        let (nodes, prev) = {
            let t = self.topo.read();
            (t.nodes.clone(), t.prev.clone())
        };
        let mut all = nodes;
        if let Some((pnodes, _)) = prev {
            for n in pnodes {
                if !all.iter().any(|a| a.id() == n.id()) {
                    all.push(n);
                }
            }
        }
        let mut first_err: Option<StoreError> = None;
        for node in &all {
            if let Err(e) = node.run(|s| s.clear()) {
                first_err.get_or_insert(e);
            }
        }
        if first_err.is_none() {
            self.dirty.lock().clear();
            self.migration.lock().clear();
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn sync(&self) -> Result<()> {
        let nodes = self.topo.read().nodes.clone();
        let mut first_err: Option<StoreError> = None;
        for node in &nodes {
            if let Err(e) = node.run(|s| s.sync()) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn stats(&self) -> Result<StoreStats> {
        let keys = self.keys()?;
        let mut bytes = 0u64;
        for k in &keys {
            if let Some(v) = self.get(k)? {
                bytes = bytes.saturating_add(v.len() as u64);
            }
        }
        Ok(StoreStats {
            keys: keys.len() as u64,
            bytes,
        })
    }

    /// All-or-error facade over [`try_get_many`](ClusterClient::try_get_many):
    /// the first per-key error fails the whole batch.
    fn get_many(&self, keys: &[&str]) -> Result<Vec<Option<Bytes>>> {
        self.try_get_many(keys).into_iter().collect()
    }

    /// All-or-error facade over [`try_put_many`](ClusterClient::try_put_many).
    /// Entries before a failed key may already be applied (and replicated);
    /// the error reports the first failure, it does not roll back.
    fn put_many(&self, entries: &[(&str, &[u8])]) -> Result<()> {
        for r in self.try_put_many(entries) {
            r?;
        }
        Ok(())
    }

    fn delete_many(&self, keys: &[&str]) -> Result<Vec<bool>> {
        keys.iter().map(|k| self.delete(k)).collect()
    }

    fn get_many_versioned(&self, keys: &[&str]) -> Result<Vec<Option<Versioned>>> {
        keys.iter().map(|k| self.read(k)).collect()
    }

    fn put_many_versioned(&self, entries: &[(&str, &[u8])]) -> Result<Vec<Etag>> {
        self.try_put_many(entries).into_iter().collect()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use kvapi::mem::MemKv;

    /// A store wrapper whose gets/puts can be failed on demand, for
    /// outage and partial-write tests.
    pub struct FlakyStore {
        pub inner: MemKv,
        pub fail_reads: AtomicBool,
        pub fail_writes: AtomicBool,
        /// Writes that reached the inner store (at-most-once audits).
        pub writes: AtomicU64,
    }

    impl FlakyStore {
        pub fn new(name: &str) -> FlakyStore {
            FlakyStore {
                inner: MemKv::new(name),
                fail_reads: AtomicBool::new(false),
                fail_writes: AtomicBool::new(false),
                writes: AtomicU64::new(0),
            }
        }

        fn check_read(&self) -> Result<()> {
            if self.fail_reads.load(Ordering::Relaxed) {
                Err(StoreError::Closed)
            } else {
                Ok(())
            }
        }

        fn check_write(&self) -> Result<()> {
            if self.fail_writes.load(Ordering::Relaxed) {
                Err(StoreError::Closed)
            } else {
                Ok(())
            }
        }
    }

    impl KeyValue for FlakyStore {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn put(&self, key: &str, value: &[u8]) -> Result<()> {
            self.check_write()?;
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.inner.put(key, value)
        }
        fn put_versioned(&self, key: &str, value: &[u8]) -> Result<Etag> {
            self.check_write()?;
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.inner.put_versioned(key, value)
        }
        fn get(&self, key: &str) -> Result<Option<Bytes>> {
            self.check_read()?;
            self.inner.get(key)
        }
        fn get_versioned(&self, key: &str) -> Result<Option<Versioned>> {
            self.check_read()?;
            self.inner.get_versioned(key)
        }
        fn delete(&self, key: &str) -> Result<bool> {
            self.check_write()?;
            self.inner.delete(key)
        }
        fn keys(&self) -> Result<Vec<String>> {
            self.check_read()?;
            self.inner.keys()
        }
        fn clear(&self) -> Result<()> {
            self.check_write()?;
            self.inner.clear()
        }
    }

    /// A store whose reads stall, for hedging tests.
    pub struct SlowStore {
        pub inner: MemKv,
        pub delay: Duration,
    }

    impl KeyValue for SlowStore {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn put(&self, key: &str, value: &[u8]) -> Result<()> {
            self.inner.put(key, value)
        }
        fn get(&self, key: &str) -> Result<Option<Bytes>> {
            std::thread::sleep(self.delay);
            self.inner.get(key)
        }
        fn get_versioned(&self, key: &str) -> Result<Option<Versioned>> {
            std::thread::sleep(self.delay);
            self.inner.get_versioned(key)
        }
        fn delete(&self, key: &str) -> Result<bool> {
            self.inner.delete(key)
        }
        fn keys(&self) -> Result<Vec<String>> {
            self.inner.keys()
        }
        fn clear(&self) -> Result<()> {
            self.inner.clear()
        }
    }

    /// A [`FlakyStore`] whose reads report one fixed `modified_ms` for
    /// every value — the worst case for `(modified_ms, etag)` conflict
    /// resolution, where every comparison degrades to the etag-hash
    /// tiebreak. Real stores produce this whenever two writes land within
    /// the same millisecond.
    pub struct TiedClockStore {
        pub inner: FlakyStore,
    }

    impl TiedClockStore {
        pub fn new(name: &str) -> TiedClockStore {
            TiedClockStore {
                inner: FlakyStore::new(name),
            }
        }
    }

    impl KeyValue for TiedClockStore {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn put(&self, key: &str, value: &[u8]) -> Result<()> {
            self.inner.put(key, value)
        }
        fn put_versioned(&self, key: &str, value: &[u8]) -> Result<Etag> {
            self.inner.put_versioned(key, value)
        }
        fn get(&self, key: &str) -> Result<Option<Bytes>> {
            self.inner.get(key)
        }
        fn get_versioned(&self, key: &str) -> Result<Option<Versioned>> {
            Ok(self.inner.get_versioned(key)?.map(|v| Versioned {
                modified_ms: 42,
                ..v
            }))
        }
        fn delete(&self, key: &str) -> Result<bool> {
            self.inner.delete(key)
        }
        fn keys(&self) -> Result<Vec<String>> {
            self.inner.keys()
        }
        fn clear(&self) -> Result<()> {
            self.inner.clear()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{FlakyStore, SlowStore, TiedClockStore};
    use super::*;
    use kvapi::mem::MemKv;

    fn mem_cluster(n: usize, policy: ClusterPolicy) -> (ClusterClient, Vec<Arc<MemKv>>) {
        let mut stores: Vec<(String, Arc<dyn KeyValue>)> = Vec::new();
        let mut backing = Vec::new();
        for i in 0..n {
            let m = Arc::new(MemKv::new(format!("node-{i}")));
            backing.push(m.clone());
            stores.push((format!("node-{i}"), m as Arc<dyn KeyValue>));
        }
        (ClusterClient::from_stores("c", stores, policy), backing)
    }

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("node-{i}")).collect()
    }

    #[test]
    fn basic_ops_roundtrip_over_three_nodes() {
        let (c, _) = mem_cluster(3, ClusterPolicy::test_profile());
        assert_eq!(c.get("k").unwrap(), None);
        c.put("k", b"v1").unwrap();
        assert_eq!(c.get("k").unwrap().as_deref(), Some(b"v1".as_slice()));
        assert!(c.contains("k").unwrap());
        c.put("k", b"v2").unwrap();
        assert_eq!(c.get("k").unwrap().as_deref(), Some(b"v2".as_slice()));
        assert!(c.delete("k").unwrap());
        assert!(!c.delete("k").unwrap());
        assert_eq!(c.get("k").unwrap(), None);
    }

    #[test]
    fn conformance_contract_passes_on_a_three_node_cluster() {
        let (c, _) = mem_cluster(3, ClusterPolicy::test_profile());
        kvapi::contract::run_all(&c);
    }

    #[test]
    fn values_are_replicated_to_replica_count_owners() {
        let policy = ClusterPolicy::test_profile();
        let replicas = policy.replicas;
        let (c, backing) = mem_cluster(4, policy);
        for i in 0..40 {
            c.put(&format!("key-{i}"), b"data").unwrap();
        }
        for i in 0..40 {
            let key = format!("key-{i}");
            let copies = backing.iter().filter(|m| m.contains(&key).unwrap()).count();
            assert_eq!(copies, replicas, "key {key} on {copies} nodes");
        }
    }

    #[test]
    fn reads_fail_over_when_the_primary_is_down() {
        let policy = ClusterPolicy::test_profile();
        let mut stores: Vec<(String, Arc<dyn KeyValue>)> = Vec::new();
        let mut flaky = Vec::new();
        for i in 0..3 {
            let f = Arc::new(FlakyStore::new(&format!("node-{i}")));
            flaky.push(f.clone());
            stores.push((format!("node-{i}"), f as Arc<dyn KeyValue>));
        }
        let vnodes = policy.vnodes;
        let c = ClusterClient::from_stores("c", stores, policy);
        c.put("k", b"v").unwrap();
        let ring = HashRing::new(&ids(3), vnodes);
        let primary = ring.primary("k").unwrap();
        flaky[primary].fail_reads.store(true, Ordering::Relaxed);
        assert_eq!(c.get("k").unwrap().as_deref(), Some(b"v".as_slice()));
        assert!(c.failovers() >= 1, "failover counted");
    }

    #[test]
    fn hedged_read_beats_a_stalled_primary() {
        let mut policy = ClusterPolicy::test_profile();
        policy.hedge_delay = Some(Duration::from_millis(15));
        let vnodes = policy.vnodes;
        // Find a key whose primary we can stall.
        let ring = HashRing::new(&ids(3), vnodes);
        let key = (0..200)
            .map(|i| format!("key-{i}"))
            .find(|k| ring.primary(k) == Some(0))
            .unwrap();
        let slow = Arc::new(SlowStore {
            inner: MemKv::new("node-0"),
            delay: Duration::from_millis(250),
        });
        slow.inner.put(&key, b"v").unwrap();
        let mut stores: Vec<(String, Arc<dyn KeyValue>)> =
            vec![("node-0".to_string(), slow as Arc<dyn KeyValue>)];
        for i in 1..3 {
            let m = Arc::new(MemKv::new(format!("node-{i}")));
            m.put(&key, b"v").unwrap();
            stores.push((format!("node-{i}"), m as Arc<dyn KeyValue>));
        }
        let c = ClusterClient::from_stores("c", stores, policy);
        let started = std::time::Instant::now();
        assert_eq!(c.get(&key).unwrap().as_deref(), Some(b"v".as_slice()));
        assert!(
            started.elapsed() < Duration::from_millis(200),
            "hedge cut the stall short: {:?}",
            started.elapsed()
        );
        assert!(c.hedges_fired() >= 1, "hedge fired");
        assert!(c.hedge_wins() >= 1, "hedge won");
    }

    #[test]
    fn partial_write_marks_dirty_and_read_repairs_on_heal() {
        let policy = ClusterPolicy::test_profile();
        let vnodes = policy.vnodes;
        let mut stores: Vec<(String, Arc<dyn KeyValue>)> = Vec::new();
        let mut flaky = Vec::new();
        for i in 0..3 {
            let f = Arc::new(FlakyStore::new(&format!("node-{i}")));
            flaky.push(f.clone());
            stores.push((format!("node-{i}"), f as Arc<dyn KeyValue>));
        }
        let c = ClusterClient::from_stores("c", stores, policy);
        let ring = HashRing::new(&ids(3), vnodes);
        let key = (0..200)
            .map(|i| format!("key-{i}"))
            .find(|k| ring.owners(k, 2).first() == Some(&0))
            .unwrap();
        let replica = ring.owners(&key, 2)[1];
        // The replica is down during the write: partial success.
        flaky[replica].fail_writes.store(true, Ordering::Relaxed);
        let etag = c.put_versioned(&key, b"fresh").unwrap();
        assert!(c.is_dirty(&key), "partial write marked dirty");
        assert!(!flaky[replica].inner.contains(&key).unwrap());
        // Heal, then read: repair rewrites the replica and converges.
        flaky[replica].fail_writes.store(false, Ordering::Relaxed);
        let got = c.get_versioned(&key).unwrap().unwrap();
        assert_eq!(got.etag, etag);
        assert!(!c.is_dirty(&key), "repair cleared the dirty mark");
        assert_eq!(
            flaky[replica]
                .inner
                .get_versioned(&key)
                .unwrap()
                .unwrap()
                .etag,
            etag,
            "replica converged to the winning etag"
        );
        assert!(c.read_repairs() >= 1);
    }

    #[test]
    fn repair_prefers_the_acknowledged_write_over_an_etag_tiebreak() {
        // Regression: with every copy tied on modified_ms (two writes in
        // the same millisecond), (modified_ms, etag) conflict resolution
        // degrades to an etag-hash coin flip, and repair could resurrect
        // the stale copy over the write the cluster acknowledged. The
        // dirty mark's pinned etag must decide instead.
        let policy = ClusterPolicy::test_profile();
        let vnodes = policy.vnodes;
        let mut stores: Vec<(String, Arc<dyn KeyValue>)> = Vec::new();
        let mut tied = Vec::new();
        for i in 0..3 {
            let t = Arc::new(TiedClockStore::new(&format!("node-{i}")));
            tied.push(t.clone());
            stores.push((format!("node-{i}"), t as Arc<dyn KeyValue>));
        }
        let c = ClusterClient::from_stores("c", stores, policy);
        let ring = HashRing::new(&ids(3), vnodes);
        let key = (0..200)
            .map(|i| format!("key-{i}"))
            .find(|k| ring.owners(k, 2).first() == Some(&0))
            .unwrap();
        let replica = ring.owners(&key, 2)[1];
        // Order the two values so the STALE one wins an etag-hash tiebreak.
        let (stale, fresh) = if Etag::of_bytes(b"tie-a").0 > Etag::of_bytes(b"tie-b").0 {
            (&b"tie-a"[..], &b"tie-b"[..])
        } else {
            (&b"tie-b"[..], &b"tie-a"[..])
        };
        c.put(&key, stale).unwrap();
        // The replica misses the fresh write: it still holds the stale
        // value, whose etag hash beats the fresh one.
        tied[replica]
            .inner
            .fail_writes
            .store(true, Ordering::Relaxed);
        let acked = c.put_versioned(&key, fresh).unwrap();
        assert!(c.is_dirty(&key));
        tied[replica]
            .inner
            .fail_writes
            .store(false, Ordering::Relaxed);
        // Read-repair must restore the acknowledged write everywhere, not
        // the tiebreak winner.
        assert_eq!(c.get(&key).unwrap().as_deref(), Some(fresh));
        assert!(!c.is_dirty(&key));
        for owner in ring.owners(&key, 2) {
            assert_eq!(
                tied[owner]
                    .inner
                    .inner
                    .get_versioned(&key)
                    .unwrap()
                    .unwrap()
                    .etag,
                acked,
                "node-{owner} converged to the acknowledged write"
            );
        }
    }

    #[test]
    fn conditional_get_sees_cluster_etags() {
        let (c, _) = mem_cluster(3, ClusterPolicy::test_profile());
        let etag = c.put_versioned("k", b"v").unwrap();
        assert!(matches!(
            c.get_if_none_match("k", etag).unwrap(),
            CondGet::NotModified
        ));
        c.put("k", b"v2").unwrap();
        assert!(matches!(
            c.get_if_none_match("k", etag).unwrap(),
            CondGet::Modified(_)
        ));
        assert!(matches!(
            c.get_if_none_match("missing", etag).unwrap(),
            CondGet::Missing
        ));
    }

    #[test]
    fn batch_ops_span_shards() {
        let (c, _) = mem_cluster(3, ClusterPolicy::test_profile());
        let keys: Vec<String> = (0..20).map(|i| format!("key-{i}")).collect();
        let vals: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 4]).collect();
        let entries: Vec<(&str, &[u8])> = keys
            .iter()
            .map(|k| k.as_str())
            .zip(vals.iter().map(|v| v.as_slice()))
            .collect();
        c.put_many(&entries).unwrap();
        let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
        let got = c.get_many(&refs).unwrap();
        assert_eq!(got.len(), 20);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v.as_deref(), Some(vals[i].as_slice()));
        }
        let deleted = c.delete_many(&refs).unwrap();
        assert!(deleted.iter().all(|&b| b));
        assert!(c.get_many(&refs).unwrap().iter().all(|v| v.is_none()));
    }

    #[test]
    fn try_get_many_gives_each_key_its_own_verdict() {
        let policy = ClusterPolicy::test_profile();
        let mut stores: Vec<(String, Arc<dyn KeyValue>)> = Vec::new();
        let mut flaky = Vec::new();
        for i in 0..3 {
            let f = Arc::new(FlakyStore::new(&format!("node-{i}")));
            flaky.push(f.clone());
            stores.push((format!("node-{i}"), f as Arc<dyn KeyValue>));
        }
        let c = ClusterClient::from_stores("c", stores, policy);
        for i in 0..12 {
            c.put(&format!("key-{i}"), b"v").unwrap();
        }
        // Kill every node: each key must report its own error rather than
        // the batch panicking or short-circuiting silently.
        for f in &flaky {
            f.fail_reads.store(true, Ordering::Relaxed);
        }
        let keys: Vec<String> = (0..12).map(|i| format!("key-{i}")).collect();
        let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
        let per_key = c.try_get_many(&refs);
        assert_eq!(per_key.len(), 12);
        assert!(per_key.iter().all(|r| r.is_err()));
        assert!(c.get_many(&refs).is_err(), "facade surfaces the error");
        // Heal one node and let its tripped breaker cool down: its shard's
        // keys recover, the rest still error.
        flaky[0].fail_reads.store(false, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(150));
        let per_key = c.try_get_many(&refs);
        assert!(per_key.iter().any(|r| r.is_ok()));
    }

    #[test]
    fn try_get_many_does_not_trust_a_primary_miss() {
        // Regression: another client's partial write can leave a key on a
        // replica only, and this client's dirty map knows nothing of it.
        // The grouped fast path asks just the primary, so its miss must
        // fall back to the full owner round instead of settling as an
        // authoritative None.
        let policy = ClusterPolicy::test_profile();
        let vnodes = policy.vnodes;
        let replicas = policy.replicas;
        let (c, backing) = mem_cluster(3, policy);
        let ring = HashRing::new(&ids(3), vnodes);
        let key = (0..200)
            .map(|i| format!("key-{i}"))
            .find(|k| ring.owners(k, replicas).len() >= 2)
            .unwrap();
        let replica = ring.owners(&key, replicas)[1];
        backing[replica].put(&key, b"replica-only").unwrap();
        let got = c.try_get_many(&[&key]);
        assert_eq!(
            got[0].as_ref().unwrap().as_deref(),
            Some(b"replica-only".as_slice()),
            "primary miss must not hide the replica's copy"
        );
        assert_eq!(
            c.get_many(&[&key]).unwrap()[0].as_deref(),
            Some(b"replica-only".as_slice())
        );
    }

    #[test]
    fn publish_exports_cluster_metrics() {
        let (c, _) = mem_cluster(3, ClusterPolicy::test_profile());
        c.put("k", b"v").unwrap();
        let _ = c.get("k").unwrap();
        let reg = obs::Registry::new();
        c.publish(&reg);
        let text = reg.render_prometheus();
        assert!(text.contains("cluster_ring_version{cluster=\"c\"} 1"));
        assert!(text.contains("cluster_node_requests_total{cluster=\"c\",node=\"node-0\"}"));
        assert!(text.contains("cluster_hedges_fired_total{cluster=\"c\"} 0"));
    }

    #[test]
    fn connect_builds_nodes_through_the_connector() {
        let connector = |ep: &str| -> Result<Arc<dyn KeyValue>> {
            Ok(Arc::new(MemKv::new(ep)) as Arc<dyn KeyValue>)
        };
        let eps: Vec<String> = (0..3).map(|i| format!("node-{i}")).collect();
        let c =
            ClusterClient::connect("c", &eps, &connector, ClusterPolicy::test_profile()).unwrap();
        c.put("k", b"v").unwrap();
        assert_eq!(c.get("k").unwrap().as_deref(), Some(b"v".as_slice()));
        assert_eq!(c.node_ids(), eps);
    }
}
