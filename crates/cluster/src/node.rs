//! One cluster member: a store client plus its health state.

use kvapi::{KeyValue, Result, StoreError};
use resilience::{BreakerPolicy, CircuitBreaker, Permit};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a finished node attempt reports back to the breaker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The endpoint answered (even with a logical rejection).
    Success,
    /// A transport-level failure: counts against the endpoint's health.
    Failure,
    /// The attempt was cancelled without a verdict — a hedge loser. Frees
    /// a half-open probe slot but never re-opens the breaker.
    Abandoned,
}

/// A cluster node: endpoint id, its [`KeyValue`] client, a per-node
/// circuit breaker, and request counters for the per-shard metrics.
pub struct Node {
    id: String,
    store: Arc<dyn KeyValue>,
    breaker: CircuitBreaker,
    requests: AtomicU64,
    failures: AtomicU64,
    sheds: AtomicU64,
}

impl Node {
    pub fn new(id: impl Into<String>, store: Arc<dyn KeyValue>, policy: BreakerPolicy) -> Node {
        Node {
            id: id.into(),
            store,
            breaker: CircuitBreaker::new(policy),
            requests: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
        }
    }

    pub fn id(&self) -> &str {
        &self.id
    }

    pub fn store(&self) -> &Arc<dyn KeyValue> {
        &self.store
    }

    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Requests admitted to this node since creation.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Admitted requests that failed at the transport level.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Requests shed by this node's open breaker.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Gate an attempt on the breaker. The returned permit must be
    /// reported back through [`finish`](Node::finish).
    pub fn begin(&self) -> Result<Permit> {
        match self.breaker.admit() {
            Ok(p) => {
                self.requests.fetch_add(1, Ordering::Relaxed);
                Ok(p)
            }
            Err(e) => {
                self.sheds.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Report an attempt's outcome.
    pub fn finish(&self, permit: Permit, verdict: Verdict) {
        match verdict {
            Verdict::Success => self.breaker.on_success(permit),
            Verdict::Failure => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                self.breaker.on_failure(permit);
            }
            Verdict::Abandoned => self.breaker.on_abandon(permit),
        }
    }

    /// Run one breaker-gated operation against this node's store, with the
    /// standard verdict mapping: transient errors are failures, everything
    /// else (including logical rejections) proves the endpoint reachable.
    pub fn run<T>(&self, f: impl FnOnce(&dyn KeyValue) -> Result<T>) -> Result<T> {
        let permit = self.begin()?;
        match f(self.store.as_ref()) {
            Ok(v) => {
                self.finish(permit, Verdict::Success);
                Ok(v)
            }
            Err(e) => {
                self.finish(
                    permit,
                    if e.is_transient() {
                        Verdict::Failure
                    } else {
                        Verdict::Success
                    },
                );
                Err(e)
            }
        }
    }

    /// True when the breaker would currently shed a call — used to skip a
    /// known-bad node when picking a hedge target.
    pub fn is_shedding(&self) -> bool {
        self.breaker.state() == resilience::BreakerState::Open
    }
}

/// Map an error to the verdict [`Node::run`] would have reported.
pub fn verdict_for(res: &Result<impl Sized>) -> Verdict {
    match res {
        Ok(_) => Verdict::Success,
        Err(e) if e.is_transient() => Verdict::Failure,
        Err(_) => Verdict::Success,
    }
}

/// The shed error every empty-candidate path returns.
pub fn no_nodes() -> StoreError {
    StoreError::Unavailable("cluster has no reachable owner for this key".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvapi::mem::MemKv;
    use resilience::BreakerState;
    use std::time::Duration;

    fn node() -> Node {
        Node::new(
            "n0",
            Arc::new(MemKv::new("n0")),
            BreakerPolicy {
                failure_threshold: 2,
                cooldown: Duration::from_millis(20),
            },
        )
    }

    #[test]
    fn run_counts_and_trips_on_transient_failures() {
        let n = node();
        assert!(n.run(|s| s.put("k", b"v")).is_ok());
        for _ in 0..2 {
            let _ = n.run(|_| -> Result<()> { Err(StoreError::Timeout) });
        }
        assert_eq!(n.breaker().state(), BreakerState::Open);
        assert!(n.is_shedding());
        assert_eq!(n.requests(), 3);
        assert_eq!(n.failures(), 2);
        // Shed without touching the store.
        let err = n.run(|s| s.get("k")).expect_err("shed");
        assert!(matches!(err, StoreError::Unavailable(_)));
        assert_eq!(n.sheds(), 1);
    }

    #[test]
    fn rejections_do_not_trip_the_node() {
        let n = node();
        for _ in 0..5 {
            let _ = n.run(|_| -> Result<()> { Err(StoreError::Rejected("no".into())) });
        }
        assert_eq!(n.breaker().state(), BreakerState::Closed);
        assert_eq!(n.failures(), 0);
    }
}
