//! A small reusable worker pool for hedged read legs.
//!
//! With [`ClusterPolicy::hedge_delay`](crate::ClusterPolicy::hedge_delay)
//! set, *every* read's first leg runs off-thread so the round can arm the
//! hedge timer — which put an OS thread spawn on the hot read path and
//! left every abandoned loser holding a whole thread until its store call
//! returned. The pool keeps a few workers parked between rounds instead:
//! a leg reuses an idle worker when one exists and grows the pool up to
//! [`MAX_WORKERS`] otherwise. When every worker is busy (possibly wedged
//! behind a slow abandoned call) a new leg falls back to a one-shot
//! thread rather than queueing behind them, so a stuck loser can never
//! starve a live round. Idle workers expire after [`IDLE_TTL`], so an
//! idle or dropped cluster does not pin threads forever.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Pooled workers kept at most; bursts beyond this overflow to one-shot
/// threads instead of queueing behind possibly-wedged workers.
pub(crate) const MAX_WORKERS: usize = 8;

/// How long an idle worker parks before exiting.
const IDLE_TTL: Duration = Duration::from_secs(10);

pub(crate) struct LegPool {
    shared: Arc<Shared>,
}

struct Shared {
    state: Mutex<State>,
    ready: Condvar,
    /// Pooled worker threads currently alive (one-shot overflow threads
    /// are not counted — they never park).
    workers: AtomicUsize,
}

struct State {
    queue: VecDeque<Job>,
    /// Workers currently parked in `ready.wait_for`. Incremented and
    /// decremented under the `state` lock, so a submitter that observes
    /// `idle > 0` knows that worker is inside the wait and a notify will
    /// reach it.
    idle: usize,
}

impl LegPool {
    pub(crate) fn new() -> LegPool {
        LegPool {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    idle: 0,
                }),
                ready: Condvar::new(),
                workers: AtomicUsize::new(0),
            }),
        }
    }

    /// Pooled workers currently alive.
    #[cfg(test)]
    pub(crate) fn workers(&self) -> usize {
        self.shared.workers.load(Ordering::Relaxed)
    }

    /// Run `job` on an idle worker, a newly grown worker, or — when the
    /// pool is saturated — a one-shot thread. Never blocks on a busy
    /// worker.
    pub(crate) fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let job: Job = Box::new(job);
        let mut st = self.shared.state.lock();
        if st.idle > 0 {
            st.queue.push_back(job);
            drop(st);
            self.shared.ready.notify_one();
            return;
        }
        if self.shared.workers.load(Ordering::Relaxed) < MAX_WORKERS {
            self.shared.workers.fetch_add(1, Ordering::Relaxed);
            st.queue.push_back(job);
            drop(st);
            let shared = self.shared.clone();
            std::thread::spawn(move || worker_loop(&shared));
        } else {
            drop(st);
            std::thread::spawn(job);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if let Some(j) = st.queue.pop_front() {
                    break Some(j);
                }
                st.idle = st.idle.saturating_add(1);
                let deadline = std::time::Instant::now() + IDLE_TTL;
                let timed_out = shared.ready.wait_until(&mut st, deadline).timed_out();
                st.idle = st.idle.saturating_sub(1);
                if timed_out && st.queue.is_empty() {
                    break None;
                }
            }
        };
        match job {
            Some(j) => j(),
            None => {
                shared.workers.fetch_sub(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn sequential_jobs_reuse_a_parked_worker() {
        let pool = LegPool::new();
        let (tx, rx) = mpsc::channel();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..50 {
            let tx = tx.clone();
            pool.submit(move || {
                let _ = tx.send(format!("{:?}", std::thread::current().id()));
            });
            seen.insert(rx.recv_timeout(Duration::from_secs(5)).unwrap());
            // Give the worker time to park again so the next submit finds
            // it idle instead of growing the pool.
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            seen.len() <= 2,
            "50 sequential legs ran on {} distinct threads",
            seen.len()
        );
        assert!(pool.workers() <= 2, "pool grew to {}", pool.workers());
    }

    #[test]
    fn a_saturated_pool_still_runs_new_jobs() {
        // Wedge every pooled worker behind a gate (the abandoned-slow-leg
        // scenario), then prove a fresh job still runs promptly.
        let pool = LegPool::new();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let started = Arc::new(AtomicUsize::new(0));
        for _ in 0..MAX_WORKERS {
            let gate = gate.clone();
            let started = started.clone();
            pool.submit(move || {
                started.fetch_add(1, Ordering::SeqCst);
                let (lock, cv) = &*gate;
                let mut open = lock.lock();
                while !*open {
                    cv.wait(&mut open);
                }
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while started.load(Ordering::SeqCst) < MAX_WORKERS {
            assert!(std::time::Instant::now() < deadline, "workers never wedged");
            std::thread::yield_now();
        }
        assert_eq!(pool.workers(), MAX_WORKERS);
        let (tx, rx) = mpsc::channel();
        pool.submit(move || {
            let _ = tx.send(42u8);
        });
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            42,
            "job starved behind wedged workers"
        );
        let (lock, cv) = &*gate;
        *lock.lock() = true;
        cv.notify_all();
    }
}
