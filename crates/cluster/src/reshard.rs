//! Live resharding: change the ring, keep serving, migrate in the
//! background.
//!
//! [`ClusterClient::apply_ring_change`] installs a new node set and ring
//! but keeps the previous topology as a *read union*: every key stays
//! readable from wherever it currently lives while a background sweep
//! ([`ClusterClient::migrate_step`] / [`ClusterClient::run_migration`])
//! moves data to its new owners. The sweep is **at-most-once in effects
//! per key**: a copy happens only when the destination is missing the
//! winning etag, and a source delete only after every copy landed — so a
//! sweep that crashes or is re-run never duplicates work, it only skips
//! what is already done. One reshard at a time: while a migration is
//! pending, a further ring change is rejected with `Unavailable` rather
//! than silently replacing the union view — dropping the old topology
//! mid-sweep would strand every unmigrated key whose only copies live on
//! nodes exclusive to it.

use crate::node::no_nodes;
use crate::ring::HashRing;
use crate::{ClusterClient, Node};
use kvapi::{Connector, Result, StoreError, Versioned};
use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Outcome of one [`ClusterClient::migrate_step`] batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Keys examined this step.
    pub examined: usize,
    /// Keys that needed (and received) a copy to a new owner.
    pub moved: usize,
    /// Keys put back on the queue after a failure.
    pub requeued: usize,
    /// Keys still pending after this step.
    pub remaining: usize,
}

impl ClusterClient {
    /// Install a new endpoint set. Nodes whose id survives keep their
    /// `Node` instance — and with it their circuit-breaker history; new
    /// endpoints are materialised through `connector`. The old topology is
    /// retained as a read union until [`run_migration`](Self::run_migration)
    /// (or enough [`migrate_step`](Self::migrate_step) calls) drains the
    /// migration queue. Returns the new ring version.
    ///
    /// Fails with [`StoreError::Unavailable`] while a previous reshard is
    /// still migrating: replacing the union view mid-sweep would drop the
    /// old topology from the read path and forget its unmigrated keys,
    /// silently losing any key whose only copies live on nodes exclusive
    /// to it. Drain the current migration first.
    pub fn apply_ring_change(
        &self,
        endpoints: &[String],
        connector: &dyn Connector,
    ) -> Result<u64> {
        let reshard_busy = || {
            StoreError::Unavailable(
                "a reshard is already in progress: drain the current migration \
                 (run_migration) before applying another ring change"
                    .into(),
            )
        };
        let current = {
            let t = self.topo.read();
            if t.prev.is_some() {
                return Err(reshard_busy());
            }
            t.nodes.clone()
        };
        // Connect new endpoints with no lock held (connect blocks).
        let mut new_nodes: Vec<Arc<Node>> = Vec::with_capacity(endpoints.len());
        for ep in endpoints {
            match current.iter().find(|n| n.id() == ep.as_str()) {
                Some(n) => new_nodes.push(n.clone()),
                None => new_nodes.push(Arc::new(Node::new(
                    ep.clone(),
                    connector.connect(ep)?,
                    self.policy.resilience.breaker.clone(),
                ))),
            }
        }
        let ids: Vec<String> = new_nodes.iter().map(|n| n.id().to_string()).collect();
        let ring = HashRing::new(&ids, self.policy.vnodes);
        let (version, prev_nodes) = {
            let mut t = self.topo.write();
            // Re-check under the write lock: a racing ring change may have
            // slipped in since the unlocked connect phase above.
            if t.prev.is_some() {
                return Err(reshard_busy());
            }
            let old_nodes = std::mem::take(&mut t.nodes);
            let old_ring = t.ring.clone();
            t.nodes = new_nodes;
            t.ring = ring;
            t.prev = Some((old_nodes.clone(), old_ring));
            t.version = t.version.saturating_add(1);
            (t.version, old_nodes)
        };
        obs::ctx::report_event("ring_version", format!("v={version}"));
        // Seed the migration queue with every key the old topology holds.
        // An unreachable old node's keys cannot be enumerated (or moved);
        // they stay where they are and remain readable through the union
        // until a later sweep finds them.
        let mut keys = BTreeSet::new();
        let mut oks = 0usize;
        let mut last_err: Option<StoreError> = None;
        for node in &prev_nodes {
            match node.run(|s| s.keys()) {
                Ok(ks) => {
                    oks = oks.saturating_add(1);
                    keys.extend(ks);
                }
                Err(e) => last_err = Some(e),
            }
        }
        if oks == 0 && !prev_nodes.is_empty() {
            if let Some(e) = last_err {
                return Err(e);
            }
        }
        let mut q = self.migration.lock();
        q.clear();
        q.extend(keys);
        Ok(version)
    }

    /// Is a reshard still in progress (union view active)?
    pub fn reshard_active(&self) -> bool {
        self.topo.read().prev.is_some()
    }

    /// Keys the active migration sweep has not yet examined.
    pub fn migration_pending(&self) -> usize {
        self.migration.lock().len()
    }

    /// Migrate up to `batch` keys. Keys that fail (an owner unreachable
    /// mid-copy) are requeued and retried by a later step; keys already in
    /// place are skipped without touching any store. When the queue drains
    /// the previous topology is dropped and the union view ends.
    pub fn migrate_step(&self, batch: usize) -> Result<StepReport> {
        let mut report = StepReport::default();
        for _ in 0..batch.max(1) {
            let Some(key) = self.migration.lock().pop_front() else {
                break;
            };
            report.examined = report.examined.saturating_add(1);
            match self.migrate_key(&key) {
                Ok(true) => report.moved = report.moved.saturating_add(1),
                Ok(false) => {}
                Err(_) => {
                    report.requeued = report.requeued.saturating_add(1);
                    self.migration.lock().push_back(key);
                }
            }
        }
        report.remaining = self.migration.lock().len();
        if report.remaining == 0 {
            let retired = {
                let mut t = self.topo.write();
                let had_prev = t.prev.is_some();
                t.prev = None;
                had_prev.then_some(t.version)
            };
            if let Some(version) = retired {
                obs::ctx::report_event("ring_version", format!("v={version} migration=complete"));
            }
        }
        Ok(report)
    }

    /// Run [`migrate_step`](Self::migrate_step) until the queue drains.
    /// Returns total keys moved. Errors out (leaving the union view and
    /// the queue intact for a retry) if a full pass over the queue makes
    /// no progress — e.g. a destination owner is down.
    pub fn run_migration(&self) -> Result<u64> {
        let mut moved: u64 = 0;
        loop {
            let pending = self.migration_pending();
            if pending == 0 {
                // Drain-detection ran inside migrate_step; make sure the
                // union view is dropped even if the queue started empty.
                if self.reshard_active() {
                    let _ = self.migrate_step(1)?;
                }
                return Ok(moved);
            }
            let step = self.migrate_step(pending)?;
            moved = moved.saturating_add(step.moved as u64);
            if step.requeued == step.examined && step.examined > 0 {
                return Err(StoreError::Unavailable(format!(
                    "migration stalled: {} keys cannot reach their new owners",
                    step.remaining
                )));
            }
        }
    }

    /// Move one key to its new owners if (and only if) ownership changed.
    /// Effects are guarded by etag: a destination already holding the
    /// winning version is skipped, so replays are at-most-once.
    fn migrate_key(&self, key: &str) -> Result<bool> {
        let (nodes, ring, prev) = {
            let t = self.topo.read();
            (t.nodes.clone(), t.ring.clone(), t.prev.clone())
        };
        let Some((pnodes, pring)) = prev else {
            return Ok(false);
        };
        let new_owners: Vec<Arc<Node>> = ring
            .owners(key, self.policy.replicas)
            .into_iter()
            .filter_map(|i| nodes.get(i).cloned())
            .collect();
        let old_owners: Vec<Arc<Node>> = pring
            .owners(key, self.policy.replicas)
            .into_iter()
            .filter_map(|i| pnodes.get(i).cloned())
            .collect();
        let new_ids: BTreeSet<&str> = new_owners.iter().map(|n| n.id()).collect();
        let old_ids: BTreeSet<&str> = old_owners.iter().map(|n| n.id()).collect();
        if new_ids == old_ids {
            return Ok(false);
        }
        // Read every involved owner once; the winner is the newest copy.
        let mut readers: Vec<Arc<Node>> = old_owners.clone();
        for n in &new_owners {
            if !readers.iter().any(|r| r.id() == n.id()) {
                readers.push(n.clone());
            }
        }
        let mut votes: Vec<(Arc<Node>, Result<Option<Versioned>>)> = Vec::new();
        for node in &readers {
            let res = node.run(|s| s.get_versioned(key));
            votes.push((node.clone(), res));
        }
        let present: Vec<Versioned> = votes
            .iter()
            .filter_map(|(_, r)| r.as_ref().ok().cloned().flatten())
            .collect();
        if present.is_empty() {
            // No reachable copy: deleted concurrently, or every holder is
            // down. Nothing to move; surface an error only if nothing at
            // all answered so the key stays pending.
            return if votes.iter().any(|(_, r)| r.is_ok()) {
                Ok(false)
            } else {
                Err(no_nodes())
            };
        }
        // Winner selection, most-authoritative first. `(modified_ms, etag)`
        // ties on the millisecond and breaks the tie by etag hash, so it
        // alone could pick a de-owned stale copy over a write the cluster
        // acknowledged moments ago.
        //
        // 1. A dirty key's pinned etag — the last acknowledged write. If
        //    its copy is unreachable, keep the key pending rather than
        //    migrate an older copy over it.
        // 2. Consensus among readable current owners: writes route to
        //    them, so when every reachable holder among them agrees, an
        //    old-topology copy must not override that agreement.
        // 3. Newest copy by `(modified_ms, etag)` across every owner.
        let winner = if let Some(pin) = self.dirty_pin(key) {
            match present.iter().find(|v| v.etag == pin).cloned() {
                Some(v) => v,
                None => return Err(no_nodes()),
            }
        } else {
            let held: Vec<&Versioned> = votes
                .iter()
                .filter(|(n, _)| new_ids.contains(n.id()))
                .filter_map(|(_, r)| r.as_ref().ok().and_then(|v| v.as_ref()))
                .collect();
            let consensus = held
                .first()
                .filter(|f| held.iter().all(|v| v.etag == f.etag))
                .map(|v| (*v).clone());
            match consensus.or_else(|| {
                present
                    .iter()
                    .max_by_key(|v| (v.modified_ms, v.etag.0))
                    .cloned()
            }) {
                Some(v) => v,
                None => return Ok(false),
            }
        };
        let mut copied = false;
        for node in &new_owners {
            let have = votes
                .iter()
                .find(|(n, _)| n.id() == node.id())
                .map(|(_, r)| r.as_ref().ok().cloned());
            match have {
                Some(Some(Some(v))) if v.etag == winner.etag => {}
                Some(Some(_)) => {
                    node.run(|s| s.put(key, &winner.data))?;
                    copied = true;
                }
                // Destination unreadable: cannot prove the guard, keep the
                // key pending rather than risk a duplicate effect.
                _ => return Err(no_nodes()),
            }
        }
        // Copies all landed: retire the old copies that lost ownership.
        // Re-deleting on a replayed sweep is a no-op.
        for node in &old_owners {
            if !new_ids.contains(node.id()) {
                node.run(|s| s.delete(key)).map(|_| ())?;
            }
        }
        if copied {
            self.metrics.migrated_keys.fetch_add(1, Ordering::Relaxed);
        }
        Ok(copied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{FlakyStore, TiedClockStore};
    use crate::{ClusterClient, ClusterPolicy};
    use kvapi::mem::MemKv;
    use kvapi::KeyValue;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    fn eps(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("node-{i}")).collect()
    }

    /// A connector backed by a shared map, so tests can inspect the
    /// stores it hands out.
    struct MapConnector {
        stores: Mutex<HashMap<String, Arc<MemKv>>>,
    }

    impl MapConnector {
        fn new() -> MapConnector {
            MapConnector {
                stores: Mutex::new(HashMap::new()),
            }
        }

        fn store(&self, ep: &str) -> Arc<MemKv> {
            self.stores
                .lock()
                .entry(ep.to_string())
                .or_insert_with(|| Arc::new(MemKv::new(ep)))
                .clone()
        }
    }

    impl kvapi::Connector for MapConnector {
        fn connect(&self, endpoint: &str) -> kvapi::Result<Arc<dyn KeyValue>> {
            Ok(self.store(endpoint) as Arc<dyn KeyValue>)
        }
    }

    #[test]
    fn adding_a_node_keeps_keys_readable_and_migrates_them() {
        let connector = MapConnector::new();
        let c = ClusterClient::connect("c", &eps(3), &connector, ClusterPolicy::test_profile())
            .unwrap();
        for i in 0..60 {
            c.put(&format!("key-{i}"), format!("val-{i}").as_bytes())
                .unwrap();
        }
        let scope = obs::ctx::activate(obs::ctx::TraceContext::new_root());
        let v = c.apply_ring_change(&eps(4), &connector).unwrap();
        assert_eq!(v, 2);
        assert_eq!(c.ring_version(), 2);
        assert!(c.reshard_active());
        assert!(c.migration_pending() > 0);
        // Mid-sweep: the union view keeps every key readable even though
        // some now route primarily to the (still empty) new node.
        for i in 0..60 {
            assert_eq!(
                c.get(&format!("key-{i}")).unwrap().as_deref(),
                Some(format!("val-{i}").as_bytes())
            );
        }
        let moved = c.run_migration().unwrap();
        assert!(moved > 0, "some keys moved to the new node");
        assert!(!c.reshard_active(), "union view retired");
        assert_eq!(c.migrated_keys(), moved);
        let data = scope.finish();
        assert!(
            data.events
                .iter()
                .any(|(_, n, d)| n == "ring_version" && d.contains("v=2")),
            "{:?}",
            data.events
        );
        // Every key is still readable and exactly `replicas` copies exist.
        let replicas = c.policy().replicas;
        for i in 0..60 {
            let key = format!("key-{i}");
            assert_eq!(
                c.get(&key).unwrap().as_deref(),
                Some(format!("val-{i}").as_bytes())
            );
            let copies = (0..4)
                .filter(|&n| {
                    connector
                        .store(&format!("node-{n}"))
                        .contains(&key)
                        .unwrap()
                })
                .count();
            assert_eq!(copies, replicas, "key {key} on {copies} nodes");
        }
        assert!(
            !connector.store("node-3").keys().unwrap().is_empty(),
            "new node received data"
        );
    }

    #[test]
    fn get_many_mid_reshard_reads_through_the_union() {
        // Regression: the batch fast path grouped keys by the NEW ring's
        // primary and took its miss as authoritative — mid-reshard, keys
        // that still live only on previous-topology owners came back None
        // from get_many while get() found them through the read union.
        let connector = MapConnector::new();
        let policy = ClusterPolicy::test_profile();
        let vnodes = policy.vnodes;
        let replicas = policy.replicas;
        let c = ClusterClient::connect("c", &eps(3), &connector, policy).unwrap();
        for i in 0..60 {
            c.put(&format!("key-{i}"), format!("val-{i}").as_bytes())
                .unwrap();
        }
        c.apply_ring_change(&eps(4), &connector).unwrap();
        assert!(c.reshard_active());
        // The scenario is only meaningful if some key now routes to the
        // (still empty) new node.
        let ring4 = HashRing::new(&eps(4), vnodes);
        assert!(
            (0..60).any(|i| ring4.owners(&format!("key-{i}"), replicas).contains(&3)),
            "no key re-routed to the new node"
        );
        let keys: Vec<String> = (0..60).map(|i| format!("key-{i}")).collect();
        let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
        let got = c.get_many(&refs).unwrap();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(
                v.as_deref(),
                Some(format!("val-{i}").as_bytes()),
                "key-{i} unreadable through get_many mid-reshard"
            );
        }
        c.run_migration().unwrap();
    }

    #[test]
    fn a_second_ring_change_is_rejected_while_migration_is_pending() {
        // Regression: a second apply_ring_change used to overwrite the
        // union view and clear the queue, silently stranding every key
        // whose only copies lived on nodes exclusive to the discarded
        // topology. It must be rejected until the sweep drains.
        let connector = MapConnector::new();
        let c = ClusterClient::connect("c", &eps(3), &connector, ClusterPolicy::test_profile())
            .unwrap();
        for i in 0..40 {
            c.put(&format!("key-{i}"), b"v").unwrap();
        }
        c.apply_ring_change(&eps(4), &connector).unwrap();
        assert!(c.reshard_active());
        let pending = c.migration_pending();
        assert!(pending > 0);
        let err = c
            .apply_ring_change(&eps(5), &connector)
            .expect_err("second ring change mid-migration must be rejected");
        assert!(matches!(err, StoreError::Unavailable(_)), "{err:?}");
        // The in-flight reshard is untouched: version, union and queue.
        assert_eq!(c.ring_version(), 2);
        assert!(c.reshard_active());
        assert_eq!(c.migration_pending(), pending);
        for i in 0..40 {
            assert!(c.get(&format!("key-{i}")).unwrap().is_some());
        }
        // Drained, the next change applies cleanly.
        c.run_migration().unwrap();
        assert!(!c.reshard_active());
        assert_eq!(c.apply_ring_change(&eps(5), &connector).unwrap(), 3);
        c.run_migration().unwrap();
        for i in 0..40 {
            assert!(c.get(&format!("key-{i}")).unwrap().is_some());
        }
    }

    #[test]
    fn removing_a_node_drains_it_and_preserves_replication() {
        let connector = MapConnector::new();
        let c = ClusterClient::connect("c", &eps(4), &connector, ClusterPolicy::test_profile())
            .unwrap();
        for i in 0..60 {
            c.put(&format!("key-{i}"), b"v").unwrap();
        }
        c.apply_ring_change(&eps(3), &connector).unwrap();
        // Mid-sweep, keys whose only copies sit on the removed node are
        // still served through the union view.
        for i in 0..60 {
            assert!(c.get(&format!("key-{i}")).unwrap().is_some());
        }
        c.run_migration().unwrap();
        assert!(
            connector.store("node-3").keys().unwrap().is_empty(),
            "removed node drained"
        );
        let replicas = c.policy().replicas;
        for i in 0..60 {
            let key = format!("key-{i}");
            assert!(c.get(&key).unwrap().is_some());
            let copies = (0..3)
                .filter(|&n| {
                    connector
                        .store(&format!("node-{n}"))
                        .contains(&key)
                        .unwrap()
                })
                .count();
            assert_eq!(copies, replicas);
        }
    }

    #[test]
    fn rerunning_a_sweep_applies_no_duplicate_effects() {
        let policy = ClusterPolicy::test_profile();
        let mut stores: Vec<(String, Arc<dyn KeyValue>)> = Vec::new();
        let mut flaky = Vec::new();
        for i in 0..4 {
            let f = Arc::new(FlakyStore::new(&format!("node-{i}")));
            flaky.push(f.clone());
            stores.push((format!("node-{i}"), f as Arc<dyn KeyValue>));
        }
        let initial: Vec<(String, Arc<dyn KeyValue>)> = stores.drain(..3).collect();
        let spare = flaky[3].clone();
        let c = ClusterClient::from_stores("c", initial, policy);
        for i in 0..40 {
            c.put(&format!("key-{i}"), b"v").unwrap();
        }
        let connector = move |ep: &str| -> kvapi::Result<Arc<dyn KeyValue>> {
            assert_eq!(ep, "node-3", "only the new endpoint is connected");
            Ok(spare.clone() as Arc<dyn KeyValue>)
        };
        c.apply_ring_change(&eps(4), &connector).unwrap();
        let first = c.run_migration().unwrap();
        assert!(first > 0);
        let writes_after_first: Vec<u64> = flaky
            .iter()
            .map(|f| f.writes.load(std::sync::atomic::Ordering::Relaxed))
            .collect();
        // Re-applying the identical ring and sweeping again must examine
        // the same keys but apply zero effects: every destination already
        // holds the winning etag (or ownership did not change at all).
        c.apply_ring_change(&eps(4), &connector).unwrap();
        let second = c.run_migration().unwrap();
        assert_eq!(second, 0, "second sweep moved nothing");
        let writes_after_second: Vec<u64> = flaky
            .iter()
            .map(|f| f.writes.load(std::sync::atomic::Ordering::Relaxed))
            .collect();
        assert_eq!(
            writes_after_first, writes_after_second,
            "no store write was replayed"
        );
    }

    #[test]
    fn migration_keeps_the_current_owners_value_over_an_etag_tiebreak() {
        // Regression: with every copy tied on modified_ms, the
        // (modified_ms, etag) fallback degrades to an etag-hash coin flip
        // — a stale copy left on a de-owned old owner could win it and be
        // copied back over the value the current owners agree on. The
        // current-owner consensus rule must decide instead.
        let policy = ClusterPolicy::test_profile();
        let vnodes = policy.vnodes;
        let replicas = policy.replicas;
        let mut stores: Vec<(String, Arc<dyn KeyValue>)> = Vec::new();
        let mut tied = Vec::new();
        for i in 0..4 {
            let t = Arc::new(TiedClockStore::new(&format!("node-{i}")));
            tied.push(t.clone());
            stores.push((format!("node-{i}"), t.clone() as Arc<dyn KeyValue>));
        }
        let c = ClusterClient::from_stores("c", stores, policy);
        // A key owned by the soon-to-be-removed node-3: after the ring
        // change node-3 is de-owned but still holds its old copy.
        let ring4 = HashRing::new(&eps(4), vnodes);
        let key = (0..400)
            .map(|i| format!("key-{i}"))
            .find(|k| ring4.owners(k, replicas).contains(&3))
            .unwrap();
        // Order the two values so the STALE one wins an etag-hash tiebreak.
        let (stale, fresh) =
            if kvapi::Etag::of_bytes(b"tie-a").0 > kvapi::Etag::of_bytes(b"tie-b").0 {
                (&b"tie-a"[..], &b"tie-b"[..])
            } else {
                (&b"tie-b"[..], &b"tie-a"[..])
            };
        c.put(&key, stale).unwrap();
        let connector = |_ep: &str| -> kvapi::Result<Arc<dyn KeyValue>> {
            panic!("shrink connects no new endpoints")
        };
        c.apply_ring_change(&eps(3), &connector).unwrap();
        // Mid-reshard the write routes to the new owners; node-3 keeps the
        // stale copy, tied on modified_ms with the larger etag hash.
        c.put(&key, fresh).unwrap();
        c.run_migration().unwrap();
        assert_eq!(c.get(&key).unwrap().as_deref(), Some(fresh));
        assert!(
            tied[3].inner.inner.get(&key).unwrap().is_none(),
            "de-owned node drained"
        );
        let ring3 = HashRing::new(&eps(3), vnodes);
        for owner in ring3.owners(&key, replicas) {
            assert_eq!(
                tied[owner].inner.inner.get(&key).unwrap().as_deref(),
                Some(fresh),
                "node-{owner} kept the current owners' value"
            );
        }
    }

    #[test]
    fn migration_stalls_loudly_when_a_destination_is_down() {
        let policy = ClusterPolicy::test_profile();
        let mut stores: Vec<(String, Arc<dyn KeyValue>)> = Vec::new();
        let mut flaky = Vec::new();
        for i in 0..3 {
            let f = Arc::new(FlakyStore::new(&format!("node-{i}")));
            flaky.push(f.clone());
            stores.push((format!("node-{i}"), f as Arc<dyn KeyValue>));
        }
        let initial: Vec<(String, Arc<dyn KeyValue>)> = stores.drain(..2).collect();
        let spare = flaky[2].clone();
        let c = ClusterClient::from_stores("c", initial, policy);
        for i in 0..30 {
            c.put(&format!("key-{i}"), b"v").unwrap();
        }
        // The new node is unreachable: the sweep must keep those keys
        // pending (still served via the union) rather than dropping them.
        spare
            .fail_reads
            .store(true, std::sync::atomic::Ordering::Relaxed);
        spare
            .fail_writes
            .store(true, std::sync::atomic::Ordering::Relaxed);
        let spare_conn = spare.clone();
        let connector = move |_ep: &str| -> kvapi::Result<Arc<dyn KeyValue>> {
            Ok(spare_conn.clone() as Arc<dyn KeyValue>)
        };
        c.apply_ring_change(&eps(3), &connector).unwrap();
        let err = c.run_migration().expect_err("stalled sweep errors");
        assert!(matches!(err, kvapi::StoreError::Unavailable(_)), "{err:?}");
        assert!(c.reshard_active(), "union view survives the stall");
        assert!(c.migration_pending() > 0);
        for i in 0..30 {
            assert!(c.get(&format!("key-{i}")).unwrap().is_some());
        }
        // Heal, let the tripped breaker cool down, then finish.
        spare
            .fail_reads
            .store(false, std::sync::atomic::Ordering::Relaxed);
        spare
            .fail_writes
            .store(false, std::sync::atomic::Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(150));
        c.run_migration().unwrap();
        assert!(!c.reshard_active());
    }
}
