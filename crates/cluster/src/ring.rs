//! The consistent-hash ring.
//!
//! Each node contributes `vnodes` points to a 64-bit ring, hashed from
//! `"{node_id}#{i}"` with the same FNV-1a the workspace uses for content
//! etags. A key's owners are found by hashing the key and walking the ring
//! clockwise from that point, collecting the first `n` *distinct* nodes.
//! Virtual nodes smooth the key distribution and — because points are
//! derived from stable node ids — adding or removing one node moves only
//! the ~1/N of keys whose arcs it gains or loses, which is exactly what
//! keeps a live reshard's migration sweep small.

/// An immutable ring over a fixed node set. Node identity is positional
/// (`usize` index into the owning topology's node list); the ids are only
/// hashed to place points.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, node_index)` sorted by point.
    points: Vec<(u64, usize)>,
    node_count: usize,
}

/// 64-bit FNV-1a, matching `kvapi::Etag::of_bytes`.
fn fnv1a(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Ring placement hash: FNV-1a through a splitmix64-style finalizer.
///
/// Raw FNV-1a of short, similar strings (`node-0#17` vs `node-2#17`)
/// clusters badly in the high bits, which skews ring arcs by 20x and
/// defeats vnode smoothing; the avalanche mix restores uniformity while
/// staying a pure function of the same bytes.
fn point(data: &[u8]) -> u64 {
    let mut z = fnv1a(data);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl HashRing {
    /// Build a ring over `node_ids`, each contributing `vnodes` points.
    pub fn new(node_ids: &[String], vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(node_ids.len() * vnodes);
        for (idx, id) in node_ids.iter().enumerate() {
            for v in 0..vnodes {
                points.push((point(format!("{id}#{v}").as_bytes()), idx));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            node_count: node_ids.len(),
        }
    }

    /// Number of distinct nodes on the ring.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The first `n` distinct nodes clockwise from `key`'s point — the
    /// key's primary (first) and replicas, capped at the node count.
    /// Empty only for an empty ring.
    pub fn owners(&self, key: &str, n: usize) -> Vec<usize> {
        let want = n.max(1).min(self.node_count);
        let mut out = Vec::with_capacity(want);
        if self.points.is_empty() {
            return out;
        }
        let h = point(key.as_bytes());
        let start = self.points.partition_point(|&(p, _)| p < h);
        for i in 0..self.points.len() {
            let slot = (start + i) % self.points.len();
            let Some(&(_, node)) = self.points.get(slot) else {
                break;
            };
            if !out.contains(&node) {
                out.push(node);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The key's primary owner, or `None` on an empty ring.
    pub fn primary(&self, key: &str) -> Option<usize> {
        self.owners(key, 1).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn owners_are_distinct_and_deterministic() {
        let ring = HashRing::new(&ids(&["a", "b", "c"]), 64);
        for key in ["alpha", "beta", "gamma", "delta"] {
            let o1 = ring.owners(key, 2);
            let o2 = ring.owners(key, 2);
            assert_eq!(o1, o2, "same key, same owners");
            assert_eq!(o1.len(), 2);
            assert_ne!(o1[0], o1[1], "replica is a distinct node");
        }
    }

    #[test]
    fn replica_count_is_capped_at_node_count() {
        let ring = HashRing::new(&ids(&["a", "b"]), 16);
        assert_eq!(ring.owners("k", 5).len(), 2);
        let solo = HashRing::new(&ids(&["a"]), 16);
        assert_eq!(solo.owners("k", 3), vec![0]);
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(&[], 16);
        assert!(ring.owners("k", 2).is_empty());
        assert_eq!(ring.primary("k"), None);
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let ring = HashRing::new(&ids(&["a", "b", "c", "d"]), 64);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            let p = ring.primary(&format!("key-{i}")).expect("owner");
            counts[p] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // Perfect balance is 1000; vnode smoothing should keep every
            // node within a loose 2x band.
            assert!(
                (500..=2000).contains(&c),
                "node {i} owns {c} of 4000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn adding_a_node_moves_only_a_fraction_of_keys() {
        let three = HashRing::new(&ids(&["a", "b", "c"]), 64);
        let four = HashRing::new(&ids(&["a", "b", "c", "d"]), 64);
        let total = 4000;
        let mut moved = 0;
        for i in 0..total {
            let key = format!("key-{i}");
            let before = three.primary(&key).expect("owner");
            let after = four.primary(&key).expect("owner");
            // Node indices 0..=2 mean the same ids in both rings.
            if after != before {
                moved += 1;
                assert_eq!(after, 3, "keys only move to the new node, got {after}");
            }
        }
        // Expected movement ~1/4; allow a wide band but far below a
        // naive-mod-N reshuffle (~3/4).
        assert!(
            (total / 10..total / 2).contains(&moved),
            "moved {moved} of {total}"
        );
    }

    #[test]
    fn ring_hash_matches_etag_fnv() {
        // The ring builds on the workspace's content-hash function; pin
        // both the FNV base and the mixed placement hash so ring layout
        // stays stable across refactors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"abc"), kvapi::Etag::of_bytes(b"abc").0);
        assert_eq!(point(b"abc"), {
            let mut z = kvapi::Etag::of_bytes(b"abc").0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        });
    }
}
