//! LSB-first bit I/O, as DEFLATE requires.
//!
//! RFC 1951 packs bits into bytes starting from the least-significant bit.
//! Huffman *codes* are an exception: they are stored most-significant-bit
//! first, which callers handle by bit-reversing the code before calling
//! [`BitWriter::write_bits`] (see [`reverse_bits`]).

/// Reverse the low `len` bits of `code` (used to emit Huffman codes).
#[inline]
pub fn reverse_bits(code: u16, len: u8) -> u16 {
    let mut out = 0u16;
    for i in 0..len {
        out |= ((code >> i) & 1) << (len - 1 - i);
    }
    out
}

/// Accumulates bits LSB-first into a byte vector.
#[derive(Default)]
pub struct BitWriter {
    out: Vec<u8>,
    bit_buf: u64,
    bit_count: u32,
}

impl BitWriter {
    /// Fresh writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Write the low `n` bits of `value` (n ≤ 32), LSB first.
    #[inline]
    pub fn write_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || u64::from(value) < (1u64 << n));
        self.bit_buf |= u64::from(value) << self.bit_count;
        self.bit_count += n;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buf & 0xff) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Write a Huffman code of length `len`: DEFLATE stores codes MSB-first.
    #[inline]
    pub fn write_code(&mut self, code: u16, len: u8) {
        self.write_bits(u32::from(reverse_bits(code, len)), u32::from(len));
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        if self.bit_count > 0 {
            self.out.push((self.bit_buf & 0xff) as u8);
            self.bit_buf = 0;
            self.bit_count = 0;
        }
    }

    /// Append raw bytes; the writer must be byte-aligned.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        debug_assert_eq!(self.bit_count, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Flush any partial byte and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }

    /// Bits written so far (for encoder cost accounting).
    pub fn bit_len(&self) -> u64 {
        (self.out.len() as u64) * 8 + u64::from(self.bit_count)
    }
}

/// Reads bits LSB-first from a byte slice.
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    bit_buf: u64,
    bit_count: u32,
}

/// Error returned when the stream ends mid-read.
#[derive(Debug, PartialEq, Eq)]
pub struct UnexpectedEof;

impl<'a> BitReader<'a> {
    /// Read from `data`.
    pub fn new(data: &'a [u8]) -> BitReader<'a> {
        BitReader {
            data,
            pos: 0,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.bit_count <= 56 && self.pos < self.data.len() {
            self.bit_buf |= u64::from(self.data[self.pos]) << self.bit_count;
            self.pos += 1;
            self.bit_count += 8;
        }
    }

    /// Read `n` bits (n ≤ 32) as an integer, LSB-first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u32, UnexpectedEof> {
        debug_assert!(n <= 32);
        if self.bit_count < n {
            self.refill();
            if self.bit_count < n {
                return Err(UnexpectedEof);
            }
        }
        let mask = if n == 32 {
            u64::MAX >> 32
        } else {
            (1u64 << n) - 1
        };
        let v = (self.bit_buf & mask) as u32;
        self.bit_buf >>= n;
        self.bit_count -= n;
        Ok(v)
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<u32, UnexpectedEof> {
        self.read_bits(1)
    }

    /// Peek up to `n` bits without consuming; returns `(value, available)`.
    /// Missing high bits (past end of stream) read as zero, with
    /// `available` reporting how many were real.
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> (u32, u32) {
        debug_assert!(n <= 32);
        if self.bit_count < n {
            self.refill();
        }
        let avail = self.bit_count.min(n);
        let mask = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
        ((self.bit_buf & mask) as u32, avail)
    }

    /// Consume `n` bits previously peeked. `n` must not exceed the
    /// `available` reported by [`BitReader::peek_bits`].
    #[inline]
    pub fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.bit_count);
        self.bit_buf >>= n;
        self.bit_count -= n;
    }

    /// Discard bits up to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.bit_count % 8;
        self.bit_buf >>= drop;
        self.bit_count -= drop;
    }

    /// Read `n` raw bytes; the reader must be byte-aligned.
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>, UnexpectedEof> {
        debug_assert_eq!(self.bit_count % 8, 0, "read_bytes requires byte alignment");
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.read_bits(8)? as u8);
        }
        Ok(out)
    }

    /// True when no complete bit remains.
    pub fn is_empty(&self) -> bool {
        self.bit_count == 0 && self.pos >= self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b11110000, 8);
        w.write_bits(0x12345, 20);
        w.write_bits(1, 1);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(8).unwrap(), 0b11110000);
        assert_eq!(r.read_bits(20).unwrap(), 0x12345);
        assert_eq!(r.read_bits(1).unwrap(), 1);
    }

    #[test]
    fn lsb_first_byte_layout() {
        let mut w = BitWriter::new();
        // Bits: 1,0,1 then 5-bit value 0b00001 → byte is 0b00001_101 = 0x0D.
        w.write_bits(0b101, 3);
        w.write_bits(1, 5);
        assert_eq!(w.finish(), vec![0x0d]);
    }

    #[test]
    fn reverse_bits_examples() {
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b001, 3), 0b100);
        assert_eq!(reverse_bits(0b0011000, 7), 0b0001100);
        assert_eq!(reverse_bits(0x0F, 8), 0xF0);
    }

    #[test]
    fn align_and_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align_byte();
        w.write_bytes(b"\xAA\xBB");
        let buf = w.finish();
        assert_eq!(buf, vec![0x01, 0xAA, 0xBB]);
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bit().unwrap(), 1);
        r.align_byte();
        assert_eq!(r.read_bytes(2).unwrap(), vec![0xAA, 0xBB]);
        assert!(r.is_empty());
    }

    #[test]
    fn eof_detection() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bits(1), Err(UnexpectedEof));
    }

    #[test]
    fn bit_len_accounting() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.write_bits(0, 11);
        assert_eq!(w.bit_len(), 16);
    }

    #[test]
    fn long_stream_round_trip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let items: Vec<(u32, u32)> = (0..5000)
            .map(|_| {
                let n = rng.gen_range(1..=24);
                (rng.gen_range(0..(1u32 << n)), n)
            })
            .collect();
        let mut w = BitWriter::new();
        for &(v, n) in &items {
            w.write_bits(v, n);
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &(v, n) in &items {
            assert_eq!(r.read_bits(n).unwrap(), v);
        }
    }
}
