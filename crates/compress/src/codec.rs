//! [`GzipCodec`] — plugs compression into the DSCL value pipeline.
//!
//! §III of the paper: "The DSCL compression capabilities can also be used to
//! reduce the size of cached objects, allowing more objects to be stored
//! using the same amount of cache space" — balanced against CPU overhead,
//! which the benchmarks (Fig. 21) quantify.

use crate::deflate::Level;
use crate::gzip::{gzip_compress, gzip_decompress_with_limit};
use kvapi::codec::Codec;
use kvapi::Result;

/// Default cap on decompressed size: prevents a corrupted or hostile stored
/// value from exhausting memory on read.
pub const DEFAULT_MAX_DECOMPRESSED: usize = 1 << 30;

/// gzip compression as a [`Codec`] stage.
pub struct GzipCodec {
    level: Level,
    max_out: usize,
}

impl Default for GzipCodec {
    fn default() -> Self {
        GzipCodec::new(Level::Default)
    }
}

impl GzipCodec {
    /// Codec at the given compression level.
    pub fn new(level: Level) -> GzipCodec {
        GzipCodec {
            level,
            max_out: DEFAULT_MAX_DECOMPRESSED,
        }
    }

    /// Override the decompressed-size cap.
    pub fn with_max_decompressed(mut self, max_out: usize) -> GzipCodec {
        self.max_out = max_out;
        self
    }
}

impl Codec for GzipCodec {
    fn name(&self) -> &str {
        "gzip"
    }

    fn encode(&self, plain: &[u8]) -> Result<Vec<u8>> {
        Ok(gzip_compress(plain, self.level))
    }

    fn decode(&self, encoded: &[u8]) -> Result<Vec<u8>> {
        gzip_decompress_with_limit(encoded, self.max_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trip() {
        let c = GzipCodec::default();
        let data = b"codec layer round trip ".repeat(50);
        let enc = c.encode(&data).unwrap();
        assert!(enc.len() < data.len());
        assert_eq!(c.decode(&enc).unwrap(), data);
        assert_eq!(c.name(), "gzip");
    }

    #[test]
    fn cap_applies() {
        let c = GzipCodec::default().with_max_decompressed(16);
        let enc = c.encode(&vec![0u8; 1000]).unwrap();
        assert!(c.decode(&enc).is_err());
    }
}
