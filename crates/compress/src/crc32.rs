//! CRC-32 (IEEE 802.3, reflected), as used by the gzip trailer.

/// Lazily built 256-entry lookup table for the reflected polynomial
/// 0xEDB88320.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state.
#[derive(Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh CRC (all-ones initial state).
    pub fn new() -> Crc32 {
        Crc32 { state: 0xffff_ffff }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Final checksum value.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn empty_and_known_strings() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
        assert_eq!(crc32(b"abc"), 0x3524_41c2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = crc32(&data);
        for split in [0, 1, 7, 500, 999, 1000] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), oneshot, "split {split}");
        }
    }
}
