//! DEFLATE (RFC 1951): encoder with stored / fixed / dynamic blocks and a
//! full inflater.
//!
//! The encoder tokenizes the input once ([`crate::lz77`]), then prices the
//! token stream under fixed Huffman codes, dynamic Huffman codes (including
//! the code-length-code header), and raw storage, and emits whichever block
//! type is smallest — the same decision zlib makes per block. The entire
//! input is emitted as a single block (DEFLATE places no limit on
//! non-stored block sizes).

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{canonical_codes, code_lengths, Decoder};
use crate::lz77::{expand, tokenize, Effort, Token, MAX_MATCH, MIN_MATCH};
use kvapi::{Result, StoreError};

/// Compression level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// No compression: stored blocks only.
    Store,
    /// Fast: shallow match search, fixed-vs-dynamic pricing still applies.
    Fast,
    /// Balanced default (what the paper's gzip default corresponds to).
    Default,
    /// Maximum effort match search.
    Best,
}

impl Level {
    fn effort(self) -> Effort {
        match self {
            Level::Store | Level::Fast => Effort::for_level(1),
            Level::Default => Effort::for_level(6),
            Level::Best => Effort::for_level(9),
        }
    }
}

// ---- length / distance code tables (RFC 1951 §3.2.5) ----

/// (base length, extra bits) for length codes 257..=285, indexed by code-257.
const LENGTH_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// (base distance, extra bits) for distance codes 0..=29.
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Order in which code-length-code lengths appear in the dynamic header.
const CL_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// Map a match length (3..=258) to (code, extra bits, extra value).
fn length_code(len: u16) -> (u16, u8, u16) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&(len as usize)));
    // Linear scan is fine: table has 29 entries and this is not the hot
    // loop (match finding dominates).
    for (i, &(base, extra)) in LENGTH_TABLE.iter().enumerate().rev() {
        if len >= base {
            return (257 + i as u16, extra, len - base);
        }
    }
    unreachable!()
}

/// Map a distance (1..=32768) to (code, extra bits, extra value).
fn dist_code(dist: u16) -> (u16, u8, u16) {
    for (i, &(base, extra)) in DIST_TABLE.iter().enumerate().rev() {
        if dist >= base {
            return (i as u16, extra, dist - base);
        }
    }
    unreachable!()
}

fn fixed_lit_lengths() -> Vec<u8> {
    let mut l = vec![0u8; 288];
    l[0..144].fill(8);
    l[144..256].fill(9);
    l[256..280].fill(7);
    l[280..288].fill(8);
    l
}

fn fixed_dist_lengths() -> Vec<u8> {
    vec![5u8; 30]
}

// ---- encoder ----

/// Compress `data` into a raw DEFLATE stream.
pub fn deflate(data: &[u8], level: Level) -> Vec<u8> {
    let mut w = BitWriter::new();
    if level == Level::Store {
        write_stored(&mut w, data);
        return w.finish();
    }
    let tokens = tokenize(data, level.effort());

    // Symbol frequencies (end-of-block is always sent once).
    let mut lit_freq = [0u32; 286];
    let mut dist_freq = [0u32; 30];
    lit_freq[256] = 1;
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[length_code(len).0 as usize] += 1;
                dist_freq[dist_code(dist).0 as usize] += 1;
            }
        }
    }

    let mut dyn_lit_lens = code_lengths(&lit_freq, 15);
    let mut dyn_dist_lens = code_lengths(&dist_freq, 15);
    // A block with no matches still must declare one distance code so
    // decoders can build a (trivially unused) distance table.
    if dyn_dist_lens.iter().all(|&l| l == 0) {
        dyn_dist_lens[0] = 1;
    }
    // HLIT/HDIST require at least 257/1 entries.
    let hlit = dyn_lit_lens.iter().rposition(|&l| l > 0).unwrap().max(256) + 1;
    let hdist = dyn_dist_lens.iter().rposition(|&l| l > 0).unwrap_or(0) + 1;
    dyn_lit_lens.truncate(hlit.max(257));
    dyn_dist_lens.truncate(hdist.max(1));

    // Price the three block encodings.
    let fixed_lits = fixed_lit_lengths();
    let fixed_dists = fixed_dist_lengths();
    let cost = |lit_lens: &[u8], dist_lens: &[u8]| -> u64 {
        let mut bits = 0u64;
        for (sym, &f) in lit_freq.iter().enumerate() {
            if f > 0 {
                bits += u64::from(f) * u64::from(lit_lens[sym]);
                if sym > 256 {
                    bits += u64::from(f) * u64::from(LENGTH_TABLE[sym - 257].1);
                }
            }
        }
        for (sym, &f) in dist_freq.iter().enumerate() {
            if f > 0 {
                bits += u64::from(f) * u64::from(dist_lens[sym])
                    + u64::from(f) * u64::from(DIST_TABLE[sym].1);
            }
        }
        bits
    };
    let (cl_syms, cl_lens, cl_header_bits) = build_cl_header(&dyn_lit_lens, &dyn_dist_lens);
    let dyn_cost = cost(&dyn_lit_lens, &dyn_dist_lens) + cl_header_bits + 17; // +HLIT/HDIST/HCLEN
    let fixed_cost = cost(&fixed_lits, &fixed_dists);
    let stored_cost = 40 + (data.len() as u64) * 8 + (data.len() as u64 / 65535) * 40;

    if stored_cost < dyn_cost && stored_cost < fixed_cost {
        write_stored(&mut w, data);
    } else if fixed_cost <= dyn_cost {
        w.write_bits(1, 1); // BFINAL
        w.write_bits(1, 2); // fixed
        write_tokens(&mut w, &tokens, &fixed_lits, &fixed_dists);
    } else {
        w.write_bits(1, 1); // BFINAL
        w.write_bits(2, 2); // dynamic
        write_dyn_header(&mut w, &dyn_lit_lens, &dyn_dist_lens, &cl_syms, &cl_lens);
        write_tokens(&mut w, &tokens, &dyn_lit_lens, &dyn_dist_lens);
    }
    w.finish()
}

fn write_stored(w: &mut BitWriter, data: &[u8]) {
    let mut chunks: Vec<&[u8]> = data.chunks(65535).collect();
    if chunks.is_empty() {
        chunks.push(&[]);
    }
    let last = chunks.len() - 1;
    for (i, chunk) in chunks.iter().enumerate() {
        w.write_bits(u32::from(i == last), 1); // BFINAL
        w.write_bits(0, 2); // stored
        w.align_byte();
        let len = chunk.len() as u16;
        w.write_bytes(&len.to_le_bytes());
        w.write_bytes(&(!len).to_le_bytes());
        w.write_bytes(chunk);
    }
}

fn write_tokens(w: &mut BitWriter, tokens: &[Token], lit_lens: &[u8], dist_lens: &[u8]) {
    let lit_codes = canonical_codes(lit_lens);
    let dist_codes = canonical_codes(dist_lens);
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                w.write_code(lit_codes[b as usize], lit_lens[b as usize]);
            }
            Token::Match { len, dist } => {
                let (lc, le, lv) = length_code(len);
                w.write_code(lit_codes[lc as usize], lit_lens[lc as usize]);
                if le > 0 {
                    w.write_bits(u32::from(lv), u32::from(le));
                }
                let (dc, de, dv) = dist_code(dist);
                w.write_code(dist_codes[dc as usize], dist_lens[dc as usize]);
                if de > 0 {
                    w.write_bits(u32::from(dv), u32::from(de));
                }
            }
        }
    }
    // End of block.
    w.write_code(lit_codes[256], lit_lens[256]);
}

/// RLE-encode the concatenated lit+dist code lengths into code-length-code
/// symbols (16 = repeat previous 3..6, 17 = zeros 3..10, 18 = zeros
/// 11..138), build the CL Huffman code, and return
/// (symbol stream, CL lengths, total header bits excluding HLIT/HDIST/HCLEN).
fn build_cl_header(lit_lens: &[u8], dist_lens: &[u8]) -> (Vec<(u8, u8, u8)>, Vec<u8>, u64) {
    let all: Vec<u8> = lit_lens.iter().chain(dist_lens.iter()).copied().collect();
    let mut syms: Vec<(u8, u8, u8)> = Vec::new(); // (symbol, extra value, extra bits)
    let mut i = 0usize;
    while i < all.len() {
        let cur = all[i];
        let mut run = 1usize;
        while i + run < all.len() && all[i + run] == cur {
            run += 1;
        }
        if cur == 0 {
            let mut left = run;
            while left >= 11 {
                let take = left.min(138);
                syms.push((18, (take - 11) as u8, 7));
                left -= take;
            }
            if left >= 3 {
                syms.push((17, (left - 3) as u8, 3));
                left = 0;
            }
            for _ in 0..left {
                syms.push((0, 0, 0));
            }
        } else {
            syms.push((cur, 0, 0));
            let mut left = run - 1;
            while left >= 3 {
                let take = left.min(6);
                syms.push((16, (take - 3) as u8, 2));
                left -= take;
            }
            for _ in 0..left {
                syms.push((cur, 0, 0));
            }
        }
        i += run;
    }
    let mut cl_freq = [0u32; 19];
    for &(s, _, _) in &syms {
        cl_freq[s as usize] += 1;
    }
    let cl_lens = code_lengths(&cl_freq, 7);
    let hclen = CL_ORDER
        .iter()
        .rposition(|&s| cl_lens[s] > 0)
        .map(|p| p + 1)
        .unwrap_or(4)
        .max(4);
    let mut bits = (hclen as u64) * 3;
    for &(s, _, eb) in &syms {
        bits += u64::from(cl_lens[s as usize]) + u64::from(eb);
    }
    (syms, cl_lens, bits)
}

fn write_dyn_header(
    w: &mut BitWriter,
    lit_lens: &[u8],
    dist_lens: &[u8],
    cl_syms: &[(u8, u8, u8)],
    cl_lens: &[u8],
) {
    let hclen = CL_ORDER
        .iter()
        .rposition(|&s| cl_lens[s] > 0)
        .map(|p| p + 1)
        .unwrap_or(4)
        .max(4);
    w.write_bits((lit_lens.len() - 257) as u32, 5);
    w.write_bits((dist_lens.len() - 1) as u32, 5);
    w.write_bits((hclen - 4) as u32, 4);
    for &s in CL_ORDER.iter().take(hclen) {
        w.write_bits(u32::from(cl_lens[s]), 3);
    }
    let cl_codes = canonical_codes(cl_lens);
    for &(s, ev, eb) in cl_syms {
        w.write_code(cl_codes[s as usize], cl_lens[s as usize]);
        if eb > 0 {
            w.write_bits(u32::from(ev), u32::from(eb));
        }
    }
}

// ---- decoder ----

/// Decompress a raw DEFLATE stream.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>> {
    inflate_with_limit(data, usize::MAX)
}

/// Decompress with an output-size cap (guards against decompression bombs
/// when handling untrusted input).
pub fn inflate_with_limit(data: &[u8], max_out: usize) -> Result<Vec<u8>> {
    let mut r = BitReader::new(data);
    let mut out: Vec<u8> = Vec::new();
    let eof = |_| StoreError::corrupt("truncated deflate stream");
    loop {
        let bfinal = r.read_bit().map_err(eof)?;
        let btype = r.read_bits(2).map_err(eof)?;
        match btype {
            0 => {
                r.align_byte();
                let len_bytes = r.read_bytes(4).map_err(eof)?;
                let len = u16::from_le_bytes([len_bytes[0], len_bytes[1]]);
                let nlen = u16::from_le_bytes([len_bytes[2], len_bytes[3]]);
                if len != !nlen {
                    return Err(StoreError::corrupt("stored block LEN/NLEN mismatch"));
                }
                if out.len() + len as usize > max_out {
                    return Err(StoreError::corrupt("inflate output exceeds limit"));
                }
                out.extend_from_slice(&r.read_bytes(len as usize).map_err(eof)?);
            }
            1 => {
                let lit = Decoder::new(&fixed_lit_lengths())?;
                let dist = Decoder::new(&fixed_dist_lengths())?;
                inflate_block(&mut r, &lit, &dist, &mut out, max_out)?;
            }
            2 => {
                let hlit = r.read_bits(5).map_err(eof)? as usize + 257;
                let hdist = r.read_bits(5).map_err(eof)? as usize + 1;
                let hclen = r.read_bits(4).map_err(eof)? as usize + 4;
                let mut cl_lens = [0u8; 19];
                for &s in CL_ORDER.iter().take(hclen) {
                    cl_lens[s] = r.read_bits(3).map_err(eof)? as u8;
                }
                let cl = Decoder::new(&cl_lens)?;
                let mut lens = Vec::with_capacity(hlit + hdist);
                while lens.len() < hlit + hdist {
                    match cl.decode(&mut r)? {
                        s @ 0..=15 => lens.push(s as u8),
                        16 => {
                            let &prev = lens.last().ok_or_else(|| {
                                StoreError::corrupt("repeat with no previous length")
                            })?;
                            let n = 3 + r.read_bits(2).map_err(eof)?;
                            lens.extend(std::iter::repeat_n(prev, n as usize));
                        }
                        17 => {
                            let n = 3 + r.read_bits(3).map_err(eof)?;
                            lens.extend(std::iter::repeat_n(0u8, n as usize));
                        }
                        18 => {
                            let n = 11 + r.read_bits(7).map_err(eof)?;
                            lens.extend(std::iter::repeat_n(0u8, n as usize));
                        }
                        other => {
                            return Err(StoreError::corrupt(format!(
                                "invalid code-length symbol {other}"
                            )))
                        }
                    }
                }
                if lens.len() != hlit + hdist {
                    return Err(StoreError::corrupt("code length run overflows table"));
                }
                let lit = Decoder::new(&lens[..hlit])?;
                let dist = Decoder::new(&lens[hlit..])?;
                inflate_block(&mut r, &lit, &dist, &mut out, max_out)?;
            }
            _ => return Err(StoreError::corrupt("reserved block type 3")),
        }
        if bfinal == 1 {
            break;
        }
    }
    Ok(out)
}

fn inflate_block(
    r: &mut BitReader<'_>,
    lit: &Decoder,
    dist: &Decoder,
    out: &mut Vec<u8>,
    max_out: usize,
) -> Result<()> {
    let eof = |_| StoreError::corrupt("truncated deflate block");
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => {
                if out.len() >= max_out {
                    return Err(StoreError::corrupt("inflate output exceeds limit"));
                }
                out.push(sym as u8);
            }
            256 => return Ok(()),
            257..=285 => {
                let (base, extra) = LENGTH_TABLE[sym as usize - 257];
                let len = base + r.read_bits(u32::from(extra)).map_err(eof)? as u16;
                let dsym = dist.decode(r)?;
                if dsym as usize >= DIST_TABLE.len() {
                    return Err(StoreError::corrupt("invalid distance code"));
                }
                let (dbase, dextra) = DIST_TABLE[dsym as usize];
                let d = dbase as usize + r.read_bits(u32::from(dextra)).map_err(eof)? as usize;
                if d > out.len() {
                    return Err(StoreError::corrupt("distance beyond output start"));
                }
                if out.len() + len as usize > max_out {
                    return Err(StoreError::corrupt("inflate output exceeds limit"));
                }
                let len = len as usize;
                let start = out.len() - d;
                if d >= len {
                    // Non-overlapping: one memcpy-style append.
                    out.extend_from_within(start..start + len);
                } else {
                    // Overlapping copy: the output from `start` onward is
                    // periodic with period `d`, so append whole periods
                    // read from `start`, doubling the materialized run —
                    // O(log(len/d)) appends. Every chunk except the last is
                    // a multiple of `d`, keeping the period aligned.
                    let mut copied = 0;
                    while copied < len {
                        let chunk = (d + copied).min(len - copied);
                        out.extend_from_within(start..start + chunk);
                        copied += chunk;
                    }
                }
            }
            _ => {
                return Err(StoreError::corrupt(format!(
                    "invalid literal/length symbol {sym}"
                )))
            }
        }
    }
}

/// Expose token expansion for tests of upper layers.
pub fn debug_expand(tokens: &[Token]) -> Vec<u8> {
    expand(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8], level: Level) -> usize {
        let c = deflate(data, level);
        let d = inflate(&c).unwrap_or_else(|e| panic!("inflate failed at {level:?}: {e}"));
        assert_eq!(d, data, "round trip at {level:?}");
        c.len()
    }

    #[test]
    fn empty_input() {
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            round_trip(b"", level);
        }
    }

    #[test]
    fn small_inputs_all_levels() {
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            round_trip(b"a", level);
            round_trip(b"hello, world", level);
            round_trip(&[0u8; 300], level);
        }
    }

    #[test]
    fn compressible_text_shrinks() {
        let data = "the universal data store manager provides a common interface. "
            .repeat(300)
            .into_bytes();
        let n = round_trip(&data, Level::Default);
        assert!(
            n < data.len() / 5,
            "text should compress >5x, got {n} of {}",
            data.len()
        );
    }

    #[test]
    fn incompressible_data_stays_close_to_original() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let data: Vec<u8> = (0..50_000).map(|_| rng.gen()).collect();
        let n = round_trip(&data, Level::Default);
        // Encoder should fall back to (near-)stored; allow small overhead.
        assert!(
            n <= data.len() + data.len() / 100 + 64,
            "random data blew up: {n}"
        );
    }

    #[test]
    fn long_runs() {
        let data = vec![7u8; 100_000];
        let n = round_trip(&data, Level::Default);
        assert!(
            n < 600,
            "run of one byte should compress to almost nothing, got {n}"
        );
    }

    #[test]
    fn stored_blocks_chunk_over_64k() {
        let data = vec![1u8; 70_000];
        let c = deflate(&data, Level::Store);
        assert_eq!(inflate(&c).unwrap(), data);
    }

    #[test]
    fn multi_pattern_structured_data() {
        let mut data = Vec::new();
        for i in 0..5000u32 {
            data.extend_from_slice(&i.to_le_bytes());
            data.extend_from_slice(b"key=");
            data.extend_from_slice(format!("{}", i % 97).as_bytes());
            data.push(b'\n');
        }
        for level in [Level::Fast, Level::Default, Level::Best] {
            round_trip(&data, level);
        }
    }

    #[test]
    fn inflate_rejects_garbage() {
        assert!(inflate(&[]).is_err());
        assert!(inflate(&[0xff, 0xff, 0xff]).is_err());
        // Reserved block type.
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(3, 2);
        assert!(inflate(&w.finish()).is_err());
    }

    #[test]
    fn inflate_rejects_bad_stored_header() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0, 2);
        w.align_byte();
        w.write_bytes(&5u16.to_le_bytes());
        w.write_bytes(&5u16.to_le_bytes()); // should be !5
        w.write_bytes(b"hello");
        assert!(inflate(&w.finish()).is_err());
    }

    #[test]
    fn inflate_respects_output_limit() {
        let data = vec![0u8; 10_000];
        let c = deflate(&data, Level::Default);
        assert!(inflate_with_limit(&c, 100).is_err());
        assert_eq!(inflate_with_limit(&c, 10_000).unwrap().len(), 10_000);
    }

    #[test]
    fn truncated_stream_detected() {
        let data = b"some reasonably long input with repeats repeats repeats".repeat(10);
        let c = deflate(&data, Level::Default);
        for cut in [1, c.len() / 2, c.len() - 1] {
            assert!(
                inflate(&c[..cut]).is_err(),
                "truncation at {cut} went undetected"
            );
        }
    }

    #[test]
    fn fixed_huffman_known_bits() {
        // "deflate of a single literal 'A' + EOB with fixed codes":
        // 'A' (0x41) has fixed code 0x71 (8 bits), EOB is 0000000 (7 bits).
        // Header: BFINAL=1, BTYPE=01. We just verify our encoder's fixed
        // path produces a stream a reference decoder state machine (ours)
        // accepts and that the first byte matches the expected layout:
        // bits (lsb first): 1, 10 → 0b011 in low bits.
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(1, 2);
        let lits = fixed_lit_lengths();
        let dists = fixed_dist_lengths();
        write_tokens(&mut w, &[Token::Literal(b'A')], &lits, &dists);
        let buf = w.finish();
        assert_eq!(buf[0] & 0b111, 0b011);
        assert_eq!(inflate(&buf).unwrap(), b"A");
    }

    #[test]
    fn length_and_dist_code_tables() {
        assert_eq!(length_code(3), (257, 0, 0));
        assert_eq!(length_code(10), (264, 0, 0));
        assert_eq!(length_code(11), (265, 1, 0));
        assert_eq!(length_code(12), (265, 1, 1));
        assert_eq!(length_code(258), (285, 0, 0));
        assert_eq!(dist_code(1), (0, 0, 0));
        assert_eq!(dist_code(4), (3, 0, 0));
        assert_eq!(dist_code(5), (4, 1, 0));
        assert_eq!(dist_code(24577), (29, 13, 0));
        assert_eq!(dist_code(32768), (29, 13, 8191));
    }
}
