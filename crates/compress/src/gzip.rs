//! gzip container (RFC 1952) around the DEFLATE stream.

use crate::crc32::crc32;
use crate::deflate::{deflate, inflate_with_limit, Level};
use kvapi::{Result, StoreError};

const MAGIC: [u8; 2] = [0x1f, 0x8b];
const CM_DEFLATE: u8 = 8;

const FTEXT: u8 = 1 << 0;
const FHCRC: u8 = 1 << 1;
const FEXTRA: u8 = 1 << 2;
const FNAME: u8 = 1 << 3;
const FCOMMENT: u8 = 1 << 4;

/// Compress `data` into a gzip member.
pub fn gzip_compress(data: &[u8], level: Level) -> Vec<u8> {
    let body = deflate(data, level);
    let mut out = Vec::with_capacity(body.len() + 18);
    out.extend_from_slice(&MAGIC);
    out.push(CM_DEFLATE);
    out.push(0); // FLG: no extras
    out.extend_from_slice(&[0, 0, 0, 0]); // MTIME unknown
    out.push(match level {
        Level::Best => 2,
        Level::Fast | Level::Store => 4,
        Level::Default => 0,
    }); // XFL
    out.push(255); // OS unknown
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Decompress a gzip member, verifying CRC-32 and length trailer.
/// Handles optional header fields (FEXTRA/FNAME/FCOMMENT/FHCRC) so streams
/// produced by standard tools also decode.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>> {
    gzip_decompress_with_limit(data, usize::MAX)
}

/// As [`gzip_decompress`] with an output-size cap.
pub fn gzip_decompress_with_limit(data: &[u8], max_out: usize) -> Result<Vec<u8>> {
    if data.len() < 18 {
        return Err(StoreError::corrupt("gzip stream too short"));
    }
    if data[0..2] != MAGIC {
        return Err(StoreError::corrupt("bad gzip magic"));
    }
    if data[2] != CM_DEFLATE {
        return Err(StoreError::corrupt(format!(
            "unsupported gzip method {}",
            data[2]
        )));
    }
    let flg = data[3];
    if flg & !(FTEXT | FHCRC | FEXTRA | FNAME | FCOMMENT) != 0 {
        return Err(StoreError::corrupt("reserved gzip flag bits set"));
    }
    let mut pos = 10usize;
    let need = |pos: usize, n: usize| -> Result<()> {
        if pos + n > data.len() {
            Err(StoreError::corrupt("truncated gzip header"))
        } else {
            Ok(())
        }
    };
    if flg & FEXTRA != 0 {
        need(pos, 2)?;
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        need(pos + 2, xlen)?;
        pos += 2 + xlen;
    }
    for flag in [FNAME, FCOMMENT] {
        if flg & flag != 0 {
            let end = data[pos..]
                .iter()
                .position(|&b| b == 0)
                .ok_or_else(|| StoreError::corrupt("unterminated gzip header string"))?;
            pos += end + 1;
        }
    }
    if flg & FHCRC != 0 {
        need(pos, 2)?;
        let want = u16::from_le_bytes([data[pos], data[pos + 1]]);
        let got = (crc32(&data[..pos]) & 0xffff) as u16;
        if want != got {
            return Err(StoreError::corrupt("gzip header CRC mismatch"));
        }
        pos += 2;
    }
    if data.len() < pos + 8 {
        return Err(StoreError::corrupt("gzip stream missing trailer"));
    }
    let body = &data[pos..data.len() - 8];
    let out = inflate_with_limit(body, max_out)?;
    let trailer = &data[data.len() - 8..];
    let want_crc = u32::from_le_bytes(trailer[0..4].try_into().unwrap());
    let want_len = u32::from_le_bytes(trailer[4..8].try_into().unwrap());
    if crc32(&out) != want_crc {
        return Err(StoreError::corrupt("gzip payload CRC mismatch"));
    }
    if out.len() as u32 != want_len {
        return Err(StoreError::corrupt("gzip ISIZE mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_levels() {
        let data = b"gzip container round trip with some repetition repetition".repeat(20);
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            let c = gzip_compress(&data, level);
            assert_eq!(gzip_decompress(&c).unwrap(), data, "{level:?}");
        }
    }

    #[test]
    fn header_layout() {
        let c = gzip_compress(b"x", Level::Default);
        assert_eq!(&c[0..2], &[0x1f, 0x8b]);
        assert_eq!(c[2], 8);
        assert_eq!(c[3], 0);
        assert_eq!(c[9], 255);
    }

    #[test]
    fn corrupt_payload_detected_by_crc() {
        let data = b"payload integrity matters".repeat(10);
        let mut c = gzip_compress(&data, Level::Store); // stored: flips reach payload
        let mid = c.len() / 2;
        c[mid] ^= 0x40;
        assert!(gzip_decompress(&c).is_err());
    }

    #[test]
    fn bad_magic_and_method_rejected() {
        let mut c = gzip_compress(b"abc", Level::Default);
        c[0] = 0;
        assert!(gzip_decompress(&c).is_err());
        let mut c2 = gzip_compress(b"abc", Level::Default);
        c2[2] = 7;
        assert!(gzip_decompress(&c2).is_err());
    }

    #[test]
    fn truncated_trailer_rejected() {
        let c = gzip_compress(b"abcdef", Level::Default);
        assert!(gzip_decompress(&c[..c.len() - 3]).is_err());
        assert!(gzip_decompress(&[]).is_err());
    }

    #[test]
    fn optional_header_fields_skipped() {
        // Hand-build a member with FNAME + FEXTRA around our deflate body.
        let payload = b"with optional header fields";
        let body = crate::deflate::deflate(payload, Level::Default);
        let mut c = vec![0x1f, 0x8b, 8, FEXTRA | FNAME, 0, 0, 0, 0, 0, 255];
        c.extend_from_slice(&3u16.to_le_bytes()); // XLEN
        c.extend_from_slice(b"abc"); // extra field
        c.extend_from_slice(b"file.txt\0"); // name
        c.extend_from_slice(&body);
        c.extend_from_slice(&crc32(payload).to_le_bytes());
        c.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        assert_eq!(gzip_decompress(&c).unwrap(), payload);
    }

    #[test]
    fn isize_mismatch_detected() {
        let mut c = gzip_compress(b"isize check", Level::Default);
        let n = c.len();
        c[n - 1] ^= 0xff;
        assert!(gzip_decompress(&c).is_err());
    }

    #[test]
    fn limit_enforced() {
        let data = vec![0u8; 5000];
        let c = gzip_compress(&data, Level::Default);
        assert!(gzip_decompress_with_limit(&c, 10).is_err());
    }
}
