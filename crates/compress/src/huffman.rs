//! Canonical Huffman codes: length-limited construction (package-merge)
//! and a table-driven canonical decoder, per RFC 1951 §3.2.2.

use crate::bitio::BitReader;
use kvapi::{Result, StoreError};

/// Build optimal length-limited code lengths for `freqs` (index = symbol),
/// with every assigned length ≤ `limit`. Symbols with zero frequency get
/// length 0 (no code). Uses the package-merge algorithm, which is optimal
/// under a length limit (plain Huffman is not, once depths exceed the
/// limit).
pub fn code_lengths(freqs: &[u32], limit: u8) -> Vec<u8> {
    let mut lengths = vec![0u8; freqs.len()];
    let mut items: Vec<(u32, usize)> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(s, &f)| (f, s))
        .collect();
    match items.len() {
        0 => return lengths,
        1 => {
            // A single symbol still needs one bit on the wire.
            lengths[items[0].1] = 1;
            return lengths;
        }
        _ => {}
    }
    items.sort_unstable();
    assert!(
        (items.len() as u64) <= (1u64 << limit),
        "alphabet of {} symbols cannot fit in {}-bit codes",
        items.len(),
        limit
    );

    // Package-merge. A node's `leaves` lists the original item indices it
    // contains; alphabets here are small (≤ 288 symbols, limit ≤ 15) so the
    // quadratic bookkeeping is immaterial.
    #[derive(Clone)]
    struct Node {
        weight: u64,
        leaves: Vec<u16>,
    }
    let base: Vec<Node> = items
        .iter()
        .enumerate()
        .map(|(i, &(w, _))| Node {
            weight: u64::from(w),
            leaves: vec![i as u16],
        })
        .collect();

    let mut list = base.clone();
    for _ in 1..limit {
        // Package adjacent pairs…
        let mut packaged: Vec<Node> = Vec::with_capacity(list.len() / 2);
        for pair in list.chunks_exact(2) {
            let mut leaves = pair[0].leaves.clone();
            leaves.extend_from_slice(&pair[1].leaves);
            packaged.push(Node {
                weight: pair[0].weight + pair[1].weight,
                leaves,
            });
        }
        // …then merge with the original items, keeping ascending weight.
        let mut merged = Vec::with_capacity(base.len() + packaged.len());
        let (mut i, mut j) = (0, 0);
        while i < base.len() || j < packaged.len() {
            let take_base =
                j >= packaged.len() || (i < base.len() && base[i].weight <= packaged[j].weight);
            if take_base {
                merged.push(base[i].clone());
                i += 1;
            } else {
                merged.push(packaged[j].clone());
                j += 1;
            }
        }
        list = merged;
    }

    // The first 2n-2 nodes of the final list define the solution: each
    // time an item appears in a selected node, its code length grows by 1.
    let mut depth = vec![0u8; items.len()];
    for node in list.iter().take(2 * items.len() - 2) {
        for &leaf in &node.leaves {
            depth[leaf as usize] += 1;
        }
    }
    for (i, &(_, sym)) in items.iter().enumerate() {
        lengths[sym] = depth[i];
    }
    lengths
}

/// Assign canonical code values to `lengths` (RFC 1951 §3.2.2). Returns
/// `codes[symbol]`; symbols with length 0 get code 0 (unused).
pub fn canonical_codes(lengths: &[u8]) -> Vec<u16> {
    let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut bl_count = vec![0u16; max_len + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u16; max_len + 2];
    let mut code = 0u16;
    for bits in 1..=max_len {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    let mut codes = vec![0u16; lengths.len()];
    for (sym, &l) in lengths.iter().enumerate() {
        if l > 0 {
            codes[sym] = next_code[l as usize];
            next_code[l as usize] += 1;
        }
    }
    codes
}

/// Canonical Huffman decoder built from code lengths.
///
/// Decoding is table-driven (the zlib approach): a single lookup table
/// indexed by the next `max_len` bits of the stream yields the symbol and
/// its code length in O(1), instead of walking the code bit by bit.
pub struct Decoder {
    /// table[peeked_bits] = (symbol, code length); length 0 = invalid code.
    table: Vec<(u16, u8)>,
    max_len: u8,
}

impl Decoder {
    /// Build a decoder; errors if the lengths describe an invalid
    /// (over-subscribed) code.
    pub fn new(lengths: &[u8]) -> Result<Decoder> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len == 0 {
            return Err(StoreError::corrupt("huffman table with no codes"));
        }
        let mut counts = vec![0u16; max_len as usize + 1];
        for &l in lengths {
            if l > 0 {
                counts[l as usize] += 1;
            }
        }
        // Kraft inequality check: reject over-subscribed codes. (gzip/zlib
        // accept incomplete codes in some spots; we accept them too, they
        // simply can't decode certain bit patterns.)
        let mut left = 1i64;
        for &count in counts.iter().skip(1) {
            left <<= 1;
            left -= i64::from(count);
            if left < 0 {
                return Err(StoreError::corrupt("over-subscribed huffman code"));
            }
        }
        let _ = counts; // Kraft check above is the only use
        let codes = canonical_codes(lengths);
        let mut table = vec![(0u16, 0u8); 1usize << max_len];
        for (sym, &len) in lengths.iter().enumerate() {
            if len == 0 {
                continue;
            }
            // On the wire the code appears bit-reversed in the low `len`
            // bits of the peeked value; every setting of the remaining high
            // bits maps to this symbol.
            let wire = crate::bitio::reverse_bits(codes[sym], len) as usize;
            let step = 1usize << len;
            let mut idx = wire;
            while idx < table.len() {
                table[idx] = (sym as u16, len);
                idx += step;
            }
        }
        Ok(Decoder { table, max_len })
    }

    /// Decode one symbol (bits are MSB-of-code-first per DEFLATE).
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16> {
        let (peek, avail) = r.peek_bits(u32::from(self.max_len));
        let (sym, len) = self.table[peek as usize];
        if len == 0 || u32::from(len) > avail {
            return Err(StoreError::corrupt(if avail < u32::from(self.max_len) {
                "eof inside huffman code"
            } else {
                "invalid huffman code"
            }));
        }
        r.consume(u32::from(len));
        Ok(sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;

    #[test]
    fn rfc1951_worked_example() {
        // RFC 1951 §3.2.2 example: alphabet ABCDEFGH with lengths
        // (3,3,3,3,3,2,4,4) yields these canonical codes.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        assert_eq!(
            codes,
            vec![0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]
        );
    }

    #[test]
    fn kraft_equality_for_built_codes() {
        let freqs = [5u32, 9, 12, 13, 16, 45, 0, 3];
        let lengths = code_lengths(&freqs, 15);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-i32::from(l)))
            .sum();
        assert!(
            (kraft - 1.0).abs() < 1e-12,
            "optimal code should be complete, kraft={kraft}"
        );
        // Higher frequency ⇒ not-longer code.
        assert!(lengths[5] <= lengths[0]);
        assert_eq!(lengths[6], 0, "zero-frequency symbol must get no code");
    }

    #[test]
    fn limit_is_respected() {
        // Fibonacci-ish weights force deep trees in plain Huffman.
        let freqs: Vec<u32> = {
            let mut v = vec![1u32, 1];
            for i in 2..20 {
                let next = v[i - 1] + v[i - 2];
                v.push(next);
            }
            v
        };
        for limit in [7u8, 9, 15] {
            let lengths = code_lengths(&freqs, limit);
            assert!(
                lengths.iter().all(|&l| l <= limit),
                "limit {limit} violated: {lengths:?}"
            );
            let kraft: f64 = lengths
                .iter()
                .filter(|&&l| l > 0)
                .map(|&l| 2f64.powi(-i32::from(l)))
                .sum();
            assert!(kraft <= 1.0 + 1e-12, "invalid code at limit {limit}");
        }
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let lengths = code_lengths(&[0, 0, 7, 0], 15);
        assert_eq!(lengths, vec![0, 0, 1, 0]);
    }

    #[test]
    fn empty_alphabet() {
        assert_eq!(code_lengths(&[0, 0, 0], 15), vec![0, 0, 0]);
        assert!(Decoder::new(&[0, 0, 0]).is_err());
    }

    #[test]
    fn encode_decode_round_trip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
        // Random frequency profile over a 64-symbol alphabet.
        let freqs: Vec<u32> = (0..64).map(|_| rng.gen_range(0..1000)).collect();
        let lengths = code_lengths(&freqs, 15);
        let codes = canonical_codes(&lengths);
        let dec = Decoder::new(&lengths).unwrap();
        let syms: Vec<u16> = (0..2000)
            .map(|_| loop {
                let s = rng.gen_range(0..64u16);
                if lengths[s as usize] > 0 {
                    break s;
                }
            })
            .collect();
        let mut w = BitWriter::new();
        for &s in &syms {
            w.write_code(codes[s as usize], lengths[s as usize]);
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &s in &syms {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn oversubscribed_rejected() {
        // Three 1-bit codes is impossible.
        assert!(Decoder::new(&[1, 1, 1]).is_err());
    }

    #[test]
    fn decoder_rejects_garbage_after_valid_prefix() {
        // Incomplete code: single symbol of length 2; pattern "11" is not
        // assigned.
        let lengths = [2u8];
        let dec = Decoder::new(&lengths).unwrap();
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2); // reversed or not, still '11'
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert!(dec.decode(&mut r).is_err());
    }
}
