//! # dscl-compress — client-side compression for enhanced data store clients
//!
//! The paper lists compression as a core DSCL capability: it shrinks data
//! before transmission (saving bandwidth and, for pay-per-byte cloud
//! services, money), reduces server-side storage, and lets caches hold more
//! objects. Fig. 21 measures gzip compression/decompression overhead and
//! observes that compression is several times more expensive than
//! decompression — a property this implementation shares, since the encoder
//! does LZ77 match-finding while the decoder only replays tokens.
//!
//! Implemented from scratch (no compression crate is available offline):
//!
//! * **DEFLATE** (RFC 1951): LZ77 with hash-chain match finding over a
//!   32 KiB window, stored / fixed-Huffman / dynamic-Huffman blocks, and a
//!   full inflater able to decode any standard DEFLATE stream;
//! * **gzip** (RFC 1952): header, CRC-32 and length trailer;
//! * [`GzipCodec`], a [`kvapi::codec::Codec`] stage for the DSCL pipeline.
//!
//! Property-based tests check `inflate(deflate(x)) == x` over arbitrary
//! inputs and all compression levels; known-answer tests pin CRC-32 and the
//! fixed-Huffman bit layout.

#![forbid(unsafe_code)]

pub mod bitio;
pub mod codec;
pub mod crc32;
pub mod deflate;
pub mod gzip;
pub mod huffman;
pub mod lz77;

pub use codec::GzipCodec;
pub use deflate::{deflate, inflate, Level};
pub use gzip::{gzip_compress, gzip_decompress};
