//! LZ77 match finding over a 32 KiB window with hash chains.
//!
//! Produces the token stream (`Literal` / `Match`) that the DEFLATE encoder
//! turns into Huffman-coded symbols. Match-finding effort scales with the
//! compression level, which is why compression costs several times more
//! than decompression (the paper's Fig. 21 observation).

/// DEFLATE window size.
pub const WINDOW_SIZE: usize = 32 * 1024;
/// Minimum encodable match length.
pub const MIN_MATCH: usize = 3;
/// Maximum encodable match length.
pub const MAX_MATCH: usize = 258;

/// One LZ77 token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        /// Match length, `MIN_MATCH..=MAX_MATCH`.
        len: u16,
        /// Distance, `1..=WINDOW_SIZE`.
        dist: u16,
    },
}

/// Match-finder effort knobs derived from the compression level.
#[derive(Clone, Copy, Debug)]
pub struct Effort {
    /// Maximum hash-chain links followed per position.
    pub max_chain: usize,
    /// Stop searching once a match of this length is found.
    pub good_enough: usize,
    /// Use one-step-lazy matching.
    pub lazy: bool,
}

impl Effort {
    /// Effort for a 1–9 compression level.
    pub fn for_level(level: u8) -> Effort {
        match level {
            0 | 1 => Effort {
                max_chain: 4,
                good_enough: 8,
                lazy: false,
            },
            2 | 3 => Effort {
                max_chain: 16,
                good_enough: 16,
                lazy: false,
            },
            4..=6 => Effort {
                max_chain: 64,
                good_enough: 64,
                lazy: true,
            },
            7 | 8 => Effort {
                max_chain: 256,
                good_enough: 128,
                lazy: true,
            },
            _ => Effort {
                max_chain: 1024,
                good_enough: MAX_MATCH,
                lazy: true,
            },
        }
    }
}

const HASH_BITS: usize = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (u32::from(data[i]) << 16) | (u32::from(data[i + 1]) << 8) | u32::from(data[i + 2]);
    ((v.wrapping_mul(0x9e37_79b1)) >> (32 - HASH_BITS)) as usize
}

/// Tokenize `data` with hash-chain match finding.
pub fn tokenize(data: &[u8], effort: Effort) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2 + 16);
    if n < MIN_MATCH + 1 {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    // head[h] = most recent position with hash h (+1, 0 = none);
    // prev[i % WINDOW] = previous position in the same chain (+1).
    let mut head = vec![0u32; HASH_SIZE];
    let mut prev = vec![0u32; WINDOW_SIZE];

    let insert = |head: &mut [u32], prev: &mut [u32], data: &[u8], i: usize| {
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            prev[i % WINDOW_SIZE] = head[h];
            head[h] = (i + 1) as u32;
        }
    };

    let find = |head: &[u32], prev: &[u32], i: usize, min_beat: usize| -> Option<(usize, usize)> {
        if i + MIN_MATCH > n {
            return None;
        }
        let max_len = (n - i).min(MAX_MATCH);
        let mut best_len = min_beat.max(MIN_MATCH - 1);
        let mut best_dist = 0usize;
        let mut cand = head[hash3(data, i)] as usize;
        let mut chain = effort.max_chain;
        while cand != 0 && chain > 0 {
            let j = cand - 1;
            if i - j > WINDOW_SIZE {
                break;
            }
            // Quick reject via the byte just past the current best.
            if best_len < max_len && data[j + best_len] == data[i + best_len] {
                let mut l = 0usize;
                while l < max_len && data[j + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - j;
                    if l >= effort.good_enough || l == max_len {
                        break;
                    }
                }
            }
            cand = prev[j % WINDOW_SIZE] as usize;
            chain -= 1;
        }
        if best_dist > 0 && best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    };

    let mut i = 0usize;
    while i < n {
        let here = find(&head, &prev, i, 0);
        match here {
            None => {
                tokens.push(Token::Literal(data[i]));
                insert(&mut head, &mut prev, data, i);
                i += 1;
            }
            Some((mut len, mut dist)) => {
                // One-step lazy: if the next position has a strictly better
                // match, emit a literal here instead (zlib's heuristic).
                let mut first_uninserted = i;
                if effort.lazy && i + 1 < n && len < effort.good_enough {
                    insert(&mut head, &mut prev, data, i);
                    first_uninserted = i + 1;
                    if let Some((nlen, ndist)) = find(&head, &prev, i + 1, len) {
                        if nlen > len {
                            tokens.push(Token::Literal(data[i]));
                            i += 1;
                            len = nlen;
                            dist = ndist;
                        }
                    }
                }
                tokens.push(Token::Match {
                    len: len as u16,
                    dist: dist as u16,
                });
                for k in first_uninserted.max(i)..(i + len).min(n) {
                    insert(&mut head, &mut prev, data, k);
                }
                i += len;
            }
        }
    }
    tokens
}

/// Expand a token stream back into bytes (the decoder's copy loop; also the
/// reference oracle for tokenizer tests).
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                // Overlapping copies are the point (e.g. dist=1 run fills).
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8], level: u8) {
        let tokens = tokenize(data, Effort::for_level(level));
        assert_eq!(expand(&tokens), data, "level {level}");
        for t in &tokens {
            if let Token::Match { len, dist } = t {
                assert!((MIN_MATCH..=MAX_MATCH).contains(&(*len as usize)));
                assert!((1..=WINDOW_SIZE).contains(&(*dist as usize)));
            }
        }
    }

    #[test]
    fn empty_and_tiny() {
        for level in [1, 6, 9] {
            round_trip(b"", level);
            round_trip(b"a", level);
            round_trip(b"ab", level);
            round_trip(b"abc", level);
        }
    }

    #[test]
    fn repetitive_input_uses_matches() {
        let data = b"abcabcabcabcabcabcabcabcabcabc".to_vec();
        let tokens = tokenize(&data, Effort::for_level(6));
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "repetitive data should produce matches: {tokens:?}"
        );
        assert!(tokens.len() < data.len() / 2);
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn run_of_one_byte_overlapping_match() {
        let data = vec![b'x'; 1000];
        let tokens = tokenize(&data, Effort::for_level(6));
        assert_eq!(expand(&tokens), data);
        // A long run should compress to a handful of tokens via dist-1
        // overlapping matches.
        assert!(tokens.len() <= 8, "got {} tokens", tokens.len());
    }

    #[test]
    fn random_data_round_trips_all_levels() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(21);
        let data: Vec<u8> = (0..10_000).map(|_| rng.gen()).collect();
        for level in [1, 3, 6, 9] {
            round_trip(&data, level);
        }
    }

    #[test]
    fn text_like_data_round_trips() {
        let data = "the quick brown fox jumps over the lazy dog. "
            .repeat(200)
            .into_bytes();
        for level in [1, 6, 9] {
            round_trip(&data, level);
        }
    }

    #[test]
    fn matches_never_cross_window() {
        // 40 KiB of repeating pattern with period > MIN_MATCH; every match
        // distance must stay within the 32 KiB window.
        let data: Vec<u8> = (0..40_000u32).map(|i| (i % 7) as u8).collect();
        let tokens = tokenize(&data, Effort::for_level(9));
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn expand_handles_overlap() {
        let tokens = vec![Token::Literal(b'a'), Token::Match { len: 5, dist: 1 }];
        assert_eq!(expand(&tokens), b"aaaaaa");
    }
}
