//! Interoperability against reference gzip streams.
//!
//! `tests/data/fixture.txt.gz` and `fixture_fast.txt.gz` were produced by
//! GNU gzip (`gzip -9` / `gzip -1`) from `fixture.txt`. Decoding them proves
//! the inflater handles real-world dynamic-Huffman streams with header
//! fields we did not generate ourselves.

use dscl_compress::{gzip_compress, gzip_decompress, Level};

fn fixture(name: &str) -> Vec<u8> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/");
    std::fs::read(format!("{path}{name}")).unwrap()
}

#[test]
fn decode_gnu_gzip_level9() {
    let plain = fixture("fixture.txt");
    let gz = fixture("fixture.txt.gz");
    assert_eq!(gzip_decompress(&gz).unwrap(), plain);
}

#[test]
fn decode_gnu_gzip_level1() {
    let plain = fixture("fixture.txt");
    let gz = fixture("fixture_fast.txt.gz");
    assert_eq!(gzip_decompress(&gz).unwrap(), plain);
}

#[test]
fn our_compression_of_fixture_round_trips_and_is_competitive() {
    let plain = fixture("fixture.txt");
    let reference = fixture("fixture.txt.gz");
    let ours = gzip_compress(&plain, Level::Best);
    assert_eq!(gzip_decompress(&ours).unwrap(), plain);
    // We won't beat zlib's optimizer, but should land within 3x of it on
    // this highly repetitive input.
    assert!(
        ours.len() <= reference.len() * 3,
        "our {} vs reference {}",
        ours.len(),
        reference.len()
    );
}
