//! Property-based tests: `inflate(deflate(x)) == x` for arbitrary inputs at
//! every level, plus gzip container and CRC invariants.

use dscl_compress::crc32::crc32;
use dscl_compress::{deflate, gzip_compress, gzip_decompress, inflate, Level};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deflate_round_trip_default(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let c = deflate(&data, Level::Default);
        prop_assert_eq!(inflate(&c).unwrap(), data);
    }

    #[test]
    fn deflate_round_trip_all_levels(data in proptest::collection::vec(any::<u8>(), 0..4_000)) {
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            let c = deflate(&data, level);
            prop_assert_eq!(&inflate(&c).unwrap(), &data, "level {:?}", level);
        }
    }

    /// Low-entropy inputs (few distinct bytes, lots of structure) stress the
    /// match finder and dynamic Huffman path far more than uniform noise.
    #[test]
    fn deflate_round_trip_low_entropy(
        data in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..30_000)
    ) {
        let c = deflate(&data, Level::Best);
        prop_assert_eq!(inflate(&c).unwrap(), data);
    }

    #[test]
    fn gzip_round_trip(data in proptest::collection::vec(any::<u8>(), 0..10_000)) {
        let c = gzip_compress(&data, Level::Default);
        prop_assert_eq!(gzip_decompress(&c).unwrap(), data);
    }

    /// Any single-byte corruption of a gzip member must either fail to
    /// decode or decode to something whose CRC we would have caught — i.e.
    /// it must never silently return wrong payload bytes.
    #[test]
    fn gzip_detects_single_byte_corruption(
        seed in proptest::collection::vec(any::<u8>(), 100..2_000),
        flip_pos in any::<usize>(),
        flip_bit in 0u8..8
    ) {
        let c = gzip_compress(&seed, Level::Default);
        let mut bad = c.clone();
        let pos = flip_pos % bad.len();
        bad[pos] ^= 1 << flip_bit;
        if bad == c { return Ok(()); } // no-op flip can't happen but be safe
        match gzip_decompress(&bad) {
            Err(_) => {}
            Ok(out) => prop_assert_eq!(out, seed, "corruption at byte {} silently altered payload", pos),
        }
    }

    #[test]
    fn crc32_differs_on_any_prefix_change(data in proptest::collection::vec(any::<u8>(), 1..500), pos_seed in any::<usize>()) {
        let pos = pos_seed % data.len();
        let mut changed = data.clone();
        changed[pos] ^= 0x01;
        prop_assert_ne!(crc32(&data), crc32(&changed));
    }
}
