//! [`EnhancedClient`] — tight integration of caching, encryption and
//! compression over any store.

use crate::config::{CacheContent, CachePolicy, DsclConfig};
use crate::envelope::Envelope;
use crate::stats::{DsclStats, StatsCell};
use bytes::Bytes;
use dscl_cache::Cache;
use kvapi::codec::{Codec, Pipeline};
use kvapi::value::now_millis;
use kvapi::{CondGet, Etag, KeyValue, Result, StoreStats, Versioned};
use obs::{Registry, Trace};
use std::sync::Arc;
use std::time::Duration;

// Codec-name → trace-stage mapping now lives beside the pipeline itself
// (shared with the sampling profiler's scope labels).
use kvapi::codec::{decode_stage, encode_stage};

/// Run `f` as a named stage when a trace is active, plain otherwise.
fn timed<R>(trace: &mut Option<Trace>, stage: &'static str, f: impl FnOnce() -> R) -> R {
    match trace {
        Some(t) => t.time(stage, f),
        None => f(),
    }
}

/// An enhanced data store client (paper §II): wraps a store with an
/// optional cache and an optional codec pipeline, and implements
/// [`KeyValue`] itself so applications and higher layers (UDSM) cannot tell
/// the difference — except in latency.
pub struct EnhancedClient<S> {
    store: S,
    cache: Option<Arc<dyn Cache>>,
    pipeline: Pipeline,
    config: DsclConfig,
    name: String,
    stats: StatsCell,
    registry: Option<Arc<Registry>>,
}

impl<S: KeyValue> EnhancedClient<S> {
    /// Wrap a store with default config: no cache, identity pipeline.
    pub fn new(store: S) -> EnhancedClient<S> {
        let name = format!("dscl({})", store.name());
        EnhancedClient {
            store,
            cache: None,
            pipeline: Pipeline::new(),
            config: DsclConfig::default(),
            name,
            stats: StatsCell::default(),
            registry: None,
        }
    }

    /// Attach a metrics registry. Every `get`/`put` already runs under an
    /// [`obs::Trace`] feeding the global flight recorder; a registry
    /// additionally publishes per-stage latency histograms
    /// (`dscl_stage_duration_ns{op,stage}`), per-op totals
    /// (`dscl_op_duration_ns{op}`) with trace-id exemplars, and the
    /// client's cumulative counters after every operation. Use
    /// [`obs::global()`] to share one registry process-wide, or a fresh
    /// `Registry` per client for isolation.
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// The attached registry, if any.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// Mirror [`EnhancedClient::stats`] and the attached cache's counters
    /// into the attached registry. Called automatically after traced
    /// operations; call directly before rendering metrics if you only use
    /// the explicit API.
    pub fn publish_metrics(&self) {
        let Some(reg) = &self.registry else { return };
        self.stats.snapshot().publish(reg, &self.name);
        if let Some(cache) = &self.cache {
            dscl_cache::publish_stats(cache.as_ref(), reg);
        }
    }

    /// Attach a cache (in-process, remote, or any store via `StoreCache`).
    pub fn with_cache(mut self, cache: Arc<dyn Cache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Append a codec stage (applied on writes in the order added; compress
    /// before encrypt, since ciphertext does not compress).
    pub fn with_codec(mut self, codec: Box<dyn Codec>) -> Self {
        self.pipeline = self.pipeline.then(codec);
        self
    }

    /// Replace the config.
    pub fn with_config(mut self, config: DsclConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the default TTL.
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.config.default_ttl = Some(ttl);
        self
    }

    /// Current statistics.
    pub fn stats(&self) -> DsclStats {
        self.stats.snapshot()
    }

    /// The wrapped store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<dyn Cache>> {
        self.cache.as_ref()
    }

    // ---- explicit DSCL API (the paper's second approach) ----

    /// Run the codec pipeline forward (what a `put` sends to the server).
    pub fn encode_value(&self, plain: &[u8]) -> Result<Vec<u8>> {
        self.pipeline.encode(plain)
    }

    /// Invert [`EnhancedClient::encode_value`].
    pub fn decode_value(&self, encoded: &[u8]) -> Result<Vec<u8>> {
        self.pipeline.decode(encoded)
    }

    /// Explicitly place a value in the cache with a TTL, bypassing the
    /// store entirely.
    pub fn cache_put(&self, key: &str, plain: &[u8], ttl: Option<Duration>) -> Result<()> {
        let Some(cache) = &self.cache else {
            return Ok(());
        };
        let (payload, encoded) = match self.config.cache_content {
            CacheContent::Plaintext => (Bytes::copy_from_slice(plain), false),
            CacheContent::Encoded => (Bytes::from(self.pipeline.encode(plain)?), true),
        };
        let etag = Etag::of_bytes(plain);
        let env = Envelope::new(etag, self.config.ttl_ms(ttl), encoded, payload);
        cache.put(key, env.encode());
        Ok(())
    }

    /// Explicit cache lookup. Returns the plaintext if a *fresh* entry is
    /// present; never touches the store.
    pub fn cache_get(&self, key: &str) -> Result<Option<Bytes>> {
        let Some(cache) = &self.cache else {
            return Ok(None);
        };
        let Some(raw) = cache.get(key) else {
            return Ok(None);
        };
        let env = Envelope::decode(&raw)?;
        if env.is_expired(now_millis()) {
            return Ok(None);
        }
        self.materialize(&env, &mut None).map(Some)
    }

    /// Explicitly drop a cached entry.
    pub fn cache_invalidate(&self, key: &str) {
        if let Some(cache) = &self.cache {
            cache.remove(key);
        }
    }

    /// Force a revalidation round-trip for `key` regardless of expiry.
    /// Returns true when the cached copy was still current.
    pub fn revalidate(&self, key: &str) -> Result<bool> {
        let Some(cache) = &self.cache else {
            return Ok(false);
        };
        let Some(raw) = cache.get(key) else {
            return Ok(false);
        };
        let mut env = Envelope::decode(&raw)?;
        self.stats.add(&self.stats.revalidations, 1);
        // Every arm below only touches the cache while the entry is still
        // the one we revalidated: a concurrent `put` that lands while the
        // conditional get is in flight has newer data (in cache AND store),
        // and the answer to our older etag must not clobber it.
        match self.store.get_if_none_match(key, env.etag)? {
            CondGet::NotModified => {
                self.stats.add(&self.stats.revalidated_current, 1);
                env.touch();
                if self.cache_unchanged(cache, key, env.etag) {
                    cache.put(key, env.encode());
                }
                Ok(true)
            }
            CondGet::Modified(v) => {
                if self.cache_unchanged(cache, key, env.etag) {
                    self.install(key, &v, &mut None)?;
                }
                Ok(false)
            }
            CondGet::Missing => {
                if self.cache_unchanged(cache, key, env.etag) {
                    cache.remove(key);
                }
                Ok(false)
            }
        }
    }

    // ---- internals ----

    /// May this expired envelope be served in place of `err`? Requires a
    /// configured `stale_while_error` window that has not elapsed, and an
    /// error that means "store unreachable" (transport failure or shed by
    /// an open breaker) — a store that *answered* is authoritative.
    fn stale_eligible(&self, env: &Envelope, err: &kvapi::StoreError) -> bool {
        let Some(window) = self.config.stale_while_error else {
            return false;
        };
        let unreachable = err.is_transient() || matches!(err, kvapi::StoreError::Unavailable(_));
        unreachable && env.within_stale_window(now_millis(), window.as_millis() as u64)
    }

    /// Is the cached entry for `key` still the one we read (same etag)?
    /// Used to avoid clobbering an envelope a concurrent `put` installed
    /// while a revalidation round trip was in flight.
    fn cache_unchanged(&self, cache: &Arc<dyn Cache>, key: &str, etag: Etag) -> bool {
        cache
            .get(key)
            .and_then(|raw| Envelope::decode(&raw).ok())
            .is_some_and(|current| current.etag == etag)
    }

    /// Run the decode pipeline, attributing per-codec time to the trace.
    fn decode_traced(&self, data: &[u8], trace: &mut Option<Trace>) -> Result<Vec<u8>> {
        match trace {
            Some(t) => self
                .pipeline
                .decode_with(data, |name, d| t.add(decode_stage(name), d)),
            None => self.pipeline.decode(data),
        }
    }

    /// Run the encode pipeline, attributing per-codec time to the trace.
    fn encode_traced(&self, data: &[u8], trace: &mut Option<Trace>) -> Result<Vec<u8>> {
        match trace {
            Some(t) => self
                .pipeline
                .encode_with(data, |name, d| t.add(encode_stage(name), d)),
            None => self.pipeline.encode(data),
        }
    }

    /// Extract plaintext from an envelope.
    fn materialize(&self, env: &Envelope, trace: &mut Option<Trace>) -> Result<Bytes> {
        if env.encoded {
            Ok(Bytes::from(self.decode_traced(&env.payload, trace)?))
        } else {
            Ok(env.payload.clone())
        }
    }

    /// Put a freshly fetched versioned value into the cache; returns the
    /// plaintext.
    fn install(&self, key: &str, v: &Versioned, trace: &mut Option<Trace>) -> Result<Bytes> {
        let plain = Bytes::from(self.decode_traced(&v.data, trace)?);
        if let Some(cache) = &self.cache {
            let (payload, encoded) = match self.config.cache_content {
                CacheContent::Plaintext => (plain.clone(), false),
                CacheContent::Encoded => (v.data.clone(), true),
            };
            let env = Envelope::new(v.etag, self.config.ttl_ms(None), encoded, payload);
            cache.put(key, env.encode());
        }
        Ok(plain)
    }

    /// `put` with an explicit TTL override for the cached copy.
    pub fn put_with_ttl(&self, key: &str, value: &[u8], ttl: Option<Duration>) -> Result<()> {
        let (mut trace, scope) = self.begin_op("put");
        let out = self.put_inner(key, value, ttl, &mut trace);
        self.finish_op(trace, scope, out.as_ref().err());
        out
    }

    /// Begin a traced operation: join the caller's active trace (child
    /// context) or mint a new root, and activate the context so nested
    /// layers — resilience retries, store clients returning server spans —
    /// report into this operation.
    fn begin_op(&self, op: &'static str) -> (Option<Trace>, obs::ctx::ContextScope) {
        let ctx = match obs::ctx::current() {
            Some(parent) => parent.child(),
            None => obs::TraceContext::new_root(),
        };
        (
            Some(Trace::begin(op).with_ctx(ctx)),
            obs::ctx::activate(ctx),
        )
    }

    /// End a traced operation: drain the scope into the trace, then publish
    /// histograms + counters when a registry is attached, or hand the trace
    /// straight to the flight recorder otherwise.
    fn finish_op(
        &self,
        trace: Option<Trace>,
        scope: obs::ctx::ContextScope,
        error: Option<&kvapi::StoreError>,
    ) {
        let Some(mut t) = trace else { return };
        t.absorb_scope(scope.finish());
        if let Some(e) = error {
            t.set_error(e.to_string());
        }
        match &self.registry {
            Some(reg) => {
                t.finish(reg, "dscl");
                self.publish_metrics();
            }
            None => {
                t.complete("dscl");
            }
        }
    }

    fn put_inner(
        &self,
        key: &str,
        value: &[u8],
        ttl: Option<Duration>,
        trace: &mut Option<Trace>,
    ) -> Result<()> {
        let encoded = self.encode_traced(value, trace)?;
        self.stats
            .add(&self.stats.bytes_encoded, value.len() as u64);
        self.stats
            .add(&self.stats.bytes_stored, encoded.len() as u64);
        if encoded.len() != value.len() {
            if let Some(t) = trace.as_mut() {
                t.event("codec", format!("in={} out={}", value.len(), encoded.len()));
            }
        }
        // put_versioned returns the store's authoritative etag from the
        // write itself — no extra round trip.
        let etag = timed(trace, "store_io", || {
            self.store.put_versioned(key, &encoded)
        })?;
        match (&self.cache, self.config.policy) {
            (Some(cache), CachePolicy::WriteThrough) => {
                let (payload, enc_flag) = match self.config.cache_content {
                    CacheContent::Plaintext => (Bytes::copy_from_slice(value), false),
                    CacheContent::Encoded => (Bytes::from(encoded), true),
                };
                let env = Envelope::new(etag, self.config.ttl_ms(ttl), enc_flag, payload);
                timed(trace, "cache_write", || cache.put(key, env.encode()));
            }
            (Some(cache), CachePolicy::Invalidate) => {
                cache.remove(key);
            }
            _ => {}
        }
        Ok(())
    }

    /// Record a batch's size so RTT amortization is visible in `/metrics`
    /// (`dscl_batch_size{op}`); per-batch latency lands in
    /// `dscl_op_duration_ns{op}` via the trace.
    fn record_batch(&self, op: &'static str, n: usize) {
        if let Some(reg) = &self.registry {
            reg.histogram("dscl_batch_size", &[("op", op)])
                .record(n as u64);
        }
    }

    /// Batch get: one pass over the cache, then one grouped store fetch for
    /// every miss. Expired entries are treated as misses here — the batch
    /// path trades per-key revalidation round trips for a single grouped
    /// refetch, which is the better deal once more than one key is stale.
    fn get_many_inner(
        &self,
        keys: &[&str],
        trace: &mut Option<Trace>,
    ) -> Result<Vec<Option<Bytes>>> {
        let mut out: Vec<Option<Bytes>> = vec![None; keys.len()];
        let mut miss_positions: Vec<usize> = Vec::new();
        // Expired envelopes held back as serve-stale fallbacks (only
        // collected when a `stale_while_error` window is configured).
        let mut stale_envs: Vec<(usize, Envelope)> = Vec::new();
        if let Some(cache) = &self.cache {
            let now = now_millis();
            let keep_stale = self.config.stale_while_error.is_some();
            let mut hit_envs: Vec<(usize, Envelope)> = Vec::new();
            timed(trace, "cache_lookup", || {
                for (i, key) in keys.iter().enumerate() {
                    match cache.get(key) {
                        Some(raw) => match Envelope::decode(&raw) {
                            Ok(env) if !env.is_expired(now) => hit_envs.push((i, env)),
                            Ok(env) if keep_stale => {
                                // Expired but kept (in cache too) as the
                                // fallback should the grouped fetch fail.
                                stale_envs.push((i, env));
                                miss_positions.push(i);
                            }
                            _ => {
                                // Expired or foreign bytes: refetch with the
                                // rest of the batch.
                                cache.remove(key);
                                miss_positions.push(i);
                            }
                        },
                        None => miss_positions.push(i),
                    }
                }
            });
            self.stats
                .add(&self.stats.cache_hits, hit_envs.len() as u64);
            self.stats
                .add(&self.stats.cache_misses, miss_positions.len() as u64);
            if let Some(t) = trace.as_mut() {
                t.event(
                    "cache",
                    format!("hits={} misses={}", hit_envs.len(), miss_positions.len()),
                );
            }
            // Materialize outside the lookup stage so codec time is
            // attributed to the decode stages, as on the single-key path.
            for (i, env) in &hit_envs {
                out[*i] = Some(self.materialize(env, trace)?);
            }
        } else {
            miss_positions = (0..keys.len()).collect();
        }
        if miss_positions.is_empty() {
            return Ok(out);
        }
        let miss_keys: Vec<&str> = miss_positions.iter().map(|&i| keys[i]).collect();
        let fetched = match timed(trace, "store_io", || {
            self.store.get_many_versioned(&miss_keys)
        }) {
            Ok(f) => f,
            // Store unreachable: the batch can still succeed, but only if
            // EVERY missing position has an expired copy inside its grace
            // window — a partial answer would silently misreport the rest
            // as absent.
            Err(e)
                if stale_envs.len() == miss_positions.len()
                    && !stale_envs.is_empty()
                    && stale_envs
                        .iter()
                        .all(|(_, env)| self.stale_eligible(env, &e)) =>
            {
                self.stats
                    .add(&self.stats.stale_serves, stale_envs.len() as u64);
                if let Some(t) = trace.as_mut() {
                    t.event(
                        "cache",
                        format!("stale_serve x{} after: {e}", stale_envs.len()),
                    );
                }
                for (i, env) in &stale_envs {
                    out[*i] = Some(self.materialize(env, trace)?);
                }
                return Ok(out);
            }
            Err(e) => return Err(e),
        };
        if fetched.len() != miss_keys.len() {
            return Err(kvapi::StoreError::protocol(format!(
                "store answered {} of {} batched gets",
                fetched.len(),
                miss_keys.len()
            )));
        }
        for (&pos, v) in miss_positions.iter().zip(fetched) {
            match v {
                Some(v) => out[pos] = Some(self.install(keys[pos], &v, trace)?),
                None => {
                    // A retained stale entry whose key is gone at the store
                    // must not linger as a future fallback.
                    if let Some(cache) = &self.cache {
                        cache.remove(keys[pos]);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Batch put: per-key codec work, one grouped store write, then one
    /// cache pass applying the write policy per key.
    fn put_many_inner(&self, entries: &[(&str, &[u8])], trace: &mut Option<Trace>) -> Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let mut encoded = Vec::with_capacity(entries.len());
        for (_, value) in entries {
            let e = self.encode_traced(value, trace)?;
            self.stats
                .add(&self.stats.bytes_encoded, value.len() as u64);
            self.stats.add(&self.stats.bytes_stored, e.len() as u64);
            encoded.push(e);
        }
        let store_entries: Vec<(&str, &[u8])> = entries
            .iter()
            .zip(&encoded)
            .map(|(&(k, _), e)| (k, e.as_slice()))
            .collect();
        let etags = timed(trace, "store_io", || {
            self.store.put_many_versioned(&store_entries)
        })?;
        if etags.len() != entries.len() {
            return Err(kvapi::StoreError::protocol(format!(
                "store answered {} of {} batched puts",
                etags.len(),
                entries.len()
            )));
        }
        match (&self.cache, self.config.policy) {
            (Some(cache), CachePolicy::WriteThrough) => {
                timed(trace, "cache_write", || {
                    // Batch order, so a duplicate key caches its last write —
                    // matching what the store now holds.
                    for ((&(key, value), enc), &etag) in entries.iter().zip(&encoded).zip(&etags) {
                        let (payload, enc_flag) = match self.config.cache_content {
                            CacheContent::Plaintext => (Bytes::copy_from_slice(value), false),
                            CacheContent::Encoded => (Bytes::from(enc.clone()), true),
                        };
                        let env = Envelope::new(etag, self.config.ttl_ms(None), enc_flag, payload);
                        cache.put(key, env.encode());
                    }
                });
            }
            (Some(cache), CachePolicy::Invalidate) => {
                for (key, _) in entries {
                    cache.remove(key);
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn get_inner(&self, key: &str, trace: &mut Option<Trace>) -> Result<Option<Bytes>> {
        // 1. Fresh cache entry → hit.
        if let Some(cache) = &self.cache {
            if let Some(raw) = timed(trace, "cache_lookup", || cache.get(key)) {
                match Envelope::decode(&raw) {
                    Ok(mut env) => {
                        if !env.is_expired(now_millis()) {
                            self.stats.add(&self.stats.cache_hits, 1);
                            if let Some(t) = trace.as_mut() {
                                t.event("cache", "hit");
                            }
                            return self.materialize(&env, trace).map(Some);
                        }
                        // 2. Expired entry → revalidate (paper Fig. 7).
                        if self.config.revalidate {
                            self.stats.add(&self.stats.revalidations, 1);
                            let cond = timed(trace, "store_io", || {
                                self.store.get_if_none_match(key, env.etag)
                            });
                            match cond {
                                Ok(CondGet::NotModified) => {
                                    self.stats.add(&self.stats.revalidated_current, 1);
                                    if let Some(t) = trace.as_mut() {
                                        t.event("cache", "revalidated current");
                                    }
                                    env.touch();
                                    cache.put(key, env.encode());
                                    return self.materialize(&env, trace).map(Some);
                                }
                                Ok(CondGet::Modified(v)) => {
                                    return self.install(key, &v, trace).map(Some);
                                }
                                Ok(CondGet::Missing) => {
                                    cache.remove(key);
                                    return Ok(None);
                                }
                                // Store unreachable: inside the configured
                                // grace window the expired copy beats an
                                // error (§III: the cache carries the app
                                // through poor connectivity).
                                Err(e) if self.stale_eligible(&env, &e) => {
                                    self.stats.add(&self.stats.stale_serves, 1);
                                    if let Some(t) = trace.as_mut() {
                                        t.event("cache", format!("stale_serve after: {e}"));
                                    }
                                    return self.materialize(&env, trace).map(Some);
                                }
                                Err(e) => return Err(e),
                            }
                        }
                        // Expired, revalidation disabled: refetch, falling
                        // back to the stale copy when the store is down.
                        if self.config.stale_while_error.is_some() {
                            self.stats.add(&self.stats.cache_misses, 1);
                            let fetched =
                                timed(trace, "store_io", || self.store.get_versioned(key));
                            return match fetched {
                                Ok(Some(v)) => self.install(key, &v, trace).map(Some),
                                Ok(None) => {
                                    cache.remove(key);
                                    Ok(None)
                                }
                                Err(e) if self.stale_eligible(&env, &e) => {
                                    self.stats.add(&self.stats.stale_serves, 1);
                                    if let Some(t) = trace.as_mut() {
                                        t.event("cache", format!("stale_serve after: {e}"));
                                    }
                                    self.materialize(&env, trace).map(Some)
                                }
                                Err(e) => Err(e),
                            };
                        }
                        cache.remove(key);
                    }
                    Err(_) => {
                        // Foreign bytes in the cache namespace: drop them.
                        cache.remove(key);
                    }
                }
            }
            self.stats.add(&self.stats.cache_misses, 1);
            if let Some(t) = trace.as_mut() {
                t.event("cache", "miss");
            }
        }
        // 3. Miss → fetch, decode, populate.
        match timed(trace, "store_io", || self.store.get_versioned(key))? {
            None => Ok(None),
            Some(v) => self.install(key, &v, trace).map(Some),
        }
    }
}

impl<S: KeyValue> KeyValue for EnhancedClient<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        self.put_with_ttl(key, value, None)
    }

    fn get(&self, key: &str) -> Result<Option<Bytes>> {
        let (mut trace, scope) = self.begin_op("get");
        let out = self.get_inner(key, &mut trace);
        self.finish_op(trace, scope, out.as_ref().err());
        out
    }

    fn delete(&self, key: &str) -> Result<bool> {
        if let Some(cache) = &self.cache {
            cache.remove(key);
        }
        self.store.delete(key)
    }

    fn contains(&self, key: &str) -> Result<bool> {
        if let Some(cache) = &self.cache {
            if let Some(raw) = cache.get(key) {
                if let Ok(env) = Envelope::decode(&raw) {
                    if !env.is_expired(now_millis()) {
                        return Ok(true);
                    }
                }
            }
        }
        self.store.contains(key)
    }

    fn keys(&self) -> Result<Vec<String>> {
        self.store.keys()
    }

    fn clear(&self) -> Result<()> {
        if let Some(cache) = &self.cache {
            cache.clear();
        }
        self.store.clear()
    }

    fn stats(&self) -> Result<StoreStats> {
        self.store.stats()
    }

    fn get_many(&self, keys: &[&str]) -> Result<Vec<Option<Bytes>>> {
        self.record_batch("get_many", keys.len());
        let (mut trace, scope) = self.begin_op("get_many");
        let out = self.get_many_inner(keys, &mut trace);
        self.finish_op(trace, scope, out.as_ref().err());
        out
    }

    fn put_many(&self, entries: &[(&str, &[u8])]) -> Result<()> {
        self.record_batch("put_many", entries.len());
        let (mut trace, scope) = self.begin_op("put_many");
        let out = self.put_many_inner(entries, &mut trace);
        self.finish_op(trace, scope, out.as_ref().err());
        out
    }

    fn delete_many(&self, keys: &[&str]) -> Result<Vec<bool>> {
        self.record_batch("delete_many", keys.len());
        if let Some(cache) = &self.cache {
            for key in keys {
                cache.remove(key);
            }
        }
        self.store.delete_many(keys)
    }

    fn sync(&self) -> Result<()> {
        self.store.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscl_cache::InProcessLru;
    use dscl_compress::GzipCodec;
    use dscl_crypto::AesCodec;
    use kvapi::mem::MemKv;
    use kvapi::StoreError;
    use parking_lot::Mutex;

    fn lru() -> Arc<dyn Cache> {
        Arc::new(InProcessLru::new(1 << 22))
    }

    #[test]
    fn contract_plain() {
        kvapi::contract::run_all(&EnhancedClient::new(MemKv::new("m")));
    }

    #[test]
    fn contract_with_cache_and_codecs() {
        let client = EnhancedClient::new(MemKv::new("m"))
            .with_cache(lru())
            .with_codec(Box::new(GzipCodec::default()))
            .with_codec(Box::new(AesCodec::aes128(&[7u8; 16])));
        kvapi::contract::run_all(&client);
    }

    /// A store that counts gets, to observe cache effectiveness.
    struct CountingStore {
        inner: MemKv,
        gets: std::sync::atomic::AtomicU64,
        cond_gets: std::sync::atomic::AtomicU64,
        batch_gets: std::sync::atomic::AtomicU64,
    }
    impl CountingStore {
        fn new() -> Self {
            CountingStore {
                inner: MemKv::new("counted"),
                gets: Default::default(),
                cond_gets: Default::default(),
                batch_gets: Default::default(),
            }
        }
        fn gets(&self) -> u64 {
            self.gets.load(std::sync::atomic::Ordering::Relaxed)
        }
        fn cond_gets(&self) -> u64 {
            self.cond_gets.load(std::sync::atomic::Ordering::Relaxed)
        }
        fn batch_gets(&self) -> u64 {
            self.batch_gets.load(std::sync::atomic::Ordering::Relaxed)
        }
    }
    impl KeyValue for CountingStore {
        fn name(&self) -> &str {
            "counted"
        }
        fn put(&self, k: &str, v: &[u8]) -> Result<()> {
            self.inner.put(k, v)
        }
        fn get(&self, k: &str) -> Result<Option<Bytes>> {
            self.gets.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.get(k)
        }
        fn get_versioned(&self, k: &str) -> Result<Option<Versioned>> {
            self.gets.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.get_versioned(k)
        }
        fn get_if_none_match(&self, k: &str, etag: Etag) -> Result<CondGet> {
            self.cond_gets
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.get_if_none_match(k, etag)
        }
        fn get_many_versioned(&self, keys: &[&str]) -> Result<Vec<Option<Versioned>>> {
            self.batch_gets
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.get_many_versioned(keys)
        }
        fn delete(&self, k: &str) -> Result<bool> {
            self.inner.delete(k)
        }
        fn keys(&self) -> Result<Vec<String>> {
            self.inner.keys()
        }
        fn clear(&self) -> Result<()> {
            self.inner.clear()
        }
    }

    #[test]
    fn cached_reads_skip_the_store() {
        let client = EnhancedClient::new(CountingStore::new()).with_cache(lru());
        client.put("k", b"value").unwrap();
        for _ in 0..10 {
            assert_eq!(client.get("k").unwrap().unwrap(), &b"value"[..]);
        }
        // Write-through populated the cache; no get should reach the store.
        assert_eq!(client.store().gets(), 0, "reads leaked past the cache");
        assert_eq!(client.stats().cache_hits, 10);
    }

    #[test]
    fn invalidate_policy_repopulates_on_read() {
        let cfg = DsclConfig {
            policy: CachePolicy::Invalidate,
            ..Default::default()
        };
        let client = EnhancedClient::new(CountingStore::new())
            .with_cache(lru())
            .with_config(cfg);
        client.put("k", b"v1").unwrap();
        assert_eq!(client.get("k").unwrap().unwrap(), &b"v1"[..]); // miss → store
        assert_eq!(client.store().gets(), 1);
        assert_eq!(client.get("k").unwrap().unwrap(), &b"v1"[..]); // now cached
        assert_eq!(client.store().gets(), 1);
        client.put("k", b"v2").unwrap(); // invalidates
        assert_eq!(client.get("k").unwrap().unwrap(), &b"v2"[..]);
        assert_eq!(client.store().gets(), 2);
    }

    #[test]
    fn expired_entries_revalidate_not_refetch() {
        let client = EnhancedClient::new(CountingStore::new())
            .with_cache(lru())
            .with_ttl(Duration::from_millis(30));
        client.put("k", b"stable value").unwrap();
        assert_eq!(client.get("k").unwrap().unwrap(), &b"stable value"[..]);
        std::thread::sleep(Duration::from_millis(40));
        // Expired → conditional get → NotModified (value unchanged).
        assert_eq!(client.get("k").unwrap().unwrap(), &b"stable value"[..]);
        assert_eq!(client.store().cond_gets(), 1, "should have revalidated");
        assert_eq!(
            client.store().gets(),
            0,
            "revalidation must not refetch the body"
        );
        let s = client.stats();
        assert_eq!(s.revalidations, 1);
        assert_eq!(s.revalidated_current, 1);
        // Touch refreshed the TTL: an immediate read is a plain hit again.
        assert_eq!(client.get("k").unwrap().unwrap(), &b"stable value"[..]);
        assert_eq!(client.store().cond_gets(), 1);
    }

    #[test]
    fn expired_entries_fetch_new_version_when_changed() {
        let client = EnhancedClient::new(CountingStore::new())
            .with_cache(lru())
            .with_ttl(Duration::from_millis(30));
        client.put("k", b"old").unwrap();
        assert_eq!(client.get("k").unwrap().unwrap(), &b"old"[..]);
        // Out-of-band update (another client writing directly to the store).
        client.store().inner.put("k", b"new").unwrap();
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(client.get("k").unwrap().unwrap(), &b"new"[..]);
        // And the fresh value is cached again.
        assert_eq!(client.get("k").unwrap().unwrap(), &b"new"[..]);
        assert_eq!(client.stats().revalidated_current, 0);
    }

    #[test]
    fn deleted_at_store_detected_on_revalidation() {
        let client = EnhancedClient::new(CountingStore::new())
            .with_cache(lru())
            .with_ttl(Duration::from_millis(20));
        client.put("k", b"v").unwrap();
        assert!(client.get("k").unwrap().is_some());
        client.store().inner.delete("k").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            client.get("k").unwrap(),
            None,
            "stale cache must not resurrect deletes"
        );
        assert_eq!(client.get("k").unwrap(), None);
    }

    #[test]
    fn compression_reduces_stored_bytes() {
        let client =
            EnhancedClient::new(MemKv::new("m")).with_codec(Box::new(GzipCodec::default()));
        let text = "very repetitive content ".repeat(200);
        client.put("doc", text.as_bytes()).unwrap();
        let s = client.stats();
        assert!(s.bytes_stored < s.bytes_encoded / 5, "{s:?}");
        // Raw store holds gzip, client round-trips plaintext.
        let raw = client.store().get("doc").unwrap().unwrap();
        assert_eq!(&raw[..2], &[0x1f, 0x8b], "store should hold gzip bytes");
        assert_eq!(client.get("doc").unwrap().unwrap(), text.as_bytes());
    }

    #[test]
    fn encryption_hides_plaintext_from_store_and_cache() {
        let cache = lru();
        let cfg = DsclConfig {
            cache_content: CacheContent::Encoded,
            ..Default::default()
        };
        let client = EnhancedClient::new(MemKv::new("m"))
            .with_cache(cache.clone())
            .with_codec(Box::new(AesCodec::aes128(&[1u8; 16])))
            .with_config(cfg);
        client.put("secret", b"attack at dawn").unwrap();
        let raw_store = client.store().get("secret").unwrap().unwrap();
        assert!(
            !raw_store.windows(6).any(|w| w == b"attack"),
            "plaintext leaked to store"
        );
        let raw_cache = cache.get("secret").unwrap();
        assert!(
            !raw_cache.windows(6).any(|w| w == b"attack"),
            "plaintext leaked to cache"
        );
        assert_eq!(
            client.get("secret").unwrap().unwrap(),
            &b"attack at dawn"[..]
        );
        assert_eq!(client.stats().cache_hits, 1);
    }

    #[test]
    fn explicit_api_works_without_store() {
        let client = EnhancedClient::new(MemKv::new("m")).with_cache(lru());
        client
            .cache_put("side", b"cached only", Some(Duration::from_secs(60)))
            .unwrap();
        assert_eq!(
            client.cache_get("side").unwrap().unwrap(),
            &b"cached only"[..]
        );
        assert_eq!(client.store().get("side").unwrap(), None, "store untouched");
        client.cache_invalidate("side");
        assert_eq!(client.cache_get("side").unwrap(), None);
    }

    #[test]
    fn explicit_revalidate() {
        let client = EnhancedClient::new(CountingStore::new()).with_cache(lru());
        client.put("k", b"v").unwrap();
        assert!(client.revalidate("k").unwrap(), "fresh value is current");
        client.store().inner.put("k", b"v2").unwrap();
        assert!(
            !client.revalidate("k").unwrap(),
            "changed value is not current"
        );
        assert_eq!(client.get("k").unwrap().unwrap(), &b"v2"[..]);
    }

    #[test]
    fn revalidate_missing_evicts_and_does_not_resurrect() {
        let client = EnhancedClient::new(CountingStore::new()).with_cache(lru());
        client.put("k", b"v").unwrap();
        // Deleted at the store out of band; the cached copy is now a ghost.
        client.store().inner.delete("k").unwrap();
        assert!(!client.revalidate("k").unwrap(), "missing is not current");
        assert_eq!(client.cache_get("k").unwrap(), None, "ghost evicted");
        assert_eq!(client.get("k").unwrap(), None, "no resurrect-after-delete");
    }

    /// Store whose conditional get runs a caller-supplied action after
    /// computing its answer — a deterministic interleaving of a
    /// "concurrent" put inside the revalidation round trip.
    struct RacingStore {
        inner: Arc<MemKv>,
        during_cond_get: Mutex<Option<Box<dyn FnOnce() + Send>>>,
    }
    impl KeyValue for RacingStore {
        fn name(&self) -> &str {
            "racing"
        }
        fn put(&self, k: &str, v: &[u8]) -> Result<()> {
            self.inner.put(k, v)
        }
        fn get(&self, k: &str) -> Result<Option<Bytes>> {
            self.inner.get(k)
        }
        fn get_if_none_match(&self, k: &str, e: Etag) -> Result<CondGet> {
            let answer = self.inner.get_if_none_match(k, e);
            if let Some(hook) = self.during_cond_get.lock().take() {
                hook();
            }
            answer
        }
        fn delete(&self, k: &str) -> Result<bool> {
            self.inner.delete(k)
        }
        fn keys(&self) -> Result<Vec<String>> {
            self.inner.keys()
        }
        fn clear(&self) -> Result<()> {
            self.inner.clear()
        }
    }

    #[test]
    fn revalidate_racing_put_does_not_clobber_newer_envelope() {
        let cache = lru();
        let inner = Arc::new(MemKv::new("r"));
        let client = EnhancedClient::new(RacingStore {
            inner: inner.clone(),
            during_cond_get: Mutex::new(None),
        })
        .with_cache(cache.clone());
        client.put("k", b"v1").unwrap();
        // Out-of-band store update: revalidation will answer Modified(v2).
        inner.put("k", b"v2").unwrap();
        // While the conditional get is in flight, a concurrent put lands v3
        // in the store and (write-through) the cache.
        {
            let inner = inner.clone();
            let cache = cache.clone();
            *client.store().during_cond_get.lock() = Some(Box::new(move || {
                let etag = inner.put_versioned("k", b"v3").unwrap();
                let env = Envelope::new(etag, 0, false, Bytes::from_static(b"v3"));
                cache.put("k", env.encode());
            }));
        }
        assert!(!client.revalidate("k").unwrap(), "v1 was not current");
        // The answer to the OLD etag (v2) must not overwrite the newer v3.
        assert_eq!(
            client.cache_get("k").unwrap().unwrap(),
            &b"v3"[..],
            "revalidation clobbered the concurrent put"
        );
        assert_eq!(client.get("k").unwrap().unwrap(), &b"v3"[..]);
    }

    #[test]
    fn stale_window_serves_cached_reads_while_store_is_down() {
        let flaky = FlakyStore {
            inner: MemKv::new("f"),
            fail: Mutex::new(false),
        };
        let cfg = DsclConfig {
            default_ttl: Some(Duration::from_millis(30)),
            stale_while_error: Some(Duration::from_millis(200)),
            ..Default::default()
        };
        let reg = Arc::new(obs::Registry::new());
        let client = EnhancedClient::new(flaky)
            .with_cache(lru())
            .with_config(cfg)
            .with_registry(reg.clone());
        client.put("k", b"v").unwrap();
        *client.store().fail.lock() = true;
        std::thread::sleep(Duration::from_millis(40));
        // Expired + dead store, but inside the grace window: serve stale.
        assert_eq!(client.get("k").unwrap().unwrap(), &b"v"[..]);
        assert_eq!(client.stats().stale_serves, 1);
        let text = reg.render_prometheus();
        assert!(
            text.contains("dscl_stale_serves_total{client=\"dscl(flaky)\"} 1"),
            "{text}"
        );
        // Once expiry + window have both elapsed, the error surfaces again.
        std::thread::sleep(Duration::from_millis(220));
        assert!(client.get("k").is_err(), "grace window elapsed");
        // Store heals: normal revalidation resumes.
        *client.store().fail.lock() = false;
        assert_eq!(client.get("k").unwrap().unwrap(), &b"v"[..]);
    }

    #[test]
    fn batch_get_serves_stale_when_store_is_down() {
        let flaky = FlakyStore {
            inner: MemKv::new("f"),
            fail: Mutex::new(false),
        };
        let cfg = DsclConfig {
            default_ttl: Some(Duration::from_millis(20)),
            stale_while_error: Some(Duration::from_secs(10)),
            ..Default::default()
        };
        let client = EnhancedClient::new(flaky)
            .with_cache(lru())
            .with_config(cfg);
        client
            .put_many(&[("a", b"1".as_slice()), ("b", b"2")])
            .unwrap();
        *client.store().fail.lock() = true;
        std::thread::sleep(Duration::from_millis(30));
        let got = client.get_many(&["a", "b"]).unwrap();
        assert_eq!(got[0].as_deref(), Some(b"1".as_ref()));
        assert_eq!(got[1].as_deref(), Some(b"2".as_ref()));
        assert_eq!(client.stats().stale_serves, 2);
        // A batch with any position lacking a cached fallback cannot be
        // answered partially: the store error surfaces.
        assert!(client.get_many(&["a", "never-cached"]).is_err());
    }

    #[test]
    fn traced_get_attributes_stages_and_bounds_total() {
        let reg = Arc::new(obs::Registry::new());
        let client = EnhancedClient::new(MemKv::new("m"))
            .with_cache(lru())
            .with_codec(Box::new(GzipCodec::default()))
            .with_codec(Box::new(AesCodec::aes128(&[7u8; 16])))
            .with_registry(reg.clone());
        let text = "observable payload ".repeat(300);
        client.put("k", text.as_bytes()).unwrap();
        // Cached read (hit) and a cold read (store fetch + decode).
        assert_eq!(client.get("k").unwrap().unwrap(), text.as_bytes());
        client.cache_invalidate("k");
        assert_eq!(client.get("k").unwrap().unwrap(), text.as_bytes());

        let traces = reg.recent_traces();
        assert_eq!(traces.len(), 3, "put + 2 gets");
        for t in &traces {
            assert!(t.stage_sum() <= t.total, "stage sum exceeds total: {t:?}");
        }
        // The put traced the encode pipeline and the store write.
        let put = &traces[0];
        let put_stages: Vec<&str> = put.stages.iter().map(|&(s, _)| s).collect();
        assert_eq!(
            put_stages,
            ["compress", "encrypt", "store_io", "cache_write"]
        );
        // The cold get traced lookup, store fetch, and the decode pipeline
        // in reverse codec order.
        let cold = &traces[2];
        let cold_stages: Vec<&str> = cold.stages.iter().map(|&(s, _)| s).collect();
        assert_eq!(
            cold_stages,
            ["cache_lookup", "store_io", "decrypt", "decompress"]
        );

        // Histograms landed under the documented names.
        assert_eq!(
            reg.histogram_snapshot("dscl_op_duration_ns", &[("op", "get")])
                .unwrap()
                .count,
            2
        );
        assert!(
            reg.histogram_snapshot(
                "dscl_stage_duration_ns",
                &[("op", "get"), ("stage", "decrypt")]
            )
            .unwrap()
            .count
                >= 1
        );
        // Counters were published (1 hit from the warm get, 1 miss after
        // the invalidate).
        let text = reg.render_prometheus();
        assert!(
            text.contains("dscl_cache_hits_total{client=\"dscl(m)\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("dscl_cache_misses_total{client=\"dscl(m)\"} 1"),
            "{text}"
        );
        assert!(text.contains("cache_hits_total{cache=\"lru\"} 1"), "{text}");
    }

    #[test]
    fn batch_round_trip_through_compression_encryption_and_cache() {
        let cache = lru();
        let reg = Arc::new(obs::Registry::new());
        let cfg = DsclConfig {
            cache_content: CacheContent::Encoded,
            ..Default::default()
        };
        let client = EnhancedClient::new(MemKv::new("m"))
            .with_cache(cache.clone())
            .with_codec(Box::new(GzipCodec::default()))
            .with_codec(Box::new(AesCodec::aes128(&[9u8; 16])))
            .with_config(cfg)
            .with_registry(reg.clone());
        let entries: Vec<(String, Vec<u8>)> = (0..8)
            .map(|i| {
                (
                    format!("k{i}"),
                    format!("secret payload {i} ").repeat(40).into_bytes(),
                )
            })
            .collect();
        let refs: Vec<(&str, &[u8])> = entries
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
            .collect();
        client.put_many(&refs).unwrap();

        // Write-through left one envelope per key; each decodes through the
        // full pipeline back to its plaintext, and none leaks it.
        for (k, v) in &entries {
            let raw = cache.get(k).expect("write-through cached every key");
            let env = Envelope::decode(&raw).expect("valid envelope");
            assert!(env.encoded, "Encoded config caches ciphertext");
            assert!(
                !raw.windows(6).any(|w| w == b"secret"),
                "plaintext leaked to cache"
            );
            assert_eq!(client.decode_value(&env.payload).unwrap(), *v);
        }

        // A full-batch read is served from cache: hit counter advances by
        // the batch size and the store sees nothing.
        let before = client.stats().cache_hits;
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        let got = client.get_many(&keys).unwrap();
        assert!(got
            .iter()
            .enumerate()
            .all(|(i, v)| v.as_deref() == Some(entries[i].1.as_slice())));
        assert_eq!(client.stats().cache_hits, before + 8);

        // Batch sizes and per-batch latency are observable.
        let sizes = reg
            .histogram_snapshot("dscl_batch_size", &[("op", "get_many")])
            .unwrap();
        assert_eq!((sizes.count, sizes.max), (1, 8));
        assert_eq!(
            reg.histogram_snapshot("dscl_op_duration_ns", &[("op", "put_many")])
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn batch_get_fetches_all_misses_in_one_store_call() {
        let client = EnhancedClient::new(CountingStore::new()).with_cache(lru());
        client
            .put_many(&[
                ("k0", b"v0".as_slice()),
                ("k1", b"v1"),
                ("k2", b"v2"),
                ("k3", b"v3"),
            ])
            .unwrap();
        client.cache_invalidate("k1");
        client.cache_invalidate("k3");
        let got = client
            .get_many(&["k0", "k1", "k2", "k3", "absent"])
            .unwrap();
        assert_eq!(got[1].as_deref(), Some(b"v1".as_ref()));
        assert_eq!(got[4], None);
        // Two hits from cache; the three misses shared one grouped fetch.
        assert_eq!(client.store().batch_gets(), 1);
        assert_eq!(client.store().gets(), 0);
        let s = client.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (2, 3));
        // The fetched values were installed: an identical batch is all hits.
        client.get_many(&["k0", "k1", "k2", "k3"]).unwrap();
        assert_eq!(client.store().batch_gets(), 1);
        assert_eq!(client.stats().cache_hits, 2 + 4);
    }

    #[test]
    fn batch_path_refetches_expired_instead_of_revalidating() {
        let client = EnhancedClient::new(CountingStore::new())
            .with_cache(lru())
            .with_ttl(Duration::from_millis(20));
        client.put("k", b"v").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            client.get_many(&["k"]).unwrap()[0].as_deref(),
            Some(b"v".as_ref())
        );
        assert_eq!(client.store().cond_gets(), 0, "batch path groups refetches");
        assert_eq!(client.store().batch_gets(), 1);
    }

    #[test]
    fn batch_delete_drops_cache_entries() {
        let cache = lru();
        let client = EnhancedClient::new(MemKv::new("m")).with_cache(cache.clone());
        client
            .put_many(&[("a", b"1".as_slice()), ("b", b"2")])
            .unwrap();
        assert!(cache.get("a").is_some());
        assert_eq!(
            client.delete_many(&["a", "absent", "b"]).unwrap(),
            vec![true, false, true]
        );
        assert!(cache.get("a").is_none() && cache.get("b").is_none());
        assert_eq!(client.get_many(&["a", "b"]).unwrap(), vec![None, None]);
    }

    #[test]
    fn corrupt_cache_entry_is_dropped_not_fatal() {
        let cache = lru();
        let client = EnhancedClient::new(MemKv::new("m")).with_cache(cache.clone());
        client.put("k", b"good").unwrap();
        cache.put("k", Bytes::from_static(b"not an envelope"));
        assert_eq!(client.get("k").unwrap().unwrap(), &b"good"[..]);
    }

    /// A cache wrapper whose entries can be frozen, to test store-error
    /// propagation during revalidation.
    struct FlakyStore {
        inner: MemKv,
        fail: Mutex<bool>,
    }
    impl KeyValue for FlakyStore {
        fn name(&self) -> &str {
            "flaky"
        }
        fn put(&self, k: &str, v: &[u8]) -> Result<()> {
            self.inner.put(k, v)
        }
        fn get(&self, k: &str) -> Result<Option<Bytes>> {
            if *self.fail.lock() {
                return Err(StoreError::Timeout);
            }
            self.inner.get(k)
        }
        fn get_if_none_match(&self, k: &str, e: Etag) -> Result<CondGet> {
            if *self.fail.lock() {
                return Err(StoreError::Timeout);
            }
            self.inner.get_if_none_match(k, e)
        }
        fn delete(&self, k: &str) -> Result<bool> {
            self.inner.delete(k)
        }
        fn keys(&self) -> Result<Vec<String>> {
            self.inner.keys()
        }
        fn clear(&self) -> Result<()> {
            self.inner.clear()
        }
    }

    #[test]
    fn operations_join_the_callers_trace_and_failures_reach_the_recorder() {
        let client = EnhancedClient::new(FlakyStore {
            inner: MemKv::new("f"),
            fail: Mutex::new(true),
        });
        // Simulate an enclosing operation (a UDSM call, a workload op): the
        // client must join it with a child context, not mint its own root.
        let root = obs::TraceContext::new_root();
        let scope = obs::ctx::activate(root);
        assert!(client.get("k").is_err());
        scope.finish();
        let recs = obs::FlightRecorder::global().by_trace_id(root.trace_id);
        let rec = recs
            .iter()
            .find(|r| r.origin == "dscl")
            .expect("failed get must be retained by the tail sampler");
        assert_eq!(rec.op, "get");
        assert!(rec.error.is_some(), "store error must mark the trace");
        let ctx = rec.ctx.expect("trace carries its context");
        assert_eq!(ctx.trace_id, root.trace_id);
        assert_eq!(ctx.parent_id, Some(root.span_id), "child of the caller");
    }

    #[test]
    fn traced_operations_carry_cache_and_codec_events() {
        let reg = Arc::new(obs::Registry::new());
        let client = EnhancedClient::new(MemKv::new("m"))
            .with_cache(lru())
            .with_codec(Box::new(GzipCodec::default()))
            .with_registry(reg.clone());
        let text = "compressible payload ".repeat(100);
        client.put("k", text.as_bytes()).unwrap();
        assert_eq!(client.get("k").unwrap().unwrap(), text.as_bytes());
        let traces = reg.recent_traces();
        let put = &traces[0];
        assert!(
            put.events
                .iter()
                .any(|e| e.name == "codec" && e.detail.starts_with("in=")),
            "put should note the codec ratio: {:?}",
            put.events
        );
        let get = &traces[1];
        assert!(
            get.events
                .iter()
                .any(|e| e.name == "cache" && e.detail == "hit"),
            "warm get should note the cache hit: {:?}",
            get.events
        );
    }

    #[test]
    fn fresh_cache_masks_store_outage_but_expiry_surfaces_it() {
        let flaky = FlakyStore {
            inner: MemKv::new("f"),
            fail: Mutex::new(false),
        };
        let client = EnhancedClient::new(flaky)
            .with_cache(lru())
            .with_ttl(Duration::from_millis(50));
        client.put("k", b"v").unwrap();
        *client.store().fail.lock() = true;
        // Paper §III: a well-managed cache lets the application continue
        // through poor connectivity — while the entry is fresh.
        assert_eq!(client.get("k").unwrap().unwrap(), &b"v"[..]);
        std::thread::sleep(Duration::from_millis(60));
        assert!(
            client.get("k").is_err(),
            "expired + dead store must surface the error"
        );
        *client.store().fail.lock() = false;
        assert_eq!(client.get("k").unwrap().unwrap(), &b"v"[..]);
    }
}
