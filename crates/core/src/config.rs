//! Enhanced-client configuration.

use std::time::Duration;

/// How `put`/`delete` keep the cache consistent with the store (§III's
//  "techniques for keeping caches updated and consistent").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CachePolicy {
    /// Writes update the cache with the new value (reads after writes hit).
    WriteThrough,
    /// Writes invalidate the cached entry (next read repopulates).
    Invalidate,
    /// Writes leave the cache alone (only safe for read-only cached data;
    /// provided for measurements).
    None,
}

/// What form cached payloads take.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheContent {
    /// Cache holds decoded plaintext: hits cost nothing beyond the lookup.
    Plaintext,
    /// Cache holds the codec-pipeline output (compressed and/or encrypted):
    /// hits pay decode CPU, but "a cache may be storing confidential data
    /// for extended periods of time" (§III) stays protected, and compressed
    /// entries let the same cache budget hold more objects.
    Encoded,
}

/// Tunables for [`crate::EnhancedClient`].
#[derive(Clone, Debug)]
pub struct DsclConfig {
    /// Write-side cache consistency policy.
    pub policy: CachePolicy,
    /// Default TTL for cached objects; `None` = no expiry.
    pub default_ttl: Option<Duration>,
    /// Cached payload form.
    pub cache_content: CacheContent,
    /// Revalidate expired entries with a conditional get instead of
    /// refetching (§III / Fig. 7). When false, expired entries are treated
    /// as misses.
    pub revalidate: bool,
    /// Serve an *expired* cached entry when the store is unreachable
    /// (transport failure, open circuit breaker), for up to this long past
    /// its normal expiry. `None` (the default) keeps strict behaviour:
    /// expired + dead store surfaces the error.
    pub stale_while_error: Option<Duration>,
}

impl Default for DsclConfig {
    fn default() -> Self {
        DsclConfig {
            policy: CachePolicy::WriteThrough,
            default_ttl: None,
            cache_content: CacheContent::Plaintext,
            revalidate: true,
            stale_while_error: None,
        }
    }
}

impl DsclConfig {
    /// TTL in ms (0 = none) for envelope headers.
    pub(crate) fn ttl_ms(&self, over: Option<Duration>) -> u64 {
        over.or(self.default_ttl)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = DsclConfig::default();
        assert_eq!(c.policy, CachePolicy::WriteThrough);
        assert_eq!(c.cache_content, CacheContent::Plaintext);
        assert!(c.revalidate);
        assert_eq!(c.stale_while_error, None);
        assert_eq!(c.ttl_ms(None), 0);
    }

    #[test]
    fn ttl_resolution() {
        let c = DsclConfig {
            default_ttl: Some(Duration::from_secs(2)),
            ..Default::default()
        };
        assert_eq!(c.ttl_ms(None), 2000);
        assert_eq!(c.ttl_ms(Some(Duration::from_millis(500))), 500);
    }
}
