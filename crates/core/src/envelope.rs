//! The cache-entry envelope: payload plus the metadata the DSCL needs for
//! expiration management and revalidation.
//!
//! §III: "Cache expiration times are managed by the DSCL and not by the
//! underlying cache", partly because an expired object "does not necessarily
//! mean that the object is obsolete" — the DSCL keeps it and revalidates
//! with the server using the stored entity tag. The envelope carries exactly
//! that state.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "DSE1" | flags u8 | etag u64 | stored_ms u64 | ttl_ms u64 | payload…
//! ```

use bytes::Bytes;
use kvapi::value::now_millis;
use kvapi::{Etag, Result, StoreError};

const MAGIC: &[u8; 4] = b"DSE1";
const HEADER_LEN: usize = 4 + 1 + 8 + 8 + 8;

/// Payload is stored in transformed (compressed/encrypted) form.
pub const FLAG_ENCODED: u8 = 1 << 0;

/// A cached value with DSCL metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Entity tag of the *stored* (server-side) representation — what
    /// revalidation sends as `If-None-Match`.
    pub etag: Etag,
    /// When the entry was cached / last revalidated (ms since epoch).
    pub stored_ms: u64,
    /// Time-to-live in ms; 0 = never expires.
    pub ttl_ms: u64,
    /// True when `payload` still carries the codec-pipeline encoding.
    pub encoded: bool,
    /// The value bytes.
    pub payload: Bytes,
}

impl Envelope {
    /// Build an envelope stamped "now".
    pub fn new(etag: Etag, ttl_ms: u64, encoded: bool, payload: Bytes) -> Envelope {
        Envelope {
            etag,
            stored_ms: now_millis(),
            ttl_ms,
            encoded,
            payload,
        }
    }

    /// Has the TTL elapsed at `now_ms`?
    pub fn is_expired(&self, now_ms: u64) -> bool {
        self.ttl_ms != 0 && now_ms >= self.stored_ms.saturating_add(self.ttl_ms)
    }

    /// Is this (possibly expired) entry still inside the serve-stale grace
    /// window — expiry plus `window_ms` — at `now_ms`? Immortal entries
    /// (ttl 0) are always usable.
    pub fn within_stale_window(&self, now_ms: u64, window_ms: u64) -> bool {
        self.ttl_ms == 0
            || now_ms
                < self
                    .stored_ms
                    .saturating_add(self.ttl_ms)
                    .saturating_add(window_ms)
    }

    /// Refresh the stored timestamp (after a successful revalidation: the
    /// object was confirmed current, so its TTL restarts).
    pub fn touch(&mut self) {
        self.stored_ms = now_millis();
    }

    /// Serialize for placement in a byte cache.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(MAGIC);
        out.push(if self.encoded { FLAG_ENCODED } else { 0 });
        out.extend_from_slice(&self.etag.0.to_le_bytes());
        out.extend_from_slice(&self.stored_ms.to_le_bytes());
        out.extend_from_slice(&self.ttl_ms.to_le_bytes());
        out.extend_from_slice(&self.payload);
        Bytes::from(out)
    }

    /// Deserialize from a byte cache entry.
    pub fn decode(data: &[u8]) -> Result<Envelope> {
        if data.len() < HEADER_LEN || &data[..4] != MAGIC {
            return Err(StoreError::corrupt("not a DSCL cache envelope"));
        }
        let flags = data[4];
        if flags & !FLAG_ENCODED != 0 {
            return Err(StoreError::corrupt("unknown envelope flags"));
        }
        let etag = Etag(u64::from_le_bytes(data[5..13].try_into().expect("sized")));
        let stored_ms = u64::from_le_bytes(data[13..21].try_into().expect("sized"));
        let ttl_ms = u64::from_le_bytes(data[21..29].try_into().expect("sized"));
        Ok(Envelope {
            etag,
            stored_ms,
            ttl_ms,
            encoded: flags & FLAG_ENCODED != 0,
            payload: Bytes::copy_from_slice(&data[HEADER_LEN..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let e = Envelope::new(
            Etag(0xdead_beef),
            5000,
            true,
            Bytes::from_static(b"payload"),
        );
        let decoded = Envelope::decode(&e.encode()).unwrap();
        assert_eq!(decoded, e);
        let plain = Envelope::new(Etag(1), 0, false, Bytes::new());
        assert_eq!(Envelope::decode(&plain.encode()).unwrap(), plain);
    }

    #[test]
    fn expiry_logic() {
        let mut e = Envelope::new(Etag(1), 100, false, Bytes::from_static(b"x"));
        let born = e.stored_ms;
        assert!(!e.is_expired(born));
        assert!(!e.is_expired(born + 99));
        assert!(e.is_expired(born + 100));
        assert!(e.is_expired(born + 10_000));
        // ttl 0 = immortal.
        e.ttl_ms = 0;
        assert!(!e.is_expired(u64::MAX));
    }

    #[test]
    fn stale_window_extends_past_expiry() {
        let e = Envelope::new(Etag(1), 100, false, Bytes::from_static(b"x"));
        let born = e.stored_ms;
        assert!(e.within_stale_window(born + 150, 100), "inside grace");
        assert!(!e.within_stale_window(born + 200, 100), "grace elapsed");
        let immortal = Envelope::new(Etag(1), 0, false, Bytes::from_static(b"x"));
        assert!(immortal.within_stale_window(u64::MAX, 0));
    }

    #[test]
    fn touch_restarts_ttl() {
        let mut e = Envelope::new(Etag(1), 50, false, Bytes::from_static(b"x"));
        e.stored_ms -= 60; // pretend it aged out
        assert!(e.is_expired(now_millis()));
        e.touch();
        assert!(!e.is_expired(now_millis()));
    }

    #[test]
    fn garbage_rejected() {
        assert!(Envelope::decode(b"").is_err());
        assert!(Envelope::decode(b"too short").is_err());
        assert!(Envelope::decode(&[0u8; 64]).is_err());
        // Unknown flag bit.
        let mut bytes = Envelope::new(Etag(1), 0, false, Bytes::new())
            .encode()
            .to_vec();
        bytes[4] = 0x80;
        assert!(Envelope::decode(&bytes).is_err());
    }
}
