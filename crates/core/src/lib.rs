//! # dscl — the Data Store Client Library
//!
//! This crate is the paper's primary contribution: a library that gives any
//! data store client **integrated caching, encryption, and compression**
//! (§II), with expiration-time management and revalidation handled by the
//! library rather than the underlying cache (§III).
//!
//! The paper describes three ways applications consume these capabilities;
//! all three exist here:
//!
//! 1. **Tight integration** — [`EnhancedClient`] wraps any
//!    [`kvapi::KeyValue`] store and itself implements `KeyValue`: every
//!    `get` consults the cache (with revalidation on expiry), every `put`
//!    runs the codec pipeline and keeps the cache consistent. The
//!    application keeps calling ordinary store methods; the enhancement is
//!    transparent. (In the paper this is "modifying the data store client
//!    source" — in Rust, generic wrapping achieves it without source
//!    changes.)
//! 2. **Explicit DSCL API** — the same operations exposed directly
//!    ([`EnhancedClient::cache_put`], [`cache_get`], [`revalidate`],
//!    [`encode_value`], …) for applications that need fine-grained control.
//!    As the paper notes, tight integration and the explicit API compose:
//!    "using a combination of the first and second caching approaches is
//!    often desirable."
//! 3. **Any store as a cache** — `dscl_cache::StoreCache` adapts any
//!    `KeyValue` store into the [`Cache`](dscl_cache::Cache) interface, so
//!    "any data store supported by the UDSM can function as a cache …
//!    for another data store".
//!
//! [`cache_get`]: EnhancedClient::cache_get
//! [`revalidate`]: EnhancedClient::revalidate
//! [`encode_value`]: EnhancedClient::encode_value

#![forbid(unsafe_code)]

pub mod client;
pub mod config;
pub mod envelope;
pub mod stats;

pub use client::EnhancedClient;
pub use config::{CacheContent, CachePolicy, DsclConfig};
pub use envelope::Envelope;
pub use stats::DsclStats;
