//! Counters the enhanced client keeps about its own behaviour.

use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of enhanced-client activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DsclStats {
    /// Reads served from a fresh cache entry.
    pub cache_hits: u64,
    /// Reads that went to the store because nothing (usable) was cached.
    pub cache_misses: u64,
    /// Conditional gets issued for expired entries.
    pub revalidations: u64,
    /// Revalidations answered `NotModified` (the bandwidth-saving case).
    pub revalidated_current: u64,
    /// Expired entries served anyway because the store was unreachable and
    /// a `stale_while_error` window was configured.
    pub stale_serves: u64,
    /// Bytes of plaintext passed through the encode pipeline on writes.
    pub bytes_encoded: u64,
    /// Bytes produced by the encode pipeline (measures compression benefit).
    pub bytes_stored: u64,
}

#[derive(Default)]
pub(crate) struct StatsCell {
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub revalidations: AtomicU64,
    pub revalidated_current: AtomicU64,
    pub stale_serves: AtomicU64,
    pub bytes_encoded: AtomicU64,
    pub bytes_stored: AtomicU64,
}

impl DsclStats {
    /// Mirror these cumulative counters into an [`obs::Registry`]
    /// (collector-style: `Counter::set` with the current totals), labeled
    /// with the owning client's name.
    pub fn publish(&self, registry: &obs::Registry, client: &str) {
        let pairs = [
            ("dscl_cache_hits_total", self.cache_hits),
            ("dscl_cache_misses_total", self.cache_misses),
            ("dscl_revalidations_total", self.revalidations),
            ("dscl_revalidated_current_total", self.revalidated_current),
            ("dscl_stale_serves_total", self.stale_serves),
            ("dscl_bytes_encoded_total", self.bytes_encoded),
            ("dscl_bytes_stored_total", self.bytes_stored),
        ];
        for (name, value) in pairs {
            registry.counter(name, &[("client", client)]).set(value);
        }
    }
}

impl StatsCell {
    pub fn snapshot(&self) -> DsclStats {
        DsclStats {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            revalidations: self.revalidations.load(Ordering::Relaxed),
            revalidated_current: self.revalidated_current.load(Ordering::Relaxed),
            stale_serves: self.stale_serves.load(Ordering::Relaxed),
            bytes_encoded: self.bytes_encoded.load(Ordering::Relaxed),
            bytes_stored: self.bytes_stored.load(Ordering::Relaxed),
        }
    }

    pub fn add(&self, field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let c = StatsCell::default();
        c.add(&c.cache_hits, 3);
        c.add(&c.bytes_encoded, 100);
        c.add(&c.bytes_stored, 40);
        let s = c.snapshot();
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.bytes_encoded, 100);
        assert_eq!(s.bytes_stored, 40);
        assert_eq!(s.cache_misses, 0);
    }
}
