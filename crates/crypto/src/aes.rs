//! The AES block cipher (FIPS-197).
//!
//! The S-box is not transcribed from the standard but *derived* at compile
//! time from its mathematical definition — the affine transform of the
//! multiplicative inverse in GF(2⁸) — which makes the table
//! correct-by-construction; the FIPS known-answer tests below then validate
//! the whole cipher.

/// Multiply two elements of GF(2⁸) modulo the AES polynomial x⁸+x⁴+x³+x+1.
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
        i += 1;
    }
    p
}

const fn build_sbox() -> [u8; 256] {
    // Multiplicative inverses by brute force (const-eval, done once).
    let mut inv = [0u8; 256];
    let mut x = 1usize;
    while x < 256 {
        let mut y = 1usize;
        while y < 256 {
            if gmul(x as u8, y as u8) == 1 {
                inv[x] = y as u8;
                break;
            }
            y += 1;
        }
        x += 1;
    }
    let mut sbox = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        let b = inv[i];
        // Affine transform: s = b ⊕ rotl1(b) ⊕ rotl2(b) ⊕ rotl3(b) ⊕ rotl4(b) ⊕ 0x63
        let s =
            b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63;
        sbox[i] = s;
        i += 1;
    }
    sbox
}

const fn invert_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

pub(crate) const SBOX: [u8; 256] = build_sbox();
pub(crate) const INV_SBOX: [u8; 256] = invert_sbox(&SBOX);

/// Round constants for key expansion (enough for AES-256's 14 rounds).
const RCON: [u8; 11] = [
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
];

/// Supported key sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeySize {
    /// 128-bit key, 10 rounds — what the paper benchmarks (Fig. 20).
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    fn nk(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes192 => 6,
            KeySize::Aes256 => 8,
        }
    }
    fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }
    /// Key length in bytes.
    pub fn key_len(self) -> usize {
        self.nk() * 4
    }
}

/// An expanded AES key, ready to encrypt/decrypt 16-byte blocks.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl Aes {
    /// Expand `key`; its length must match `size`.
    ///
    /// # Panics
    /// Panics if `key.len() != size.key_len()` — key material length is a
    /// programming error, not a runtime condition.
    pub fn new(key: &[u8], size: KeySize) -> Aes {
        assert_eq!(key.len(), size.key_len(), "AES key length mismatch");
        let nk = size.nk();
        let rounds = size.rounds();
        let nwords = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(nwords);
        for i in 0..nk {
            w.push([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        for i in nk..nwords {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp = [
                    SBOX[temp[1] as usize] ^ RCON[i / nk],
                    SBOX[temp[2] as usize],
                    SBOX[temp[3] as usize],
                    SBOX[temp[0] as usize],
                ];
            } else if nk > 6 && i % nk == 4 {
                temp = [
                    SBOX[temp[0] as usize],
                    SBOX[temp[1] as usize],
                    SBOX[temp[2] as usize],
                    SBOX[temp[3] as usize],
                ];
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }
        let round_keys = (0..=rounds)
            .map(|r| {
                let mut rk = [0u8; 16];
                for c in 0..4 {
                    rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                }
                rk
            })
            .collect();
        Aes { round_keys, rounds }
    }

    /// Convenience constructor for the common 128-bit case.
    pub fn new_128(key: &[u8; 16]) -> Aes {
        Aes::new(key, KeySize::Aes128)
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for r in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[self.rounds]);
        for r in (1..self.rounds).rev() {
            inv_shift_rows(block);
            inv_sub_bytes(block);
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, &self.round_keys[0]);
    }

    /// Number of rounds (10/12/14) — exposed for tests.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

// The state is stored column-major: block[4*c + r] is row r, column c —
// i.e. exactly the byte order of the input, per FIPS-197 §3.4.

#[inline]
fn add_round_key(b: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        b[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(b: &mut [u8; 16]) {
    for x in b.iter_mut() {
        *x = SBOX[*x as usize];
    }
}

#[inline]
fn inv_sub_bytes(b: &mut [u8; 16]) {
    for x in b.iter_mut() {
        *x = INV_SBOX[*x as usize];
    }
}

#[inline]
fn shift_rows(b: &mut [u8; 16]) {
    // Row r rotates left by r. Row r occupies indices r, r+4, r+8, r+12.
    let t = *b;
    for r in 1..4 {
        for c in 0..4 {
            b[r + 4 * c] = t[r + 4 * ((c + r) % 4)];
        }
    }
}

#[inline]
fn inv_shift_rows(b: &mut [u8; 16]) {
    let t = *b;
    for r in 1..4 {
        for c in 0..4 {
            b[r + 4 * ((c + r) % 4)] = t[r + 4 * c];
        }
    }
}

#[inline]
fn mix_columns(b: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [b[4 * c], b[4 * c + 1], b[4 * c + 2], b[4 * c + 3]];
        b[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        b[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        b[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        b[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

#[inline]
fn inv_mix_columns(b: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [b[4 * c], b[4 * c + 1], b[4 * c + 2], b[4 * c + 3]];
        b[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        b[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        b[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        b[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_known_entries() {
        // Spot values from the FIPS-197 table.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
        // Inverse property for every byte.
        for i in 0..256 {
            assert_eq!(INV_SBOX[SBOX[i] as usize] as usize, i);
        }
    }

    #[test]
    fn gmul_basics() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xab), 0);
    }

    /// FIPS-197 Appendix C known-answer tests for all three key sizes.
    #[test]
    fn fips197_appendix_c() {
        let plain = hex("00112233445566778899aabbccddeeff");
        let cases = [
            (
                "000102030405060708090a0b0c0d0e0f",
                KeySize::Aes128,
                "69c4e0d86a7b0430d8cdb78070b4c55a",
            ),
            (
                "000102030405060708090a0b0c0d0e0f1011121314151617",
                KeySize::Aes192,
                "dda97ca4864cdfe06eaf70a0ec0d7191",
            ),
            (
                "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
                KeySize::Aes256,
                "8ea2b7ca516745bfeafc49904b496089",
            ),
        ];
        for (key_hex, size, cipher_hex) in cases {
            let aes = Aes::new(&hex(key_hex), size);
            let mut block = [0u8; 16];
            block.copy_from_slice(&plain);
            aes.encrypt_block(&mut block);
            assert_eq!(
                block.to_vec(),
                hex(cipher_hex),
                "encrypt mismatch for {size:?}"
            );
            aes.decrypt_block(&mut block);
            assert_eq!(block.to_vec(), plain, "decrypt mismatch for {size:?}");
        }
    }

    /// FIPS-197 Appendix B worked example (AES-128).
    #[test]
    fn fips197_appendix_b() {
        let aes = Aes::new(&hex("2b7e151628aed2a6abf7158809cf4f3c"), KeySize::Aes128);
        let mut block = [0u8; 16];
        block.copy_from_slice(&hex("3243f6a8885a308d313198a2e0370734"));
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn round_counts() {
        assert_eq!(Aes::new(&[0; 16], KeySize::Aes128).rounds(), 10);
        assert_eq!(Aes::new(&[0; 24], KeySize::Aes192).rounds(), 12);
        assert_eq!(Aes::new(&[0; 32], KeySize::Aes256).rounds(), 14);
    }

    #[test]
    #[should_panic(expected = "key length mismatch")]
    fn wrong_key_length_panics() {
        let _ = Aes::new(&[0u8; 15], KeySize::Aes128);
    }

    #[test]
    fn shift_rows_inverts() {
        let mut b: [u8; 16] = core::array::from_fn(|i| i as u8);
        let orig = b;
        shift_rows(&mut b);
        assert_ne!(b, orig);
        inv_shift_rows(&mut b);
        assert_eq!(b, orig);
    }

    #[test]
    fn mix_columns_inverts() {
        let mut b: [u8; 16] = core::array::from_fn(|i| (i * 17 + 3) as u8);
        let orig = b;
        mix_columns(&mut b);
        inv_mix_columns(&mut b);
        assert_eq!(b, orig);
    }

    #[test]
    fn encrypt_decrypt_random_blocks() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let key: [u8; 16] = rng.gen();
        let aes = Aes::new_128(&key);
        for _ in 0..256 {
            let orig: [u8; 16] = rng.gen();
            let mut b = orig;
            aes.encrypt_block(&mut b);
            assert_ne!(b, orig);
            aes.decrypt_block(&mut b);
            assert_eq!(b, orig);
        }
    }
}
