//! [`AesCodec`] — plugs AES into the DSCL value pipeline.
//!
//! Wire format of an encoded value:
//!
//! ```text
//! +-------+------------------+----------------------+
//! | magic | 16-byte IV/nonce | ciphertext           |
//! +-------+------------------+----------------------+
//! ```
//!
//! `magic` is one byte identifying the mode (CBC or CTR) so a client can
//! detect configuration mismatches instead of returning garbage. A fresh
//! random IV is drawn per message, which is what makes encrypting the same
//! value twice produce different bytes (tested below).

use crate::aes::{Aes, KeySize};
use crate::modes::{cbc_decrypt, cbc_encrypt, ctr_xor};
use kvapi::codec::Codec;
use kvapi::{Result, StoreError};
use rand::RngCore;

const MAGIC_CBC: u8 = 0xC1;
const MAGIC_CTR: u8 = 0xC2;

/// Cipher mode for [`AesCodec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// CBC with PKCS#7 padding — the classic choice, ciphertext grows by
    /// up to one block.
    Cbc,
    /// CTR keystream — length-preserving.
    Ctr,
}

/// AES encryption as a [`Codec`] stage.
pub struct AesCodec {
    aes: Aes,
    mode: Mode,
    name: String,
}

impl AesCodec {
    /// Build a codec from raw key material.
    pub fn new(key: &[u8], size: KeySize, mode: Mode) -> AesCodec {
        let bits = size.key_len() * 8;
        let name = match mode {
            Mode::Cbc => format!("aes-{bits}-cbc"),
            Mode::Ctr => format!("aes-{bits}-ctr"),
        };
        AesCodec {
            aes: Aes::new(key, size),
            mode,
            name,
        }
    }

    /// The paper's configuration: AES-128 (CBC).
    pub fn aes128(key: &[u8; 16]) -> AesCodec {
        AesCodec::new(key, KeySize::Aes128, Mode::Cbc)
    }

    /// Derive a key from a passphrase via SHA-256 (examples convenience;
    /// real deployments should use a KDF with a salt and work factor).
    pub fn from_passphrase(passphrase: &str, size: KeySize, mode: Mode) -> AesCodec {
        let digest = crate::sha256::sha256(passphrase.as_bytes());
        AesCodec::new(&digest[..size.key_len()], size, mode)
    }
}

impl Codec for AesCodec {
    fn name(&self) -> &str {
        &self.name
    }

    fn encode(&self, plain: &[u8]) -> Result<Vec<u8>> {
        let mut iv = [0u8; 16];
        rand::thread_rng().fill_bytes(&mut iv);
        let (magic, body) = match self.mode {
            Mode::Cbc => (MAGIC_CBC, cbc_encrypt(&self.aes, &iv, plain)),
            Mode::Ctr => (MAGIC_CTR, ctr_xor(&self.aes, &iv, plain)),
        };
        let mut out = Vec::with_capacity(1 + 16 + body.len());
        out.push(magic);
        out.extend_from_slice(&iv);
        out.extend_from_slice(&body);
        Ok(out)
    }

    fn decode(&self, encoded: &[u8]) -> Result<Vec<u8>> {
        if encoded.len() < 17 {
            return Err(StoreError::codec("encrypted value too short"));
        }
        let magic = encoded[0];
        let expected = match self.mode {
            Mode::Cbc => MAGIC_CBC,
            Mode::Ctr => MAGIC_CTR,
        };
        if magic != expected {
            return Err(StoreError::codec(format!(
                "cipher mode mismatch: value has magic {magic:#x}, codec is {}",
                self.name
            )));
        }
        let mut iv = [0u8; 16];
        iv.copy_from_slice(&encoded[1..17]);
        let body = &encoded[17..];
        match self.mode {
            Mode::Cbc => cbc_decrypt(&self.aes, &iv, body),
            Mode::Ctr => Ok(ctr_xor(&self.aes, &iv, body)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_both_modes() {
        for mode in [Mode::Cbc, Mode::Ctr] {
            let c = AesCodec::new(&[42u8; 16], KeySize::Aes128, mode);
            for len in [0usize, 1, 15, 16, 17, 1000] {
                let data: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
                let enc = c.encode(&data).unwrap();
                // Ciphertext must not leak plaintext; skip the shortest
                // inputs, where a stream cipher legitimately collides
                // (1 byte of CTR output equals the plaintext whenever the
                // keystream byte is zero — p = 1/256 per run).
                if data.len() >= 4 {
                    assert_ne!(&enc[17..], &data[..data.len().min(enc.len() - 17)]);
                }
                assert_eq!(c.decode(&enc).unwrap(), data, "mode {mode:?} len {len}");
            }
        }
    }

    #[test]
    fn fresh_iv_per_message() {
        let c = AesCodec::aes128(&[1u8; 16]);
        let a = c.encode(b"same plaintext").unwrap();
        let b = c.encode(b"same plaintext").unwrap();
        assert_ne!(
            a, b,
            "two encryptions of the same value must differ (fresh IV)"
        );
        assert_eq!(c.decode(&a).unwrap(), c.decode(&b).unwrap());
    }

    #[test]
    fn ctr_is_length_preserving_cbc_is_not() {
        let plain = vec![9u8; 100];
        let ctr = AesCodec::new(&[2u8; 16], KeySize::Aes128, Mode::Ctr);
        assert_eq!(ctr.encode(&plain).unwrap().len(), 1 + 16 + 100);
        let cbc = AesCodec::new(&[2u8; 16], KeySize::Aes128, Mode::Cbc);
        assert_eq!(cbc.encode(&plain).unwrap().len(), 1 + 16 + 112); // padded to 112
    }

    #[test]
    fn mode_mismatch_detected() {
        let cbc = AesCodec::new(&[3u8; 16], KeySize::Aes128, Mode::Cbc);
        let ctr = AesCodec::new(&[3u8; 16], KeySize::Aes128, Mode::Ctr);
        let enc = cbc.encode(b"hello").unwrap();
        let err = ctr.decode(&enc).unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");
    }

    #[test]
    fn wrong_key_fails_to_decrypt_cbc() {
        let a = AesCodec::aes128(&[5u8; 16]);
        let b = AesCodec::aes128(&[6u8; 16]);
        let enc = a.encode(b"secret secret secret").unwrap();
        match b.decode(&enc) {
            Err(_) => {}
            Ok(p) => assert_ne!(p, b"secret secret secret".to_vec()),
        }
    }

    #[test]
    fn short_input_rejected() {
        let c = AesCodec::aes128(&[0u8; 16]);
        assert!(c.decode(&[]).is_err());
        assert!(c.decode(&[MAGIC_CBC; 10]).is_err());
    }

    #[test]
    fn passphrase_derivation_is_deterministic() {
        let a = AesCodec::from_passphrase("hunter2", KeySize::Aes256, Mode::Ctr);
        let b = AesCodec::from_passphrase("hunter2", KeySize::Aes256, Mode::Ctr);
        let enc = a.encode(b"data").unwrap();
        assert_eq!(b.decode(&enc).unwrap(), b"data");
        assert_eq!(a.name(), "aes-256-ctr");
    }
}
