//! # dscl-crypto — client-side encryption for enhanced data store clients
//!
//! §II/§III of the paper make client-side encryption a core DSCL capability:
//! the server may not encrypt data, may not be trusted, or the channel may be
//! insecure; caches in particular "may be storing confidential data for
//! extended periods of time" and should often hold ciphertext. The paper's
//! evaluation (Fig. 20) measures AES-128 encryption/decryption overhead.
//!
//! This crate implements, from scratch (no external crypto dependency is
//! available offline):
//!
//! * the AES block cipher (128/192/256-bit keys) per FIPS-197, with S-boxes
//!   *computed* from the GF(2⁸) definition at compile time and validated
//!   against the FIPS known-answer vectors;
//! * CBC and CTR modes with PKCS#7 padding (CBC);
//! * SHA-256 (FIPS 180-4), used for strong entity tags and key derivation in
//!   examples;
//! * [`AesCodec`], a [`kvapi::codec::Codec`] so encryption slots into the
//!   DSCL value pipeline. Each message gets a fresh random IV, prepended to
//!   the ciphertext.
//!
//! **Scope note:** this is a faithful, well-tested implementation of the
//! algorithms, sufficient for reproducing the paper's measurements. It is
//! table-free in the hot path? No — it is a straightforward byte-oriented
//! implementation and makes no constant-time claims; do not lift it into a
//! production system that must resist cache-timing adversaries.

#![forbid(unsafe_code)]

pub mod aes;
pub mod codec;
pub mod modes;
pub mod sha256;

pub use aes::{Aes, KeySize};
pub use codec::AesCodec;
pub use modes::{cbc_decrypt, cbc_encrypt, ctr_xor, pkcs7_pad, pkcs7_unpad};
pub use sha256::{sha256, Sha256};
