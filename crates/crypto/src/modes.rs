//! Block cipher modes of operation: CBC (with PKCS#7) and CTR.

use crate::aes::Aes;
use kvapi::{Result, StoreError};

/// PKCS#7-pad `data` to a multiple of 16 bytes. Always appends at least one
/// byte, so padding is unambiguous.
pub fn pkcs7_pad(data: &[u8]) -> Vec<u8> {
    let pad = 16 - data.len() % 16;
    let mut out = Vec::with_capacity(data.len() + pad);
    out.extend_from_slice(data);
    out.resize(data.len() + pad, pad as u8);
    out
}

/// Strip PKCS#7 padding; errors on malformed padding.
pub fn pkcs7_unpad(data: &[u8]) -> Result<Vec<u8>> {
    let &last = data
        .last()
        .ok_or_else(|| StoreError::codec("empty ciphertext"))?;
    let pad = last as usize;
    if pad == 0 || pad > 16 || pad > data.len() {
        return Err(StoreError::codec("invalid PKCS#7 padding length"));
    }
    if !data[data.len() - pad..].iter().all(|&b| b == last) {
        return Err(StoreError::codec("inconsistent PKCS#7 padding bytes"));
    }
    Ok(data[..data.len() - pad].to_vec())
}

/// CBC-encrypt `plain` (will be PKCS#7 padded) under `aes` with `iv`.
pub fn cbc_encrypt(aes: &Aes, iv: &[u8; 16], plain: &[u8]) -> Vec<u8> {
    let padded = pkcs7_pad(plain);
    let mut out = Vec::with_capacity(padded.len());
    let mut prev = *iv;
    for chunk in padded.chunks_exact(16) {
        let mut block = [0u8; 16];
        for i in 0..16 {
            block[i] = chunk[i] ^ prev[i];
        }
        aes.encrypt_block(&mut block);
        out.extend_from_slice(&block);
        prev = block;
    }
    out
}

/// CBC-decrypt and unpad. Errors if the ciphertext is not a positive
/// multiple of the block size or the padding is invalid.
pub fn cbc_decrypt(aes: &Aes, iv: &[u8; 16], cipher: &[u8]) -> Result<Vec<u8>> {
    if cipher.is_empty() || !cipher.len().is_multiple_of(16) {
        return Err(StoreError::codec(
            "ciphertext length not a positive multiple of 16",
        ));
    }
    let mut out = Vec::with_capacity(cipher.len());
    let mut prev = *iv;
    for chunk in cipher.chunks_exact(16) {
        let mut block = [0u8; 16];
        block.copy_from_slice(chunk);
        let saved = block;
        aes.decrypt_block(&mut block);
        for i in 0..16 {
            block[i] ^= prev[i];
        }
        out.extend_from_slice(&block);
        prev = saved;
    }
    pkcs7_unpad(&out)
}

/// CTR-mode keystream XOR: encryption and decryption are the same
/// operation. The 16-byte `nonce` is treated as a big-endian 128-bit
/// counter incremented per block. No padding; output length equals input
/// length.
pub fn ctr_xor(aes: &Aes, nonce: &[u8; 16], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut counter = *nonce;
    for chunk in data.chunks(16) {
        let mut ks = counter;
        aes.encrypt_block(&mut ks);
        for (i, &b) in chunk.iter().enumerate() {
            out.push(b ^ ks[i]);
        }
        // Big-endian increment of the whole counter block.
        for byte in counter.iter_mut().rev() {
            let (v, overflow) = byte.overflowing_add(1);
            *byte = v;
            if !overflow {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{Aes, KeySize};

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn pkcs7_round_trip_all_residues() {
        for len in 0..50 {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let padded = pkcs7_pad(&data);
            assert_eq!(padded.len() % 16, 0);
            assert!(padded.len() > data.len(), "must always add padding");
            assert_eq!(pkcs7_unpad(&padded).unwrap(), data);
        }
    }

    #[test]
    fn pkcs7_rejects_malformed() {
        assert!(pkcs7_unpad(&[]).is_err());
        assert!(pkcs7_unpad(&[0u8; 16]).is_err()); // pad byte 0
        let mut bad = pkcs7_pad(b"hello");
        bad[15] = 17; // pad length > block
        assert!(pkcs7_unpad(&bad).is_err());
        let mut bad2 = pkcs7_pad(b"hello");
        let n = bad2.len();
        bad2[n - 2] ^= 1; // inconsistent padding byte
        assert!(pkcs7_unpad(&bad2).is_err());
    }

    /// NIST SP 800-38A F.2.1: AES-128-CBC known-answer test.
    #[test]
    fn nist_cbc_aes128() {
        let aes = Aes::new(&hex("2b7e151628aed2a6abf7158809cf4f3c"), KeySize::Aes128);
        let iv: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let plain = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ));
        let expect = hex(concat!(
            "7649abac8119b246cee98e9b12e9197d",
            "5086cb9b507219ee95db113a917678b2",
            "73bed6b8e3c1743b7116e69e22229516",
            "3ff1caa1681fac09120eca307586e1a7"
        ));
        let cipher = cbc_encrypt(&aes, &iv, &plain);
        // Our CBC always pads, so the NIST ciphertext is a prefix.
        assert_eq!(&cipher[..expect.len()], &expect[..]);
        assert_eq!(cipher.len(), expect.len() + 16);
        assert_eq!(cbc_decrypt(&aes, &iv, &cipher).unwrap(), plain);
    }

    /// NIST SP 800-38A F.5.1: AES-128-CTR known-answer test.
    #[test]
    fn nist_ctr_aes128() {
        let aes = Aes::new(&hex("2b7e151628aed2a6abf7158809cf4f3c"), KeySize::Aes128);
        let nonce: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let plain = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51"
        ));
        let expect = hex(concat!(
            "874d6191b620e3261bef6864990db6ce",
            "9806f66b7970fdff8617187bb9fffdff"
        ));
        let cipher = ctr_xor(&aes, &nonce, &plain);
        assert_eq!(cipher, expect);
        assert_eq!(ctr_xor(&aes, &nonce, &cipher), plain);
    }

    #[test]
    fn ctr_handles_partial_blocks_and_counter_carry() {
        let aes = Aes::new_128(&[7u8; 16]);
        // Nonce that will carry across several bytes on increment.
        let nonce = [0xff; 16];
        let data: Vec<u8> = (0..100).map(|i| i as u8).collect();
        let enc = ctr_xor(&aes, &nonce, &data);
        assert_eq!(enc.len(), data.len());
        assert_eq!(ctr_xor(&aes, &nonce, &enc), data);
    }

    #[test]
    fn cbc_rejects_bad_lengths() {
        let aes = Aes::new_128(&[1u8; 16]);
        let iv = [0u8; 16];
        assert!(cbc_decrypt(&aes, &iv, &[]).is_err());
        assert!(cbc_decrypt(&aes, &iv, &[0u8; 17]).is_err());
    }

    #[test]
    fn cbc_wrong_iv_fails_or_garbles() {
        let aes = Aes::new_128(&[9u8; 16]);
        let iv = [3u8; 16];
        let cipher = cbc_encrypt(&aes, &iv, b"attack at dawn");
        let wrong_iv = [4u8; 16];
        match cbc_decrypt(&aes, &wrong_iv, &cipher) {
            Err(_) => {}                                        // padding destroyed
            Ok(p) => assert_ne!(p, b"attack at dawn".to_vec()), // or garbled
        }
    }
}
