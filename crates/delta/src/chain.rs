//! Client-managed delta chains over any [`KeyValue`] store (paper §IV).
//!
//! "If the server does not have support for delta encoding, the client can
//! handle all of the delta encoding operations …: the client communicates an
//! update to the server by storing a delta at the server with an appropriate
//! name. After some number of deltas have been sent to the server, the
//! client will send a complete object to the server after which the previous
//! deltas can be deleted. If a delta encoded object needs to be read from
//! the server, the base object and all deltas will have to be retrieved."
//!
//! [`DeltaChainStore`] implements that protocol and counts bytes moved in
//! each direction, so benchmarks can reproduce the paper's conclusion that
//! client-only delta management "will often not be of much benefit because
//! of the additional reads and writes".

use crate::encode::{apply, encode, DEFAULT_WINDOW};
use bytes::Bytes;
use kvapi::{KeyValue, Result, StoreError};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-direction byte counters (reads = bytes fetched from the underlying
/// store, writes = bytes sent to it).
#[derive(Debug, Default)]
pub struct Traffic {
    /// Bytes read from the underlying store.
    pub read: AtomicU64,
    /// Bytes written to the underlying store.
    pub written: AtomicU64,
}

impl Traffic {
    /// Snapshot (read, written).
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.read.load(Ordering::Relaxed),
            self.written.load(Ordering::Relaxed),
        )
    }
}

#[derive(Serialize, Deserialize, Debug, Clone)]
struct Manifest {
    /// Base generation; bumps on every consolidation.
    gen: u64,
    /// Number of deltas stacked on the current base.
    deltas: u32,
}

/// A [`KeyValue`] layer that writes updates as delta chains.
pub struct DeltaChainStore<S> {
    inner: S,
    name: String,
    /// Consolidate after this many stacked deltas.
    max_deltas: u32,
    /// Minimum match window for encoding.
    window: usize,
    /// Byte traffic to the underlying store.
    pub traffic: Traffic,
}

impl<S: KeyValue> DeltaChainStore<S> {
    /// Wrap `inner`, consolidating every `max_deltas` updates.
    pub fn new(inner: S, max_deltas: u32) -> DeltaChainStore<S> {
        let name = format!("delta({})", inner.name());
        DeltaChainStore {
            inner,
            name,
            max_deltas: max_deltas.max(1),
            window: DEFAULT_WINDOW,
            traffic: Traffic::default(),
        }
    }

    /// Override the match window.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Access the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn meta_key(key: &str) -> String {
        format!("{key}##meta")
    }
    fn base_key(key: &str, gen: u64) -> String {
        format!("{key}##base.{gen}")
    }
    fn delta_key(key: &str, gen: u64, i: u32) -> String {
        format!("{key}##delta.{gen}.{i}")
    }

    fn read_manifest(&self, key: &str) -> Result<Option<Manifest>> {
        match self.inner.get(&Self::meta_key(key))? {
            None => Ok(None),
            Some(raw) => {
                self.traffic
                    .read
                    .fetch_add(raw.len() as u64, Ordering::Relaxed);
                serde_json::from_slice(&raw)
                    .map(Some)
                    .map_err(|e| StoreError::corrupt(format!("bad delta manifest: {e}")))
            }
        }
    }

    fn write_manifest(&self, key: &str, m: &Manifest) -> Result<()> {
        let raw = serde_json::to_vec(m).expect("manifest serializes");
        self.traffic
            .written
            .fetch_add(raw.len() as u64, Ordering::Relaxed);
        self.inner.put(&Self::meta_key(key), &raw)
    }

    fn tracked_get(&self, key: &str) -> Result<Option<Bytes>> {
        let v = self.inner.get(key)?;
        if let Some(ref b) = v {
            self.traffic
                .read
                .fetch_add(b.len() as u64, Ordering::Relaxed);
        }
        Ok(v)
    }

    fn tracked_put(&self, key: &str, value: &[u8]) -> Result<()> {
        self.traffic
            .written
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        self.inner.put(key, value)
    }

    /// Reconstruct the current value: base plus every stacked delta.
    fn reconstruct(&self, key: &str, m: &Manifest) -> Result<Option<Vec<u8>>> {
        let base = match self.tracked_get(&Self::base_key(key, m.gen))? {
            None => return Ok(None),
            Some(b) => b,
        };
        let mut cur = base.to_vec();
        for i in 0..m.deltas {
            let d = self
                .tracked_get(&Self::delta_key(key, m.gen, i))?
                .ok_or_else(|| StoreError::corrupt(format!("missing delta {i} for {key}")))?;
            cur = apply(&cur, &d)?;
        }
        Ok(Some(cur))
    }

    fn delete_chain(&self, key: &str, m: &Manifest) -> Result<()> {
        self.inner.delete(&Self::base_key(key, m.gen))?;
        for i in 0..m.deltas {
            self.inner.delete(&Self::delta_key(key, m.gen, i))?;
        }
        Ok(())
    }

    fn consolidate(&self, key: &str, old: Option<&Manifest>, value: &[u8]) -> Result<()> {
        let gen = old.map(|m| m.gen + 1).unwrap_or(0);
        self.tracked_put(&Self::base_key(key, gen), value)?;
        self.write_manifest(key, &Manifest { gen, deltas: 0 })?;
        if let Some(m) = old {
            self.delete_chain(key, m)?;
        }
        Ok(())
    }
}

impl<S: KeyValue> KeyValue for DeltaChainStore<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        match self.read_manifest(key)? {
            None => self.consolidate(key, None, value),
            Some(m) => {
                let Some(current) = self.reconstruct(key, &m)? else {
                    return self.consolidate(key, None, value);
                };
                let delta = encode(&current, value, self.window);
                // Send the delta only while the chain is short and the delta
                // actually saves bytes; otherwise send a fresh base.
                if m.deltas < self.max_deltas && delta.len() < value.len() {
                    self.tracked_put(&Self::delta_key(key, m.gen, m.deltas), &delta)?;
                    self.write_manifest(
                        key,
                        &Manifest {
                            gen: m.gen,
                            deltas: m.deltas + 1,
                        },
                    )
                } else {
                    self.consolidate(key, Some(&m), value)
                }
            }
        }
    }

    fn get(&self, key: &str) -> Result<Option<Bytes>> {
        match self.read_manifest(key)? {
            None => Ok(None),
            Some(m) => Ok(self.reconstruct(key, &m)?.map(Bytes::from)),
        }
    }

    fn delete(&self, key: &str) -> Result<bool> {
        match self.read_manifest(key)? {
            None => Ok(false),
            Some(m) => {
                self.delete_chain(key, &m)?;
                self.inner.delete(&Self::meta_key(key))?;
                Ok(true)
            }
        }
    }

    fn keys(&self) -> Result<Vec<String>> {
        Ok(self
            .inner
            .keys()?
            .into_iter()
            .filter_map(|k| k.strip_suffix("##meta").map(str::to_string))
            .collect())
    }

    fn clear(&self) -> Result<()> {
        self.inner.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvapi::mem::MemKv;

    fn store(max: u32) -> DeltaChainStore<MemKv> {
        DeltaChainStore::new(MemKv::new("mem"), max)
    }

    #[test]
    fn contract() {
        kvapi::contract::run_all(&store(4));
    }

    #[test]
    fn updates_become_deltas_then_consolidate() {
        let s = store(3);
        let v0 = b"the quick brown fox jumps over the lazy dog".repeat(20);
        s.put("doc", &v0).unwrap();
        let inner_keys_after_base = s.inner().keys().unwrap().len();
        assert_eq!(inner_keys_after_base, 2); // meta + base

        // Three small edits → three deltas.
        let mut v = v0.clone();
        for i in 0..3u8 {
            v[10] = b'A' + i;
            s.put("doc", &v).unwrap();
            assert_eq!(s.get("doc").unwrap().unwrap(), v);
        }
        assert_eq!(s.inner().keys().unwrap().len(), 2 + 3);

        // Fourth edit exceeds max_deltas → consolidation back to meta+base.
        v[11] = b'Z';
        s.put("doc", &v).unwrap();
        assert_eq!(s.inner().keys().unwrap().len(), 2);
        assert_eq!(s.get("doc").unwrap().unwrap(), v);
    }

    #[test]
    fn small_edits_send_fewer_bytes_than_full_writes() {
        let s = store(8);
        let mut v = vec![7u8; 100_000];
        s.put("big", &v).unwrap();
        let (_, after_base) = s.traffic.snapshot();
        for i in 0..5 {
            v[i * 1000] = i as u8;
            s.put("big", &v).unwrap();
        }
        let (_, total) = s.traffic.snapshot();
        let update_bytes = total - after_base;
        assert!(
            update_bytes < 5 * 1000,
            "five tiny edits should cost far less than 5 full objects, cost {update_bytes}"
        );
    }

    #[test]
    fn reads_pay_for_the_whole_chain() {
        // The paper's caveat: without server support, reads must fetch base
        // + all deltas.
        let s = store(10);
        let mut v = b"0123456789".repeat(1000);
        s.put("k", &v).unwrap();
        for i in 0..4 {
            v[i] = b'x';
            s.put("k", &v).unwrap();
        }
        let (read_before, _) = s.traffic.snapshot();
        let got = s.get("k").unwrap().unwrap();
        assert_eq!(got, v);
        let (read_after, _) = s.traffic.snapshot();
        assert!(
            read_after - read_before > v.len() as u64,
            "a chained read must fetch base + deltas (> object size)"
        );
    }

    #[test]
    fn dissimilar_update_skips_delta() {
        let s = store(8);
        s.put("k", &vec![1u8; 5000]).unwrap();
        s.put("k", &vec![2u8; 5000]).unwrap(); // nothing shared → full write
        assert_eq!(
            s.inner().keys().unwrap().len(),
            2,
            "should have consolidated"
        );
        assert_eq!(s.get("k").unwrap().unwrap(), vec![2u8; 5000]);
    }

    #[test]
    fn delete_removes_every_fragment() {
        let s = store(4);
        let mut v = b"abcdefgh".repeat(100);
        s.put("k", &v).unwrap();
        v[3] = b'!';
        s.put("k", &v).unwrap();
        assert!(s.delete("k").unwrap());
        assert!(s.inner().keys().unwrap().is_empty());
        assert!(!s.delete("k").unwrap());
    }

    #[test]
    fn keys_lists_logical_keys_only() {
        let s = store(4);
        s.put("a", b"value one for a").unwrap();
        s.put("b", b"value one for b").unwrap();
        let mut keys = s.keys().unwrap();
        keys.sort();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
