//! Delta encode/apply.
//!
//! Format (all integers LEB128 varints):
//!
//! ```text
//! magic "DL1\n" | varint base_len | varint target_len | ops…
//! op 0x01: Copy   — varint offset (into base), varint len
//! op 0x02: Insert — varint len, raw bytes
//! ```
//!
//! The encoder indexes every window of the base with the rolling hash, then
//! scans the target; matches of at least the window size are extended both
//! forwards and backwards to maximal length before being emitted as `Copy`
//! ops (the paper's "expanded to the maximum possible size"). `base_len` is
//! recorded so [`apply`] can reject a mismatched base outright instead of
//! producing garbage.

use crate::rolling::RollingHash;
use kvapi::{Result, StoreError};
use std::collections::HashMap;

/// Default minimum match length (the paper's `WINDOW_SIZE`, "e.g. 5"; we
/// default slightly larger because `Copy` ops cost ~3–11 bytes to encode).
pub const DEFAULT_WINDOW: usize = 8;

const MAGIC: &[u8; 4] = b"DL1\n";
const OP_COPY: u8 = 0x01;
const OP_INSERT: u8 = 0x02;

/// One delta operation (exposed for tests and tooling).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Copy `len` bytes from `offset` in the base.
    Copy {
        /// Byte offset into the base object.
        offset: usize,
        /// Number of bytes to copy.
        len: usize,
    },
    /// Insert literal bytes.
    Insert(Vec<u8>),
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = data
            .get(*pos)
            .ok_or_else(|| StoreError::corrupt("truncated varint in delta"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(StoreError::corrupt("varint overflow in delta"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Compute a delta that transforms `base` into `target`, with minimum match
/// length `window`.
pub fn encode(base: &[u8], target: &[u8], window: usize) -> Vec<u8> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(MAGIC);
    push_varint(&mut out, base.len() as u64);
    push_varint(&mut out, target.len() as u64);

    // Index every window position of the base.
    let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
    if base.len() >= window {
        let mut rh = RollingHash::new(base, window);
        index.entry(rh.hash()).or_default().push(0);
        for i in 1..=(base.len() - window) {
            rh.roll(base[i - 1], base[i + window - 1]);
            // Cap chain length: pathological inputs (e.g. all one byte)
            // otherwise make candidate lists quadratic to scan.
            let entry = index.entry(rh.hash()).or_default();
            if entry.len() < 32 {
                entry.push(i as u32);
            }
        }
    }

    let mut pending: Vec<u8> = Vec::new(); // literals awaiting emission
    let flush = |out: &mut Vec<u8>, pending: &mut Vec<u8>| {
        if !pending.is_empty() {
            out.push(OP_INSERT);
            push_varint(out, pending.len() as u64);
            out.extend_from_slice(pending);
            pending.clear();
        }
    };

    let mut i = 0usize;
    let mut rh: Option<RollingHash> = if target.len() >= window {
        Some(RollingHash::new(target, window))
    } else {
        None
    };
    let mut rh_pos = 0usize; // position rh currently describes
    while i < target.len() {
        let mut matched = false;
        if target.len() - i >= window {
            // Advance the rolling hash to position i.
            let rh = rh.as_mut().expect("rolling hash exists when window fits");
            while rh_pos < i {
                rh.roll(target[rh_pos], target[rh_pos + window]);
                rh_pos += 1;
            }
            if let Some(cands) = index.get(&rh.hash()) {
                // Choose the candidate giving the longest verified match.
                let mut best: Option<(usize, usize)> = None; // (base_off, len)
                for &c in cands {
                    let c = c as usize;
                    if base[c..c + window] != target[i..i + window] {
                        continue; // hash collision
                    }
                    let mut len = window;
                    while c + len < base.len()
                        && i + len < target.len()
                        && base[c + len] == target[i + len]
                    {
                        len += 1;
                    }
                    if best.map(|(_, bl)| len > bl).unwrap_or(true) {
                        best = Some((c, len));
                    }
                }
                if let Some((mut off, fwd_len)) = best {
                    // Extend backwards into pending literals: bytes we were
                    // about to emit as an Insert that also precede the match
                    // in the base can join the Copy instead.
                    let mut back = 0usize;
                    while off > 0
                        && !pending.is_empty()
                        && base[off - 1] == *pending.last().unwrap()
                    {
                        off -= 1;
                        back += 1;
                        pending.pop();
                    }
                    flush(&mut out, &mut pending);
                    out.push(OP_COPY);
                    push_varint(&mut out, off as u64);
                    push_varint(&mut out, (back + fwd_len) as u64);
                    i += fwd_len;
                    matched = true;
                }
            }
        }
        if !matched {
            pending.push(target[i]);
            i += 1;
        }
    }
    flush(&mut out, &mut pending);
    out
}

/// Total serialized size of a delta for quick "is it worth it" checks.
pub fn encoded_len(delta: &[u8]) -> usize {
    delta.len()
}

/// Apply a delta to `base`, producing the target. Rejects deltas whose
/// recorded base length does not match.
pub fn apply(base: &[u8], delta: &[u8]) -> Result<Vec<u8>> {
    let mut pos = 0usize;
    if delta.len() < 4 || &delta[..4] != MAGIC {
        return Err(StoreError::corrupt("bad delta magic"));
    }
    pos += 4;
    let base_len = read_varint(delta, &mut pos)? as usize;
    if base_len != base.len() {
        return Err(StoreError::corrupt(format!(
            "delta expects base of {base_len} bytes, got {}",
            base.len()
        )));
    }
    let target_len = read_varint(delta, &mut pos)? as usize;
    let mut out = Vec::with_capacity(target_len);
    while pos < delta.len() {
        let op = delta[pos];
        pos += 1;
        match op {
            OP_COPY => {
                let off = read_varint(delta, &mut pos)? as usize;
                let len = read_varint(delta, &mut pos)? as usize;
                let end = off
                    .checked_add(len)
                    .ok_or_else(|| StoreError::corrupt("copy range overflow"))?;
                if end > base.len() {
                    return Err(StoreError::corrupt("copy range beyond base"));
                }
                out.extend_from_slice(&base[off..end]);
            }
            OP_INSERT => {
                let len = read_varint(delta, &mut pos)? as usize;
                let end = pos
                    .checked_add(len)
                    .ok_or_else(|| StoreError::corrupt("insert length overflow"))?;
                if end > delta.len() {
                    return Err(StoreError::corrupt("insert runs past delta end"));
                }
                out.extend_from_slice(&delta[pos..end]);
                pos = end;
            }
            other => return Err(StoreError::corrupt(format!("unknown delta op {other:#x}"))),
        }
    }
    if out.len() != target_len {
        return Err(StoreError::corrupt(format!(
            "delta produced {} bytes, header said {target_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(base: &[u8], target: &[u8], window: usize) -> usize {
        let d = encode(base, target, window);
        assert_eq!(apply(base, &d).unwrap(), target, "window {window}");
        d.len()
    }

    #[test]
    fn identical_objects_give_tiny_delta() {
        let data = b"identical content, fairly long so a copy op wins".repeat(10);
        let n = round_trip(&data, &data, DEFAULT_WINDOW);
        assert!(
            n < 32,
            "identity delta should be a single Copy, got {n} bytes"
        );
    }

    #[test]
    fn paper_figure8_array_update() {
        // Fig. 8: a 13-element array where only elements 5 and 6 change;
        // the delta encodes [unchanged 0..5][new values][unchanged 7..13].
        let base: Vec<u8> = (0u8..13).flat_map(|i| [i, i, i, i]).collect(); // 4-byte "elements"
        let mut target = base.clone();
        target[20..24].copy_from_slice(&[0xAA; 4]); // element 5
        target[24..28].copy_from_slice(&[0xBB; 4]); // element 6
        let d = encode(&base, &target, 5);
        assert_eq!(apply(&base, &d).unwrap(), target);
        assert!(
            d.len() < target.len() / 2,
            "delta ({}) should be a fraction of the object ({})",
            d.len(),
            target.len()
        );
    }

    #[test]
    fn disjoint_objects_fall_back_to_insert() {
        let base = vec![1u8; 100];
        let target = vec![2u8; 100];
        let n = round_trip(&base, &target, DEFAULT_WINDOW);
        assert!(n >= 100, "no shared content: delta must carry the payload");
    }

    #[test]
    fn empty_base_and_empty_target() {
        round_trip(b"", b"some fresh content", DEFAULT_WINDOW);
        round_trip(b"old content", b"", DEFAULT_WINDOW);
        round_trip(b"", b"", DEFAULT_WINDOW);
    }

    #[test]
    fn target_shorter_than_window() {
        round_trip(b"a long enough base string", b"ab", 8);
    }

    #[test]
    fn insert_then_long_match() {
        let base = b"the quick brown fox jumps over the lazy dog".repeat(5);
        let mut target = b"PREFIX:".to_vec();
        target.extend_from_slice(&base);
        let n = round_trip(&base, &target, DEFAULT_WINDOW);
        assert!(n < 40, "prefix insert + one copy expected, got {n}");
    }

    #[test]
    fn backward_extension_joins_pending_literals() {
        // Target repeats base content but the match finder first sees it
        // mid-window; backward extension should recover the full copy.
        let base = b"0123456789abcdefghij0123456789abcdefghij".to_vec();
        let target = b"XX0123456789abcdefghijYY".to_vec();
        round_trip(&base, &target, 8);
    }

    #[test]
    fn apply_rejects_wrong_base() {
        let base = b"version one of the object".to_vec();
        let target = b"version two of the object".to_vec();
        let d = encode(&base, &target, DEFAULT_WINDOW);
        let err = apply(b"a different base!", &d).unwrap_err();
        assert!(err.to_string().contains("base"), "{err}");
    }

    #[test]
    fn apply_rejects_corrupt_delta() {
        assert!(apply(b"x", b"").is_err());
        assert!(apply(b"x", b"NOPE").is_err());
        let base = b"some base data for the delta".to_vec();
        let mut d = encode(&base, &base, DEFAULT_WINDOW);
        // Corrupt the op stream.
        let n = d.len();
        d[n - 1] ^= 0xff;
        assert!(apply(&base, &d).is_err());
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn small_edit_on_large_object_is_cheap() {
        // 64 KiB object, 100-byte edit in the middle: delta should be tiny
        // relative to the object — the paper's motivating scenario.
        let mut base = Vec::with_capacity(1 << 16);
        let mut x = 12345u32;
        for _ in 0..(1 << 16) {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            base.push((x >> 24) as u8);
        }
        let mut target = base.clone();
        for (i, b) in target[30_000..30_100].iter_mut().enumerate() {
            *b = i as u8;
        }
        let n = round_trip(&base, &target, DEFAULT_WINDOW);
        assert!(
            n < 400,
            "100-byte edit on 64 KiB object gave {n}-byte delta"
        );
    }

    #[test]
    fn window_size_affects_granularity() {
        // With a huge window, short shared substrings are not exploited.
        let base = b"shared-fragment".repeat(3);
        let mut target = Vec::new();
        for chunk in base.chunks(15) {
            target.extend_from_slice(chunk);
            target.push(b'|');
        }
        let small = encode(&base, &target, 5);
        let large = encode(&base, &target, 64);
        assert_eq!(apply(&base, &small).unwrap(), target);
        assert_eq!(apply(&base, &large).unwrap(), target);
        assert!(small.len() <= large.len());
    }
}
