//! # dscl-delta — delta encoding for enhanced data store clients
//!
//! §IV of the paper: when a client updates an object, it can send the server
//! a *delta* against the previous version instead of the whole object. "Our
//! delta encoding algorithm uses key ideas from the Rabin-Karp string
//! matching algorithm": the base version's substrings of length
//! `WINDOW_SIZE` are indexed in a hash table using a **rolling hash** (the
//! hash of the window starting at `b[i+1]` is computed in O(1) from the one
//! at `b[i]`), candidate matches are verified byte-for-byte, and each match
//! of at least `WINDOW_SIZE` bytes "is expanded to the maximum possible
//! size before being encoded".
//!
//! The paper also describes operating **without server support**: the client
//! stores deltas as additional objects, periodically consolidating them into
//! a full object — and warns this "will often not be of much benefit because
//! of the additional reads and writes". [`chain::DeltaChainStore`]
//! implements exactly that scheme over any [`kvapi::KeyValue`] store and
//! instruments the byte traffic so the ablation benchmark can reproduce the
//! claim.

#![forbid(unsafe_code)]

pub mod chain;
pub mod encode;
pub mod rolling;

pub use chain::DeltaChainStore;
pub use encode::{apply, encode, encoded_len, DeltaOp, DEFAULT_WINDOW};
pub use rolling::RollingHash;
