//! Rabin–Karp rolling hash over a fixed-size window.
//!
//! Polynomial hash `h = b[0]·B^(w-1) + b[1]·B^(w-2) + … + b[w-1]` in the
//! 2⁶⁴ ring (wrapping arithmetic). Sliding the window one byte —
//! [`RollingHash::roll`] — costs one multiply, one subtract-multiply and one
//! add, which is what makes indexing *every* window position of the base
//! object affordable (the paper's efficiency argument for Rabin-Karp).

/// Multiplier; an odd constant with good bit dispersion.
const BASE: u64 = 0x0000_0100_0000_01b3; // FNV prime reused as polynomial base

/// Rolling hash state for a window of fixed size.
#[derive(Clone, Debug)]
pub struct RollingHash {
    window: usize,
    /// BASE^(window-1), used to remove the outgoing byte.
    top_power: u64,
    hash: u64,
}

impl RollingHash {
    /// Initialize over the first `window` bytes of `data`.
    ///
    /// # Panics
    /// Panics if `data.len() < window` or `window == 0`.
    pub fn new(data: &[u8], window: usize) -> RollingHash {
        assert!(window > 0, "window must be positive");
        assert!(data.len() >= window, "data shorter than window");
        let mut hash = 0u64;
        for &b in &data[..window] {
            hash = hash.wrapping_mul(BASE).wrapping_add(u64::from(b));
        }
        let mut top_power = 1u64;
        for _ in 0..window - 1 {
            top_power = top_power.wrapping_mul(BASE);
        }
        RollingHash {
            window,
            top_power,
            hash,
        }
    }

    /// Current hash value.
    #[inline]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Slide one byte: remove `out` (the byte leaving the window), add `inb`.
    #[inline]
    pub fn roll(&mut self, out: u8, inb: u8) {
        self.hash = self
            .hash
            .wrapping_sub(u64::from(out).wrapping_mul(self.top_power))
            .wrapping_mul(BASE)
            .wrapping_add(u64::from(inb));
    }

    /// Hash an arbitrary window from scratch (the non-rolling reference).
    pub fn hash_of(data: &[u8]) -> u64 {
        let mut hash = 0u64;
        for &b in data {
            hash = hash.wrapping_mul(BASE).wrapping_add(u64::from(b));
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_matches_scratch_everywhere() {
        let data: Vec<u8> = (0..200u32).map(|i| (i * 31 % 251) as u8).collect();
        for window in [1usize, 2, 5, 8, 16, 64] {
            let mut rh = RollingHash::new(&data, window);
            assert_eq!(rh.hash(), RollingHash::hash_of(&data[..window]));
            for i in 1..=(data.len() - window) {
                rh.roll(data[i - 1], data[i + window - 1]);
                assert_eq!(
                    rh.hash(),
                    RollingHash::hash_of(&data[i..i + window]),
                    "window {window} position {i}"
                );
            }
        }
    }

    #[test]
    fn equal_windows_hash_equal() {
        let a = b"abcdefgh_abcdefgh";
        let h1 = RollingHash::hash_of(&a[0..8]);
        let h2 = RollingHash::hash_of(&a[9..17]);
        assert_eq!(h1, h2);
    }

    #[test]
    fn different_windows_usually_differ() {
        // Not a collision-resistance proof, just a smoke test that the
        // hash disperses: all 3-byte windows of a de Bruijn-ish sequence.
        let data: Vec<u8> = (0..=255u8).collect();
        let mut seen = std::collections::HashSet::new();
        for w in data.windows(3) {
            seen.insert(RollingHash::hash_of(w));
        }
        assert_eq!(seen.len(), 254);
    }

    #[test]
    #[should_panic(expected = "shorter than window")]
    fn window_longer_than_data_panics() {
        let _ = RollingHash::new(b"ab", 3);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = RollingHash::new(b"ab", 0);
    }
}
