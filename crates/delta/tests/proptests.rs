//! Property-based tests: `apply(base, encode(base, target)) == target` for
//! arbitrary inputs, edits, and window sizes.

use dscl_delta::{apply, encode, DEFAULT_WINDOW};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trip_arbitrary(
        base in proptest::collection::vec(any::<u8>(), 0..4000),
        target in proptest::collection::vec(any::<u8>(), 0..4000),
        window in 1usize..32
    ) {
        let d = encode(&base, &target, window);
        prop_assert_eq!(apply(&base, &d).unwrap(), target);
    }

    /// Realistic case: the target is the base with a bounded random edit —
    /// exactly what delta encoding is for. Also asserts the efficiency
    /// property: the delta is much smaller than the object once the shared
    /// content dominates.
    #[test]
    fn round_trip_edited_base(
        base in proptest::collection::vec(any::<u8>(), 500..3000),
        edit in proptest::collection::vec(any::<u8>(), 1..50),
        pos_seed in any::<usize>()
    ) {
        let pos = pos_seed % base.len();
        let mut target = base.clone();
        for (i, &b) in edit.iter().enumerate() {
            if pos + i < target.len() {
                target[pos + i] = b;
            }
        }
        let d = encode(&base, &target, DEFAULT_WINDOW);
        prop_assert_eq!(apply(&base, &d).unwrap(), target);
    }

    /// Insertion/deletion edits (length-changing), not just substitutions.
    #[test]
    fn round_trip_splice(
        base in proptest::collection::vec(any::<u8>(), 100..2000),
        insert in proptest::collection::vec(any::<u8>(), 0..200),
        cut in 0usize..100,
        pos_seed in any::<usize>()
    ) {
        let pos = pos_seed % base.len();
        let cut_end = (pos + cut).min(base.len());
        let mut target = base[..pos].to_vec();
        target.extend_from_slice(&insert);
        target.extend_from_slice(&base[cut_end..]);
        let d = encode(&base, &target, DEFAULT_WINDOW);
        prop_assert_eq!(apply(&base, &d).unwrap(), target);
    }

    /// Corrupting any single byte of a delta must never silently succeed
    /// with a wrong result of the expected length... it may still produce a
    /// valid-but-different decode only if the corruption hit an Insert
    /// payload, in which case output differs from target — acceptable; what
    /// must never happen is an out-of-bounds panic.
    #[test]
    fn corrupt_delta_never_panics(
        base in proptest::collection::vec(any::<u8>(), 0..500),
        target in proptest::collection::vec(any::<u8>(), 1..500),
        pos_seed in any::<usize>(),
        xor in 1u8..=255
    ) {
        let d = encode(&base, &target, DEFAULT_WINDOW);
        let mut bad = d.clone();
        let pos = pos_seed % bad.len();
        bad[pos] ^= xor;
        let _ = apply(&base, &bad); // must not panic
    }
}
