//! # fskv — file-system-backed key-value store
//!
//! One of the five stores the paper benchmarks is "a file system on the
//! client node accessed via standard Java method calls". This crate is the
//! Rust equivalent: one file per key under a root directory, with
//!
//! * percent-escaped file names so arbitrary keys (slashes, spaces, unicode)
//!   are safe,
//! * atomic updates (write to a temp file, then rename), so a crashed writer
//!   can never leave a half-written value visible,
//! * optional fsync-per-write durability (off by default, matching how the
//!   paper's Java client used the file system).
//!
//! As the paper notes, "the file system client might benefit from caching
//! performed by the underlying file system" — reads here hit the OS page
//! cache exactly the same way.

use bytes::Bytes;
use kvapi::{KeyValue, Result, StoreError, StoreStats};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const SUFFIX: &str = ".val";

/// File-per-key store rooted at a directory.
pub struct FsKv {
    root: PathBuf,
    name: String,
    fsync: bool,
    tmp_counter: AtomicU64,
}

impl FsKv {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<FsKv> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(FsKv {
            root,
            name: "fskv".to_string(),
            fsync: false,
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// Enable fsync-per-write durability.
    pub fn with_fsync(mut self, fsync: bool) -> FsKv {
        self.fsync = fsync;
        self
    }

    /// Override the display name (useful when several instances coexist).
    pub fn with_name(mut self, name: impl Into<String>) -> FsKv {
        self.name = name.into();
        self
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn escape(key: &str) -> String {
        let mut out = String::with_capacity(key.len() + 8);
        for &b in key.as_bytes() {
            match b {
                b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(b as char),
                _ => out.push_str(&format!("%{b:02X}")),
            }
        }
        out
    }

    fn unescape(name: &str) -> Option<String> {
        let bytes = name.as_bytes();
        let mut out = Vec::with_capacity(bytes.len());
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'%' {
                if i + 2 > bytes.len() && i + 2 > bytes.len() - 1 {
                    return None;
                }
                let hex = name.get(i + 1..i + 3)?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            } else {
                out.push(bytes[i]);
                i += 1;
            }
        }
        String::from_utf8(out).ok()
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.root.join(format!("{}{SUFFIX}", Self::escape(key)))
    }

    /// Write one value atomically (temp file + rename), without syncing the
    /// directory — callers batching several writes sync it once at the end.
    fn write_value(&self, key: &str, value: &[u8]) -> Result<()> {
        let final_path = self.path_for(key);
        // Unique temp name: concurrent writers to the same key must not
        // clobber each other's scratch file.
        let tmp = self.root.join(format!(
            ".tmp.{}.{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(value)?;
            if self.fsync {
                f.sync_all()?;
            }
        }
        fs::rename(&tmp, &final_path)?;
        Ok(())
    }
}

impl KeyValue for FsKv {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        self.write_value(key, value)
    }

    fn get(&self, key: &str) -> Result<Option<Bytes>> {
        match fs::read(self.path_for(key)) {
            Ok(data) => Ok(Some(Bytes::from(data))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn delete(&self, key: &str) -> Result<bool> {
        match fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    fn contains(&self, key: &str) -> Result<bool> {
        Ok(self.path_for(key).exists())
    }

    fn keys(&self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(SUFFIX) {
                if let Some(key) = Self::unescape(stem) {
                    out.push(key);
                }
            }
        }
        Ok(out)
    }

    fn clear(&self) -> Result<()> {
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            if name.to_string_lossy().ends_with(SUFFIX) {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    fn stats(&self) -> Result<StoreStats> {
        let mut st = StoreStats::default();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().ends_with(SUFFIX) {
                st.keys += 1;
                st.bytes += entry.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
        Ok(st)
    }

    fn put_many(&self, entries: &[(&str, &[u8])]) -> Result<()> {
        for (k, v) in entries {
            self.write_value(k, v)?;
        }
        // One directory sync makes every rename in the batch durable — one
        // metadata flush for N writes instead of one per key.
        if self.fsync && !entries.is_empty() {
            self.sync()?;
        }
        Ok(())
    }

    fn delete_many(&self, keys: &[&str]) -> Result<Vec<bool>> {
        let out: Vec<bool> = keys.iter().map(|k| self.delete(k)).collect::<Result<_>>()?;
        if self.fsync && !keys.is_empty() {
            self.sync()?;
        }
        Ok(out)
    }

    fn sync(&self) -> Result<()> {
        // Sync the directory so renames are durable.
        let dir = fs::File::open(&self.root)?;
        dir.sync_all().map_err(StoreError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store() -> (FsKv, tempdir::TempDir) {
        let dir = tempdir::TempDir::new();
        let kv = FsKv::open(dir.path()).unwrap();
        (kv, dir)
    }

    /// Minimal self-cleaning temp dir (std has no tempdir; avoid a dep).
    mod tempdir {
        use std::path::{Path, PathBuf};
        use std::sync::atomic::{AtomicU64, Ordering};

        static SEQ: AtomicU64 = AtomicU64::new(0);

        pub struct TempDir(PathBuf);
        impl TempDir {
            pub fn new() -> TempDir {
                let p = std::env::temp_dir().join(format!(
                    "fskv-test-{}-{}",
                    std::process::id(),
                    SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&p).unwrap();
                TempDir(p)
            }
            pub fn path(&self) -> &Path {
                &self.0
            }
        }
        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }

    #[test]
    fn contract() {
        let (kv, _d) = temp_store();
        kvapi::contract::run_all(&kv);
    }

    #[test]
    fn contract_concurrent() {
        let (kv, _d) = temp_store();
        kvapi::contract::run_all_concurrent(std::sync::Arc::new(kv));
    }

    #[test]
    fn escape_round_trip() {
        for key in [
            "simple",
            "with space",
            "a/b/c",
            "%already",
            "uni-ключ",
            "..",
            "a.b_c-d",
        ] {
            let esc = FsKv::escape(key);
            assert!(
                esc.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b"._-%".contains(&b)),
                "escape left unsafe bytes: {esc}"
            );
            assert_eq!(FsKv::unescape(&esc).as_deref(), Some(key));
        }
    }

    #[test]
    fn values_survive_reopen() {
        let dir = tempdir::TempDir::new();
        {
            let kv = FsKv::open(dir.path()).unwrap();
            kv.put("persisted", b"across reopen").unwrap();
            kv.sync().unwrap();
        }
        let kv = FsKv::open(dir.path()).unwrap();
        assert_eq!(kv.get("persisted").unwrap().unwrap(), &b"across reopen"[..]);
    }

    #[test]
    fn temp_files_are_not_listed_as_keys() {
        let (kv, d) = temp_store();
        kv.put("real", b"x").unwrap();
        std::fs::write(d.path().join(".tmp.999.0"), b"junk").unwrap();
        std::fs::write(d.path().join("unrelated.txt"), b"junk").unwrap();
        assert_eq!(kv.keys().unwrap(), vec!["real"]);
        let st = kv.stats().unwrap();
        assert_eq!(st.keys, 1);
    }

    #[test]
    fn fsync_mode_works() {
        let (kv, _d) = temp_store();
        let kv = kv.with_fsync(true);
        kv.put("durable", b"yes").unwrap();
        assert_eq!(kv.get("durable").unwrap().unwrap(), &b"yes"[..]);
    }

    #[test]
    fn batch_ops_with_fsync_survive_reopen() {
        let dir = tempdir::TempDir::new();
        {
            let kv = FsKv::open(dir.path()).unwrap().with_fsync(true);
            let entries: Vec<(String, Vec<u8>)> = (0..10)
                .map(|i| (format!("k{i}"), vec![i as u8; 16]))
                .collect();
            let refs: Vec<(&str, &[u8])> = entries
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_slice()))
                .collect();
            kv.put_many(&refs).unwrap();
            assert_eq!(
                kv.delete_many(&["k0", "absent", "k1"]).unwrap(),
                vec![true, false, true]
            );
        }
        let kv = FsKv::open(dir.path()).unwrap();
        assert_eq!(kv.stats().unwrap().keys, 8);
        assert_eq!(kv.get("k0").unwrap(), None);
        assert_eq!(kv.get("k9").unwrap().unwrap(), Bytes::from(vec![9u8; 16]));
    }

    #[test]
    fn overwrite_is_atomic_under_concurrency() {
        // Readers must always see one complete value, never a mix.
        use std::sync::Arc;
        let (kv, _d) = temp_store();
        let kv = Arc::new(kv);
        let a = vec![b'A'; 4096];
        let b = vec![b'B'; 4096];
        kv.put("k", &a).unwrap();
        let writer = {
            let kv = kv.clone();
            let (a, b) = (a.clone(), b.clone());
            std::thread::spawn(move || {
                for i in 0..200 {
                    kv.put("k", if i % 2 == 0 { &b } else { &a }).unwrap();
                }
            })
        };
        for _ in 0..200 {
            let v = kv.get("k").unwrap().unwrap();
            assert!(
                v[..] == a[..] || v[..] == b[..],
                "torn read: first byte {:?}, last byte {:?}",
                v.first(),
                v.last()
            );
        }
        writer.join().unwrap();
    }
}
