//! Byte-transformer interface shared by the encryption and compression
//! crates.
//!
//! The DSCL applies value transformations as a pipeline: on `put`, each
//! configured codec's [`Codec::encode`] runs in order; on `get`,
//! [`Codec::decode`] runs in reverse order. Implementations must be inverse
//! pairs: `decode(encode(x)) == x` for all `x` (the crates verify this with
//! property-based tests).

use crate::error::Result;
use std::time::{Duration, Instant};

/// A reversible byte transformation (encryption, compression, ...).
pub trait Codec: Send + Sync {
    /// Short name used in diagnostics ("aes-128-cbc", "gzip", ...).
    fn name(&self) -> &str;

    /// Transform plaintext bytes into encoded bytes.
    fn encode(&self, plain: &[u8]) -> Result<Vec<u8>>;

    /// Invert [`Codec::encode`].
    fn decode(&self, encoded: &[u8]) -> Result<Vec<u8>>;
}

/// Canonical trace-stage label for a codec's `encode` direction, keyed by
/// the codec's [`Codec::name`] — the vocabulary traces, metrics, and
/// sampled profiles share (`compress`, `encrypt`, `delta_encode`, ...).
pub fn encode_stage(codec: &str) -> &'static str {
    if codec.contains("gzip") || codec.contains("deflate") {
        "compress"
    } else if codec.contains("aes") {
        "encrypt"
    } else if codec.contains("delta") {
        "delta_encode"
    } else {
        "encode"
    }
}

/// Canonical trace-stage label for a codec's `decode` direction (get path).
pub fn decode_stage(codec: &str) -> &'static str {
    if codec.contains("gzip") || codec.contains("deflate") {
        "decompress"
    } else if codec.contains("aes") {
        "decrypt"
    } else if codec.contains("delta") {
        "delta_decode"
    } else {
        "decode"
    }
}

/// A pipeline of codecs applied in order on encode, reverse order on decode.
///
/// An empty pipeline is the identity transformation.
#[derive(Default)]
pub struct Pipeline {
    stages: Vec<Box<dyn Codec>>,
}

impl Pipeline {
    /// An empty (identity) pipeline.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Append a stage; returns `self` for builder-style chaining.
    pub fn then(mut self, stage: Box<dyn Codec>) -> Pipeline {
        self.stages.push(stage);
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the pipeline is the identity.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Run every stage's `encode` in order.
    pub fn encode(&self, plain: &[u8]) -> Result<Vec<u8>> {
        self.encode_with(plain, |_, _| {})
    }

    /// Run every stage's `decode` in reverse order.
    pub fn decode(&self, encoded: &[u8]) -> Result<Vec<u8>> {
        self.decode_with(encoded, |_, _| {})
    }

    /// [`Pipeline::encode`], reporting each stage's codec name and wall-clock
    /// time to `observe`. Lets callers attribute pipeline latency per stage
    /// without this crate knowing about any metrics system.
    pub fn encode_with(
        &self,
        plain: &[u8],
        mut observe: impl FnMut(&str, Duration),
    ) -> Result<Vec<u8>> {
        let mut cur = plain.to_vec();
        for s in &self.stages {
            let _prof = xprof::enter(encode_stage(s.name()));
            let t0 = Instant::now();
            cur = s.encode(&cur)?;
            observe(s.name(), t0.elapsed());
        }
        Ok(cur)
    }

    /// [`Pipeline::decode`] with the same per-stage observer as
    /// [`Pipeline::encode_with`].
    pub fn decode_with(
        &self,
        encoded: &[u8],
        mut observe: impl FnMut(&str, Duration),
    ) -> Result<Vec<u8>> {
        let mut cur = encoded.to_vec();
        for s in self.stages.iter().rev() {
            let _prof = xprof::enter(decode_stage(s.name()));
            let t0 = Instant::now();
            cur = s.decode(&cur)?;
            observe(s.name(), t0.elapsed());
        }
        Ok(cur)
    }
}

impl Codec for Pipeline {
    fn name(&self) -> &str {
        "pipeline"
    }
    fn encode(&self, plain: &[u8]) -> Result<Vec<u8>> {
        Pipeline::encode(self, plain)
    }
    fn decode(&self, encoded: &[u8]) -> Result<Vec<u8>> {
        Pipeline::decode(self, encoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR with a constant — its own inverse; good enough to test plumbing.
    struct Xor(u8);
    impl Codec for Xor {
        fn name(&self) -> &str {
            "xor"
        }
        fn encode(&self, p: &[u8]) -> Result<Vec<u8>> {
            Ok(p.iter().map(|b| b ^ self.0).collect())
        }
        fn decode(&self, e: &[u8]) -> Result<Vec<u8>> {
            self.encode(e)
        }
    }

    /// Prepends a marker byte — order-sensitive, so stage ordering is
    /// observable.
    struct Tag(u8);
    impl Codec for Tag {
        fn name(&self) -> &str {
            "tag"
        }
        fn encode(&self, p: &[u8]) -> Result<Vec<u8>> {
            let mut v = vec![self.0];
            v.extend_from_slice(p);
            Ok(v)
        }
        fn decode(&self, e: &[u8]) -> Result<Vec<u8>> {
            if e.first() != Some(&self.0) {
                return Err(crate::StoreError::codec("bad tag"));
            }
            Ok(e[1..].to_vec())
        }
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let p = Pipeline::new();
        assert!(p.is_empty());
        assert_eq!(p.encode(b"abc").unwrap(), b"abc");
        assert_eq!(p.decode(b"abc").unwrap(), b"abc");
    }

    #[test]
    fn stages_apply_in_order_and_reverse() {
        let p = Pipeline::new()
            .then(Box::new(Tag(1)))
            .then(Box::new(Tag(2)));
        let enc = p.encode(b"x").unwrap();
        // Tag(2) runs last on encode, so its marker is outermost.
        assert_eq!(enc, vec![2, 1, b'x']);
        assert_eq!(p.decode(&enc).unwrap(), b"x");
    }

    #[test]
    fn mixed_pipeline_round_trips() {
        let p = Pipeline::new()
            .then(Box::new(Xor(0x5a)))
            .then(Box::new(Tag(9)));
        assert_eq!(p.len(), 2);
        let data = b"the quick brown fox";
        assert_eq!(p.decode(&p.encode(data).unwrap()).unwrap(), data);
    }

    #[test]
    fn observer_sees_each_stage_in_execution_order() {
        let p = Pipeline::new()
            .then(Box::new(Xor(0x5a)))
            .then(Box::new(Tag(9)));
        let mut seen = Vec::new();
        let enc = p
            .encode_with(b"abc", |name, _| seen.push(name.to_string()))
            .unwrap();
        assert_eq!(seen, ["xor", "tag"]);
        seen.clear();
        p.decode_with(&enc, |name, _| seen.push(name.to_string()))
            .unwrap();
        assert_eq!(seen, ["tag", "xor"], "decode runs in reverse");
    }

    #[test]
    fn observer_stops_at_failing_stage() {
        let p = Pipeline::new()
            .then(Box::new(Xor(1)))
            .then(Box::new(Tag(7)));
        let mut seen = Vec::new();
        assert!(p
            .decode_with(b"\x08oops", |name, _| seen.push(name.to_string()))
            .is_err());
        assert!(
            seen.is_empty(),
            "failing first decode stage observed nothing"
        );
    }

    #[test]
    fn decode_error_propagates() {
        let p = Pipeline::new().then(Box::new(Tag(7)));
        assert!(p.decode(b"\x08oops").is_err());
    }
}
