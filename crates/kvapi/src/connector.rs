//! Router-facing connection factory.
//!
//! A cluster router is store-agnostic: it shards keys across N endpoints
//! but never speaks a wire protocol itself. [`Connector`] is the seam —
//! given an endpoint string it yields a ready [`KeyValue`] client, so the
//! same router runs over cloudstore, miniredis, minisql or in-process
//! `MemKv` nodes, over either transport, depending only on which connector
//! it was built with.

use crate::traits::KeyValue;
use crate::Result;
use std::sync::Arc;

/// Builds a [`KeyValue`] client for one endpoint.
///
/// Implementations decide what an endpoint string means (a `host:port`, a
/// registry name, a file path) and which client and transport to build for
/// it. Connectors are shared and may be called concurrently; each call
/// should yield an independent client for that endpoint.
pub trait Connector: Send + Sync {
    /// Connect to `endpoint` and return its store client.
    fn connect(&self, endpoint: &str) -> Result<Arc<dyn KeyValue>>;
}

/// Closures are connectors: `|ep| Ok(Arc::new(MemKv::new(ep)) as _)`.
impl<F> Connector for F
where
    F: Fn(&str) -> Result<Arc<dyn KeyValue>> + Send + Sync,
{
    fn connect(&self, endpoint: &str) -> Result<Arc<dyn KeyValue>> {
        self(endpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemKv;

    #[test]
    fn closures_are_connectors() {
        let connector = |ep: &str| -> Result<Arc<dyn KeyValue>> {
            Ok(Arc::new(MemKv::new(ep)) as Arc<dyn KeyValue>)
        };
        let dynamic: &dyn Connector = &connector;
        let store = dynamic.connect("node-a").expect("connect");
        store.put("k", b"v").expect("put");
        assert_eq!(
            store.get("k").expect("get").as_deref(),
            Some(b"v".as_slice())
        );
        assert_eq!(store.name(), "node-a");
    }
}
