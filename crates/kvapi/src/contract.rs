//! Store conformance suite.
//!
//! Every [`KeyValue`] implementation in the workspace runs this suite from
//! its own test module (and the root integration tests run it against the
//! full client/server stacks). Holding all stores to one executable
//! specification is what makes them interchangeable behind the UDSM's common
//! interface — the paper's core design property.
//!
//! Call [`run_all`] with a freshly created, empty store. The functions panic
//! with a descriptive message on any violation, so they compose naturally
//! with `#[test]`.

use crate::traits::{CondGet, KeyValue};
use crate::value::Etag;
use std::sync::Arc;

/// Run every contract check against `store`. The store must start empty and
/// may be left in an arbitrary state.
pub fn run_all<S: KeyValue>(store: &S) {
    basic_crud(store);
    overwrite_replaces(store);
    delete_semantics(store);
    empty_and_binary_values(store);
    key_enumeration_and_clear(store);
    large_values(store);
    conditional_get(store);
    unusual_keys(store);
}

/// As `run_all` but additionally hammers the store from several threads.
/// Requires `Arc` because the store crosses thread boundaries.
pub fn run_all_concurrent(store: Arc<dyn KeyValue>) {
    run_all(&store);
    concurrent_access(store);
}

/// put → get → contains round trip.
pub fn basic_crud<S: KeyValue>(s: &S) {
    s.clear().expect("clear");
    assert_eq!(s.get("missing").expect("get missing"), None, "get of absent key must be None");
    assert!(!s.contains("missing").expect("contains missing"));
    s.put("alpha", b"one").expect("put");
    assert_eq!(s.get("alpha").expect("get").as_deref(), Some(&b"one"[..]));
    assert!(s.contains("alpha").expect("contains"));
}

/// A second put must fully replace the first value, including when the new
/// value is shorter.
pub fn overwrite_replaces<S: KeyValue>(s: &S) {
    s.clear().unwrap();
    s.put("k", b"a considerably longer first value").unwrap();
    s.put("k", b"short").unwrap();
    assert_eq!(
        s.get("k").unwrap().as_deref(),
        Some(&b"short"[..]),
        "overwrite must not leave trailing bytes from the longer old value"
    );
}

/// delete returns whether a value existed and removes it.
pub fn delete_semantics<S: KeyValue>(s: &S) {
    s.clear().unwrap();
    s.put("d", b"x").unwrap();
    assert!(s.delete("d").expect("delete existing"), "delete of present key must return true");
    assert!(!s.delete("d").expect("delete absent"), "delete of absent key must return false");
    assert_eq!(s.get("d").unwrap(), None);
}

/// Empty values and arbitrary binary payloads (all 256 byte values, NULs)
/// must round-trip unmodified.
pub fn empty_and_binary_values<S: KeyValue>(s: &S) {
    s.clear().unwrap();
    s.put("empty", b"").unwrap();
    assert_eq!(s.get("empty").unwrap().as_deref(), Some(&b""[..]), "empty value must round-trip");
    let all: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
    s.put("binary", &all).unwrap();
    assert_eq!(s.get("binary").unwrap().as_deref(), Some(&all[..]), "binary payload mangled");
}

/// keys() sees exactly the live keys; clear() empties the store.
pub fn key_enumeration_and_clear<S: KeyValue>(s: &S) {
    s.clear().unwrap();
    for i in 0..10 {
        s.put(&format!("key{i}"), format!("v{i}").as_bytes()).unwrap();
    }
    s.delete("key3").unwrap();
    let mut keys = s.keys().expect("keys");
    keys.sort();
    let expected: Vec<String> =
        (0..10).filter(|i| *i != 3).map(|i| format!("key{i}")).collect();
    assert_eq!(keys, expected);
    s.clear().expect("clear");
    assert!(s.keys().unwrap().is_empty(), "clear must remove every key");
    assert_eq!(s.stats().unwrap().keys, 0);
}

/// A 1 MiB pseudo-random value round-trips byte-for-byte.
pub fn large_values<S: KeyValue>(s: &S) {
    s.clear().unwrap();
    // xorshift so the payload is incompressible-ish and position-dependent.
    let mut x = 0x2545_f491_4f6c_dd1du64;
    let big: Vec<u8> = (0..1 << 20)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect();
    s.put("big", &big).unwrap();
    let got = s.get("big").unwrap().expect("large value lost");
    assert_eq!(got.len(), big.len());
    assert!(got[..] == big[..], "large value corrupted");
}

/// Versioned + conditional reads follow HTTP-like semantics.
pub fn conditional_get<S: KeyValue>(s: &S) {
    s.clear().unwrap();
    s.put("c", b"v1").unwrap();
    let v = s.get_versioned("c").expect("get_versioned").expect("present");
    assert_eq!(&v.data[..], b"v1");
    assert_eq!(
        s.get_if_none_match("c", v.etag).unwrap(),
        CondGet::NotModified,
        "matching etag must yield NotModified"
    );
    s.put("c", b"v2").unwrap();
    match s.get_if_none_match("c", v.etag).unwrap() {
        CondGet::Modified(nv) => {
            assert_eq!(&nv.data[..], b"v2");
            assert_ne!(nv.etag, v.etag, "new version must carry a new etag");
        }
        other => panic!("expected Modified after overwrite, got {other:?}"),
    }
    s.delete("c").unwrap();
    assert_eq!(s.get_if_none_match("c", v.etag).unwrap(), CondGet::Missing);
    // A bogus etag against a present key is just a miss → Modified.
    s.put("c", b"v3").unwrap();
    assert!(matches!(
        s.get_if_none_match("c", Etag(0xdead_beef)).unwrap(),
        CondGet::Modified(_)
    ));
    // put_versioned's returned tag must validate as current immediately.
    let tag = s.put_versioned("pv", b"tagged value").expect("put_versioned");
    assert_eq!(
        s.get_if_none_match("pv", tag).unwrap(),
        CondGet::NotModified,
        "etag returned by put_versioned must match the stored version"
    );
}

/// Keys with separators, dots, unicode and length stress.
pub fn unusual_keys<S: KeyValue>(s: &S) {
    s.clear().unwrap();
    let keys = [
        "with space",
        "path/like/key",
        "dotted.name.v2",
        "uni-ключ-鍵",
        "UPPER_lower-123",
        &"long".repeat(40),
    ];
    for (i, k) in keys.iter().enumerate() {
        s.put(k, format!("val{i}").as_bytes()).unwrap();
    }
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(
            s.get(k).unwrap().as_deref(),
            Some(format!("val{i}").as_bytes()),
            "key {k:?} did not round-trip"
        );
    }
    assert_eq!(s.keys().unwrap().len(), keys.len());
}

/// Many threads doing disjoint and overlapping writes; the store must stay
/// internally consistent (no torn values: every read observes some complete
/// previously written value).
pub fn concurrent_access(store: Arc<dyn KeyValue>) {
    store.clear().unwrap();
    let threads = 6;
    let iters = 100;
    let mut handles = Vec::new();
    for t in 0..threads {
        let s = store.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..iters {
                let key = format!("shared{}", i % 8);
                let val = format!("t{t}-i{i}");
                s.put(&key, val.as_bytes()).unwrap();
                if let Some(got) = s.get(&key).unwrap() {
                    let txt = std::str::from_utf8(&got).expect("value must be valid utf8");
                    assert!(
                        txt.starts_with('t') && txt.contains("-i"),
                        "torn read: {txt:?}"
                    );
                }
                let own = format!("own-{t}-{i}");
                s.put(&own, val.as_bytes()).unwrap();
                assert_eq!(s.get(&own).unwrap().as_deref(), Some(val.as_bytes()));
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    let st = store.stats().unwrap();
    assert_eq!(st.keys as usize, 8 + threads * iters);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemKv;

    // The suite itself is exercised against MemKv in mem.rs; here we check
    // that it *detects* violations, using a deliberately broken store.
    struct Broken(MemKv);
    impl KeyValue for Broken {
        fn name(&self) -> &str {
            "broken"
        }
        fn put(&self, k: &str, v: &[u8]) -> crate::Result<()> {
            // Bug: truncates values to 4 bytes.
            self.0.put(k, &v[..v.len().min(4)])
        }
        fn get(&self, k: &str) -> crate::Result<Option<bytes::Bytes>> {
            self.0.get(k)
        }
        fn delete(&self, k: &str) -> crate::Result<bool> {
            self.0.delete(k)
        }
        fn keys(&self) -> crate::Result<Vec<String>> {
            self.0.keys()
        }
        fn clear(&self) -> crate::Result<()> {
            self.0.clear()
        }
    }

    #[test]
    fn suite_catches_truncating_store() {
        let broken = Broken(MemKv::new("b"));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_all(&broken);
        }));
        assert!(res.is_err(), "contract suite failed to catch a truncating store");
    }
}
