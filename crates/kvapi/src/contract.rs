//! Store conformance suite.
//!
//! Every [`KeyValue`] implementation in the workspace runs this suite from
//! its own test module (and the root integration tests run it against the
//! full client/server stacks). Holding all stores to one executable
//! specification is what makes them interchangeable behind the UDSM's common
//! interface — the paper's core design property.
//!
//! Call [`run_all`] with a freshly created, empty store. The functions panic
//! with a descriptive message on any violation, so they compose naturally
//! with `#[test]`.

use crate::traits::{CondGet, KeyValue};
use crate::value::Etag;
use std::sync::Arc;

/// Run every contract check against `store`. The store must start empty and
/// may be left in an arbitrary state.
pub fn run_all<S: KeyValue>(store: &S) {
    basic_crud(store);
    overwrite_replaces(store);
    delete_semantics(store);
    empty_and_binary_values(store);
    key_enumeration_and_clear(store);
    large_values(store);
    conditional_get(store);
    unusual_keys(store);
    batch_ops(store);
}

/// As `run_all` but additionally hammers the store from several threads.
/// Requires `Arc` because the store crosses thread boundaries.
pub fn run_all_concurrent(store: Arc<dyn KeyValue>) {
    run_all(&store);
    concurrent_access(store);
}

/// put → get → contains round trip.
pub fn basic_crud<S: KeyValue>(s: &S) {
    s.clear().expect("clear");
    assert_eq!(
        s.get("missing").expect("get missing"),
        None,
        "get of absent key must be None"
    );
    assert!(!s.contains("missing").expect("contains missing"));
    s.put("alpha", b"one").expect("put");
    assert_eq!(s.get("alpha").expect("get").as_deref(), Some(&b"one"[..]));
    assert!(s.contains("alpha").expect("contains"));
}

/// A second put must fully replace the first value, including when the new
/// value is shorter.
pub fn overwrite_replaces<S: KeyValue>(s: &S) {
    s.clear().unwrap();
    s.put("k", b"a considerably longer first value").unwrap();
    s.put("k", b"short").unwrap();
    assert_eq!(
        s.get("k").unwrap().as_deref(),
        Some(&b"short"[..]),
        "overwrite must not leave trailing bytes from the longer old value"
    );
}

/// delete returns whether a value existed and removes it.
pub fn delete_semantics<S: KeyValue>(s: &S) {
    s.clear().unwrap();
    s.put("d", b"x").unwrap();
    assert!(
        s.delete("d").expect("delete existing"),
        "delete of present key must return true"
    );
    assert!(
        !s.delete("d").expect("delete absent"),
        "delete of absent key must return false"
    );
    assert_eq!(s.get("d").unwrap(), None);
}

/// Empty values and arbitrary binary payloads (all 256 byte values, NULs)
/// must round-trip unmodified.
pub fn empty_and_binary_values<S: KeyValue>(s: &S) {
    s.clear().unwrap();
    s.put("empty", b"").unwrap();
    assert_eq!(
        s.get("empty").unwrap().as_deref(),
        Some(&b""[..]),
        "empty value must round-trip"
    );
    let all: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
    s.put("binary", &all).unwrap();
    assert_eq!(
        s.get("binary").unwrap().as_deref(),
        Some(&all[..]),
        "binary payload mangled"
    );
}

/// keys() sees exactly the live keys; clear() empties the store.
pub fn key_enumeration_and_clear<S: KeyValue>(s: &S) {
    s.clear().unwrap();
    for i in 0..10 {
        s.put(&format!("key{i}"), format!("v{i}").as_bytes())
            .unwrap();
    }
    s.delete("key3").unwrap();
    let mut keys = s.keys().expect("keys");
    keys.sort();
    let expected: Vec<String> = (0..10)
        .filter(|i| *i != 3)
        .map(|i| format!("key{i}"))
        .collect();
    assert_eq!(keys, expected);
    s.clear().expect("clear");
    assert!(s.keys().unwrap().is_empty(), "clear must remove every key");
    assert_eq!(s.stats().unwrap().keys, 0);
}

/// A 1 MiB pseudo-random value round-trips byte-for-byte.
pub fn large_values<S: KeyValue>(s: &S) {
    s.clear().unwrap();
    // xorshift so the payload is incompressible-ish and position-dependent.
    let mut x = 0x2545_f491_4f6c_dd1du64;
    let big: Vec<u8> = (0..1 << 20)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect();
    s.put("big", &big).unwrap();
    let got = s.get("big").unwrap().expect("large value lost");
    assert_eq!(got.len(), big.len());
    assert!(got[..] == big[..], "large value corrupted");
}

/// Versioned + conditional reads follow HTTP-like semantics.
pub fn conditional_get<S: KeyValue>(s: &S) {
    s.clear().unwrap();
    s.put("c", b"v1").unwrap();
    let v = s
        .get_versioned("c")
        .expect("get_versioned")
        .expect("present");
    assert_eq!(&v.data[..], b"v1");
    assert_eq!(
        s.get_if_none_match("c", v.etag).unwrap(),
        CondGet::NotModified,
        "matching etag must yield NotModified"
    );
    s.put("c", b"v2").unwrap();
    match s.get_if_none_match("c", v.etag).unwrap() {
        CondGet::Modified(nv) => {
            assert_eq!(&nv.data[..], b"v2");
            assert_ne!(nv.etag, v.etag, "new version must carry a new etag");
        }
        other => panic!("expected Modified after overwrite, got {other:?}"),
    }
    s.delete("c").unwrap();
    assert_eq!(s.get_if_none_match("c", v.etag).unwrap(), CondGet::Missing);
    // A bogus etag against a present key is just a miss → Modified.
    s.put("c", b"v3").unwrap();
    assert!(matches!(
        s.get_if_none_match("c", Etag(0xdead_beef)).unwrap(),
        CondGet::Modified(_)
    ));
    // put_versioned's returned tag must validate as current immediately.
    let tag = s
        .put_versioned("pv", b"tagged value")
        .expect("put_versioned");
    assert_eq!(
        s.get_if_none_match("pv", tag).unwrap(),
        CondGet::NotModified,
        "etag returned by put_versioned must match the stored version"
    );
}

/// Keys with separators, dots, unicode and length stress.
pub fn unusual_keys<S: KeyValue>(s: &S) {
    s.clear().unwrap();
    let keys = [
        "with space",
        "path/like/key",
        "dotted.name.v2",
        "uni-ключ-鍵",
        "UPPER_lower-123",
        &"long".repeat(40),
    ];
    for (i, k) in keys.iter().enumerate() {
        s.put(k, format!("val{i}").as_bytes()).unwrap();
    }
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(
            s.get(k).unwrap().as_deref(),
            Some(format!("val{i}").as_bytes()),
            "key {k:?} did not round-trip"
        );
    }
    assert_eq!(s.keys().unwrap().len(), keys.len());
}

/// Batch operations: empty batches, duplicate keys within one batch,
/// equivalence with sequential single-key operations, and partial misses.
/// A store overriding the batch defaults with a pipelined native path must
/// preserve exactly these semantics.
pub fn batch_ops<S: KeyValue>(s: &S) {
    s.clear().unwrap();

    // Empty batches are no-ops with empty results.
    assert!(s.get_many(&[]).expect("empty get_many").is_empty());
    s.put_many(&[]).expect("empty put_many");
    assert!(s.delete_many(&[]).expect("empty delete_many").is_empty());
    assert!(
        s.keys().unwrap().is_empty(),
        "empty batches must not create keys"
    );

    // put_many stores every entry; get_many answers positionally with None
    // for misses (partial miss).
    s.put_many(&[("b1", b"v1"), ("b2", b"v2"), ("b3", b"v3")])
        .expect("put_many");
    let got = s.get_many(&["b1", "absent", "b3", "b2"]).expect("get_many");
    assert_eq!(got.len(), 4, "get_many must answer every position");
    assert_eq!(got[0].as_deref(), Some(&b"v1"[..]));
    assert_eq!(got[1], None, "missing key must yield None, not an error");
    assert_eq!(got[2].as_deref(), Some(&b"v3"[..]));
    assert_eq!(got[3].as_deref(), Some(&b"v2"[..]));

    // Duplicate keys in one put batch: last write wins, as if sequential.
    s.put_many(&[("dup", b"first"), ("dup", b"second"), ("dup", b"final")])
        .unwrap();
    assert_eq!(
        s.get("dup").unwrap().as_deref(),
        Some(&b"final"[..]),
        "duplicate keys in put_many must resolve to the last write"
    );
    // Duplicate keys in one get batch: every position answered.
    let got = s.get_many(&["dup", "dup", "absent", "dup"]).unwrap();
    assert!(got[0].as_deref() == Some(&b"final"[..]) && got[0] == got[1] && got[1] == got[3]);
    assert_eq!(got[2], None);

    // Batch equivalence with sequential ops: same end state and values.
    let entries: Vec<(String, Vec<u8>)> = (0..10)
        .map(|i| (format!("eq{i}"), format!("val{i}").into_bytes()))
        .collect();
    let batch_refs: Vec<(&str, &[u8])> = entries
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_slice()))
        .collect();
    s.put_many(&batch_refs).unwrap();
    for (k, v) in &entries {
        assert_eq!(
            s.get(k).unwrap().as_deref(),
            Some(v.as_slice()),
            "put_many and sequential puts must agree on {k:?}"
        );
    }
    let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
    let batched = s.get_many(&keys).unwrap();
    let sequential: Vec<_> = keys.iter().map(|k| s.get(k).unwrap()).collect();
    assert_eq!(
        batched, sequential,
        "get_many must agree with sequential gets"
    );

    // delete_many reports presence per position; a key duplicated in one
    // delete batch is only present for its first occurrence.
    let deleted = s.delete_many(&["eq0", "absent", "eq1", "eq1"]).unwrap();
    assert_eq!(deleted, vec![true, false, true, false]);
    assert_eq!(s.get("eq0").unwrap(), None);

    // Versioned batch ops agree with their single-key counterparts.
    let tags = s
        .put_many_versioned(&[("vb1", b"one"), ("vb2", b"two")])
        .expect("put_many_versioned");
    assert_eq!(tags.len(), 2);
    for (i, k) in ["vb1", "vb2"].iter().enumerate() {
        assert_eq!(
            s.get_if_none_match(k, tags[i]).unwrap(),
            CondGet::NotModified,
            "etag from put_many_versioned must validate as current for {k:?}"
        );
    }
    let versioned = s
        .get_many_versioned(&["vb1", "absent", "vb2"])
        .expect("get_many_versioned");
    assert_eq!(versioned[0].as_ref().map(|v| v.etag), Some(tags[0]));
    assert!(versioned[1].is_none());
    assert_eq!(
        versioned[2].as_ref().map(|v| &v.data[..]),
        Some(&b"two"[..])
    );

    // Binary payloads and unusual keys survive the batch path too.
    let all: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
    s.put_many(&[("bin ary/key", &all), ("empty", b"")])
        .unwrap();
    let got = s.get_many(&["bin ary/key", "empty"]).unwrap();
    assert_eq!(
        got[0].as_deref(),
        Some(&all[..]),
        "binary payload mangled in batch"
    );
    assert_eq!(
        got[1].as_deref(),
        Some(&b""[..]),
        "empty value must round-trip in batch"
    );
}

/// Many threads doing disjoint and overlapping writes; the store must stay
/// internally consistent (no torn values: every read observes some complete
/// previously written value).
pub fn concurrent_access(store: Arc<dyn KeyValue>) {
    store.clear().unwrap();
    let threads = 6;
    let iters = 100;
    let mut handles = Vec::new();
    for t in 0..threads {
        let s = store.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..iters {
                let key = format!("shared{}", i % 8);
                let val = format!("t{t}-i{i}");
                s.put(&key, val.as_bytes()).unwrap();
                if let Some(got) = s.get(&key).unwrap() {
                    let txt = std::str::from_utf8(&got).expect("value must be valid utf8");
                    assert!(
                        txt.starts_with('t') && txt.contains("-i"),
                        "torn read: {txt:?}"
                    );
                }
                let own = format!("own-{t}-{i}");
                s.put(&own, val.as_bytes()).unwrap();
                assert_eq!(s.get(&own).unwrap().as_deref(), Some(val.as_bytes()));
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    let st = store.stats().unwrap();
    assert_eq!(st.keys as usize, 8 + threads * iters);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemKv;

    // The suite itself is exercised against MemKv in mem.rs; here we check
    // that it *detects* violations, using a deliberately broken store.
    struct Broken(MemKv);
    impl KeyValue for Broken {
        fn name(&self) -> &str {
            "broken"
        }
        fn put(&self, k: &str, v: &[u8]) -> crate::Result<()> {
            // Bug: truncates values to 4 bytes.
            self.0.put(k, &v[..v.len().min(4)])
        }
        fn get(&self, k: &str) -> crate::Result<Option<bytes::Bytes>> {
            self.0.get(k)
        }
        fn delete(&self, k: &str) -> crate::Result<bool> {
            self.0.delete(k)
        }
        fn keys(&self) -> crate::Result<Vec<String>> {
            self.0.keys()
        }
        fn clear(&self) -> crate::Result<()> {
            self.0.clear()
        }
    }

    #[test]
    fn suite_catches_truncating_store() {
        let broken = Broken(MemKv::new("b"));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_all(&broken);
        }));
        assert!(
            res.is_err(),
            "contract suite failed to catch a truncating store"
        );
    }
}
