//! The common error type shared by every data store implementation.
//!
//! All stores — local and remote — surface failures through [`StoreError`],
//! so layers stacked on top of the key-value interface (caching, encryption,
//! monitoring) handle errors uniformly regardless of which store produced
//! them.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Errors surfaced by data store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure (file system, socket, ...).
    Io(std::io::Error),
    /// The remote peer violated the wire protocol.
    Protocol(String),
    /// Persisted data failed an integrity check (bad checksum, bad frame).
    Corrupt(String),
    /// The store rejected the request (e.g. SQL constraint violation).
    Rejected(String),
    /// The operation is not supported by this store.
    Unsupported(&'static str),
    /// A concurrent modification conflict (compare-and-set style failures).
    Conflict(String),
    /// The store or connection has been closed.
    Closed,
    /// The operation did not complete within its deadline.
    Timeout,
    /// The endpoint is temporarily unavailable and calls are being shed
    /// (e.g. an open circuit breaker). Deliberately **not** transient:
    /// retrying immediately is exactly what the breaker exists to prevent.
    Unavailable(String),
    /// Payload failed to decode after retrieval (decryption/decompression).
    Codec(String),
    /// Anything else.
    Other(String),
}

impl StoreError {
    /// Build a protocol error from anything displayable.
    pub fn protocol(msg: impl fmt::Display) -> Self {
        StoreError::Protocol(msg.to_string())
    }

    /// Build a corruption error from anything displayable.
    pub fn corrupt(msg: impl fmt::Display) -> Self {
        StoreError::Corrupt(msg.to_string())
    }

    /// Build a codec error from anything displayable.
    pub fn codec(msg: impl fmt::Display) -> Self {
        StoreError::Codec(msg.to_string())
    }

    /// True when retrying the operation may plausibly succeed.
    ///
    /// Used by clients with reconnect logic: I/O and timeout failures are
    /// transient, protocol/corruption/rejection failures are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StoreError::Io(_) | StoreError::Timeout | StoreError::Closed
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Protocol(m) => write!(f, "protocol error: {m}"),
            StoreError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            StoreError::Rejected(m) => write!(f, "request rejected: {m}"),
            StoreError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            StoreError::Conflict(m) => write!(f, "conflict: {m}"),
            StoreError::Closed => write!(f, "store closed"),
            StoreError::Timeout => write!(f, "operation timed out"),
            StoreError::Unavailable(m) => write!(f, "endpoint unavailable: {m}"),
            StoreError::Codec(m) => write!(f, "codec error: {m}"),
            StoreError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_detail() {
        let e = StoreError::Protocol("bad frame".into());
        assert!(e.to_string().contains("bad frame"));
        let e = StoreError::Io(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn transience_classification() {
        assert!(StoreError::Timeout.is_transient());
        assert!(StoreError::Closed.is_transient());
        assert!(StoreError::Io(std::io::Error::other("x")).is_transient());
        assert!(!StoreError::Protocol("x".into()).is_transient());
        assert!(!StoreError::Corrupt("x".into()).is_transient());
        assert!(!StoreError::Unsupported("x").is_transient());
        // Unavailable means "calls are being shed" — retrying defeats the
        // point, so it must classify as non-transient.
        assert!(!StoreError::Unavailable("breaker open".into()).is_transient());
    }

    #[test]
    fn io_source_preserved() {
        use std::error::Error;
        let e = StoreError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}
