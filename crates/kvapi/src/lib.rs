//! # kvapi — the common key-value interface
//!
//! This crate defines the *common key-value interface* at the heart of the
//! Universal Data Store Manager (UDSM) described in
//! "Providing Enhanced Functionality for Data Store Clients" (ICDE 2017).
//!
//! Every data store in the workspace — file system (`fskv`), relational
//! database (`minisql`), remote cache (`miniredis`), simulated cloud
//! object stores (`cloudstore`) and plain in-memory maps — implements the
//! [`KeyValue`] trait. Code written against `dyn KeyValue` (asynchronous
//! interfaces, performance monitoring, workload generation, caching layers)
//! therefore works with *any* store, which is exactly the property the paper
//! exploits: "Once a data store implements the key-value interface, no
//! additional work is required to automatically get an asynchronous
//! interface, performance monitoring, or workload generation."
//!
//! The crate also provides:
//!
//! * [`StoreError`] / [`Result`] — the common error type,
//! * [`Versioned`] and [`Etag`] — versioned values used for cache
//!   revalidation (the HTTP `If-None-Match` analogue from §III of the paper),
//! * [`codec::Codec`] — the byte-transformer interface implemented by the
//!   encryption and compression crates,
//! * [`mem::MemKv`] — a reference in-memory store,
//! * [`contract`] — a reusable conformance suite that every store's test
//!   module runs, so all stores are held to identical semantics.

#![forbid(unsafe_code)]

pub mod codec;
pub mod connector;
pub mod contract;
pub mod error;
pub mod mem;
pub mod rpc;
pub mod traits;
pub mod value;

pub use bytes::Bytes;
pub use connector::Connector;
pub use error::{Result, StoreError};
pub use rpc::{Framer, ReplyMeta, RpcClient, RpcSender, SendOptions, Transport};
pub use traits::{CondGet, KeyValue, StoreStats};
pub use value::{Etag, Versioned};
