//! A reference in-memory store.
//!
//! `MemKv` is the simplest possible [`KeyValue`] implementation: a sharded
//! hash map guarded by `parking_lot::RwLock`s. It serves three roles in the
//! workspace:
//!
//! * the reference semantics against which the [`contract`](crate::contract)
//!   suite was written,
//! * a fast baseline store for examples and tests, and
//! * the backing map reused by the `miniredis` and `cloudstore` servers.

use crate::error::Result;
use crate::traits::{CondGet, KeyValue, StoreStats};
use crate::value::{now_millis, Etag, Versioned};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

const SHARDS: usize = 16;

struct Entry {
    data: Bytes,
    etag: Etag,
    modified_ms: u64,
    version: u64,
}

/// Sharded in-memory key-value store with native version tracking.
pub struct MemKv {
    name: String,
    shards: Vec<RwLock<HashMap<String, Entry>>>,
}

impl MemKv {
    /// Create an empty store with the given display name.
    pub fn new(name: impl Into<String>) -> MemKv {
        MemKv {
            name: name.into(),
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, Entry>> {
        &self.shards[Self::shard_index(key)]
    }

    fn shard_index(key: &str) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    /// Group batch positions by shard so each shard's lock is taken exactly
    /// once per batch, regardless of batch size.
    fn plan_batch(keys: &[&str]) -> [Vec<usize>; SHARDS] {
        let mut plan: [Vec<usize>; SHARDS] = std::array::from_fn(|_| Vec::new());
        for (i, k) in keys.iter().enumerate() {
            plan[Self::shard_index(k)].push(i);
        }
        plan
    }
}

impl Default for MemKv {
    fn default() -> Self {
        MemKv::new("mem")
    }
}

impl KeyValue for MemKv {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        let data = Bytes::copy_from_slice(value);
        let etag = Etag::of_bytes(&data);
        let mut shard = self.shard(key).write();
        let version = shard.get(key).map(|e| e.version + 1).unwrap_or(0);
        shard.insert(
            key.to_string(),
            Entry {
                data,
                etag,
                modified_ms: now_millis(),
                version,
            },
        );
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Bytes>> {
        Ok(self.shard(key).read().get(key).map(|e| e.data.clone()))
    }

    fn delete(&self, key: &str) -> Result<bool> {
        Ok(self.shard(key).write().remove(key).is_some())
    }

    fn contains(&self, key: &str) -> Result<bool> {
        Ok(self.shard(key).read().contains_key(key))
    }

    fn keys(&self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.read().keys().cloned());
        }
        Ok(out)
    }

    fn clear(&self) -> Result<()> {
        for s in &self.shards {
            s.write().clear();
        }
        Ok(())
    }

    fn stats(&self) -> Result<StoreStats> {
        let mut st = StoreStats::default();
        for s in &self.shards {
            let g = s.read();
            st.keys += g.len() as u64;
            st.bytes += g.values().map(|e| e.data.len() as u64).sum::<u64>();
        }
        Ok(st)
    }

    fn get_versioned(&self, key: &str) -> Result<Option<Versioned>> {
        Ok(self.shard(key).read().get(key).map(|e| Versioned {
            data: e.data.clone(),
            etag: e.etag,
            modified_ms: e.modified_ms,
        }))
    }

    fn get_many(&self, keys: &[&str]) -> Result<Vec<Option<Bytes>>> {
        let mut out = vec![None; keys.len()];
        for (s, positions) in Self::plan_batch(keys).iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let shard = self.shards[s].read();
            for &i in positions {
                out[i] = shard.get(keys[i]).map(|e| e.data.clone());
            }
        }
        Ok(out)
    }

    fn put_many(&self, entries: &[(&str, &[u8])]) -> Result<()> {
        let keys: Vec<&str> = entries.iter().map(|&(k, _)| k).collect();
        for (s, positions) in Self::plan_batch(&keys).iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].write();
            // Positions are in batch order, so duplicates resolve to the
            // last write naturally.
            for &i in positions {
                let (key, value) = entries[i];
                let data = Bytes::copy_from_slice(value);
                let etag = Etag::of_bytes(&data);
                let version = shard.get(key).map(|e| e.version + 1).unwrap_or(0);
                shard.insert(
                    key.to_string(),
                    Entry {
                        data,
                        etag,
                        modified_ms: now_millis(),
                        version,
                    },
                );
            }
        }
        Ok(())
    }

    fn delete_many(&self, keys: &[&str]) -> Result<Vec<bool>> {
        let mut out = vec![false; keys.len()];
        for (s, positions) in Self::plan_batch(keys).iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].write();
            for &i in positions {
                out[i] = shard.remove(keys[i]).is_some();
            }
        }
        Ok(out)
    }

    fn get_many_versioned(&self, keys: &[&str]) -> Result<Vec<Option<Versioned>>> {
        let mut out = vec![None; keys.len()];
        for (s, positions) in Self::plan_batch(keys).iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            let shard = self.shards[s].read();
            for &i in positions {
                out[i] = shard.get(keys[i]).map(|e| Versioned {
                    data: e.data.clone(),
                    etag: e.etag,
                    modified_ms: e.modified_ms,
                });
            }
        }
        Ok(out)
    }

    fn get_if_none_match(&self, key: &str, etag: Etag) -> Result<CondGet> {
        let shard = self.shard(key).read();
        match shard.get(key) {
            None => Ok(CondGet::Missing),
            Some(e) if e.etag == etag => Ok(CondGet::NotModified),
            Some(e) => Ok(CondGet::Modified(Versioned {
                data: e.data.clone(),
                etag: e.etag,
                modified_ms: e.modified_ms,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn contract() {
        crate::contract::run_all(&MemKv::new("mem"));
    }

    #[test]
    fn overwrites_bump_versions() {
        let kv = MemKv::new("m");
        kv.put("k", b"a").unwrap();
        let shard = kv.shard("k").read();
        assert_eq!(shard.get("k").unwrap().version, 0);
        drop(shard);
        kv.put("k", b"b").unwrap();
        assert_eq!(kv.shard("k").read().get("k").unwrap().version, 1);
    }

    #[test]
    fn stats_tracks_bytes() {
        let kv = MemKv::new("m");
        kv.put("a", &[0u8; 100]).unwrap();
        kv.put("b", &[0u8; 50]).unwrap();
        let st = kv.stats().unwrap();
        assert_eq!(st.keys, 2);
        assert_eq!(st.bytes, 150);
    }

    #[test]
    fn batch_ops_group_by_shard() {
        let kv = MemKv::new("m");
        let keys: Vec<String> = (0..100).map(|i| format!("key{i}")).collect();
        let entries: Vec<(&str, &[u8])> = keys.iter().map(|k| (k.as_str(), k.as_bytes())).collect();
        kv.put_many(&entries).unwrap();
        assert_eq!(kv.stats().unwrap().keys, 100);
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let got = kv.get_many(&refs).unwrap();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(v.as_deref(), Some(keys[i].as_bytes()));
        }
        let vers = kv.get_many_versioned(&refs).unwrap();
        assert!(vers.iter().all(|v| v.is_some()));
        let deleted = kv.delete_many(&refs).unwrap();
        assert!(deleted.iter().all(|&d| d));
        assert_eq!(kv.stats().unwrap().keys, 0);
    }

    #[test]
    fn concurrent_puts_and_gets() {
        let kv = Arc::new(MemKv::new("m"));
        let mut handles = Vec::new();
        for t in 0..8 {
            let kv = kv.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let key = format!("k{}", (t * 200 + i) % 50);
                    kv.put(&key, format!("v{t}-{i}").as_bytes()).unwrap();
                    let got = kv.get(&key).unwrap();
                    assert!(got.is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kv.stats().unwrap().keys, 50);
    }
}
