//! The transport-split RPC surface.
//!
//! Every remote client in the workspace speaks a request/response protocol
//! over TCP, but historically each one hard-wired its own blocking socket
//! loop. This module splits that into two halves:
//!
//! * **What** to send — the protocol client (SQL statements, RESP
//!   commands, HTTP requests) builds fully framed request bytes and
//!   decodes fully framed reply bytes.
//! * **How** to send it — an [`RpcSender`] moves one framed request to the
//!   server and returns the framed reply, over whichever transport it
//!   implements: a pooled blocking socket, or a shared multiplexed
//!   connection driven by an event loop.
//!
//! The traits live here (and not next to the transports) so protocol
//! crates depend only on `kvapi`: a sender implementation can be swapped
//! without the protocol client knowing which one it got.
//!
//! # Correlation
//!
//! A multiplexed transport interleaves many in-flight requests on one
//! connection, so replies must be matched to requests. Protocols with a
//! correlation slot (the minisql envelope's `id` field, cloudstore's
//! `x-mux-id` header echo) embed an id the sender allocates via
//! [`RpcSender::next_correlation_id`]; the transport's [`Framer`] extracts
//! it back out of each reply. Protocols without a slot (RESP) are
//! blocking-only: [`RpcSender::next_correlation_id`] answers `None` and the
//! transport relies on strict request ordering.

use crate::error::Result;
use std::time::Instant;

/// Which wire strategy a sender uses. Exposed so callers can assert on, or
/// log, how their requests travel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// One socket per in-flight request, checked out of an idle pool;
    /// every call blocks its thread on the socket.
    Blocking,
    /// Many in-flight requests interleaved on one shared connection driven
    /// by an event loop; calls park on a completion, not a socket.
    Multiplexed,
}

/// Per-request hints a [`Framer`] may need to delimit the reply.
///
/// HTTP is the motivating case: a `HEAD` response advertises a
/// content-length but carries no body bytes, so the framer cannot know
/// where the reply ends without knowing what was asked.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplyMeta {
    /// The reply consists of headers only, even if it advertises a body.
    pub head_only: bool,
}

/// Options for one [`RpcSender::send`] call.
#[derive(Default)]
pub struct SendOptions<'a> {
    /// Bypass any pooled/shared connection state and use a fresh
    /// connection (set on retry attempts, where the pooled socket is the
    /// prime suspect).
    pub fresh_conn: bool,
    /// Absolute deadline for the whole exchange. `None` means the
    /// transport's configured request timeout applies.
    pub deadline: Option<Instant>,
    /// Correlation id the caller embedded in the request bytes (obtained
    /// from [`RpcSender::next_correlation_id`]). Multiplexed transports
    /// use it to match the reply; blocking transports ignore it.
    pub correlation_id: Option<u64>,
    /// Reply-delimiting hints for the transport's [`Framer`].
    pub meta: ReplyMeta,
    /// Invoked once the request may have reached the server (after the
    /// blocking flush, or on handoff to the event loop; for a pipelined
    /// batch, once the *first* request is out). Replay-safety guards hook
    /// here: past this point a non-idempotent request must not be retried.
    /// Always called on the requesting thread, so single-threaded state
    /// (a `ReplayGuard`) can be captured by reference.
    pub on_sent: Option<&'a dyn Fn()>,
}

impl<'a> SendOptions<'a> {
    /// Mark the point past which the request may have reached the server.
    pub fn sent(&self) {
        if let Some(f) = self.on_sent {
            f();
        }
    }
}

/// Protocol-specific reply delimiting, supplied by the protocol crate to
/// whichever transport carries it.
///
/// A framer must be exactly as eager as the protocol's parser: when
/// [`Framer::scan_reply`] answers `Some(len)`, the first `len` bytes must
/// decode (or produce a definitive protocol error) with no further input.
pub trait Framer: Send + Sync {
    /// Length of one complete reply at the start of `buf`, or `None` if
    /// more bytes are needed.
    fn scan_reply(&self, buf: &[u8], meta: &ReplyMeta) -> Option<usize>;

    /// The correlation id carried by a complete reply frame, when the
    /// protocol has a correlation slot and the reply used it.
    fn reply_id(&self, frame: &[u8]) -> Option<u64>;
}

/// One request/response exchange over some transport.
///
/// Implementations are shared (`&self`, `Send + Sync`): one sender serves
/// concurrent callers, each exchange carrying its own [`SendOptions`].
pub trait RpcSender: Send + Sync {
    /// Which wire strategy this sender uses.
    fn transport(&self) -> Transport;

    /// Allocate a correlation id for the next request, when this transport
    /// needs one. Callers embed it in the request bytes and pass it back
    /// via [`SendOptions::correlation_id`].
    fn next_correlation_id(&self) -> Option<u64> {
        None
    }

    /// Send one framed request, return the framed reply.
    fn send(&self, req: &[u8], opts: &SendOptions<'_>) -> Result<Vec<u8>>;

    /// Send one framed request, delivering the framed reply to `done`
    /// instead of blocking. The default implementation degrades to a
    /// synchronous [`RpcSender::send`] on the calling thread; multiplexed
    /// transports override it to complete from the event loop.
    fn send_async(
        &self,
        req: Vec<u8>,
        opts: &SendOptions<'_>,
        done: Box<dyn FnOnce(Result<Vec<u8>>) + Send + 'static>,
    ) {
        done(self.send(&req, opts));
    }

    /// Send many framed requests back-to-back and collect the replies
    /// positionally. The default sends them one at a time; transports
    /// override to pipeline (write all, then read all) or interleave.
    fn send_pipelined(&self, reqs: &[Vec<u8>], opts: &SendOptions<'_>) -> Result<Vec<Vec<u8>>> {
        reqs.iter().map(|r| self.send(r, opts)).collect()
    }

    /// Abandon an in-flight request by correlation id: the hedge-loss
    /// hook. A hedged read fires a delayed second request and keeps the
    /// first reply; the loser's slot must be reclaimed promptly — its
    /// parked waiter completed with a transient error — rather than
    /// holding transport state until the full request deadline.
    ///
    /// Returns true when an in-flight entry was found and cancelled;
    /// false when the request already completed (the caller should
    /// collect its result) or the transport tracks no correlation state.
    /// The default is the latter: blocking transports have nothing to
    /// abandon.
    fn abandon(&self, correlation_id: u64) -> bool {
        let _ = correlation_id;
        false
    }
}

/// Implemented by protocol clients built on a pluggable [`RpcSender`] —
/// the uniform way to ask any client how its requests travel.
pub trait RpcClient {
    /// The transport carrying this client's requests.
    fn sender(&self) -> &dyn RpcSender;

    /// Shorthand for `self.sender().transport()`.
    fn transport(&self) -> Transport {
        self.sender().transport()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Echo(AtomicU64);

    impl RpcSender for Echo {
        fn transport(&self) -> Transport {
            Transport::Blocking
        }
        fn next_correlation_id(&self) -> Option<u64> {
            Some(self.0.fetch_add(1, Ordering::Relaxed))
        }
        fn send(&self, req: &[u8], opts: &SendOptions<'_>) -> Result<Vec<u8>> {
            opts.sent();
            Ok(req.to_vec())
        }
    }

    #[test]
    fn default_async_degrades_to_sync() {
        let s = Echo(AtomicU64::new(7));
        let got = std::sync::Arc::new(std::sync::Mutex::new(None));
        let g = got.clone();
        s.send_async(
            b"ping".to_vec(),
            &SendOptions::default(),
            Box::new(move |r| {
                *g.lock().unwrap_or_else(|p| p.into_inner()) = Some(r);
            }),
        );
        let held = got.lock().unwrap_or_else(|p| p.into_inner());
        assert_eq!(
            held.as_ref()
                .and_then(|r| r.as_ref().ok())
                .map(Vec::as_slice),
            Some(&b"ping"[..])
        );
    }

    #[test]
    fn default_pipeline_is_sequential_sends() {
        let s = Echo(AtomicU64::new(0));
        let reqs = vec![b"a".to_vec(), b"b".to_vec()];
        let replies = s.send_pipelined(&reqs, &SendOptions::default()).unwrap();
        assert_eq!(replies, reqs);
    }

    #[test]
    fn on_sent_hook_fires_through_sent() {
        let fired = AtomicU64::new(0);
        let hook = || {
            fired.fetch_add(1, Ordering::Relaxed);
        };
        let opts = SendOptions {
            on_sent: Some(&hook),
            ..SendOptions::default()
        };
        let s = Echo(AtomicU64::new(0));
        s.send(b"x", &opts).unwrap();
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        assert_eq!(s.next_correlation_id(), Some(0));
        assert_eq!(s.next_correlation_id(), Some(1));
    }
}
