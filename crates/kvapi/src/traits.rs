//! The [`KeyValue`] trait — the common interface every data store implements.
//!
//! The interface is deliberately small (the paper's `KeyValue<K,V>`): CRUD on
//! byte values plus enumeration, with two optional extensions used by the
//! enhanced-client layers:
//!
//! * versioned reads ([`KeyValue::get_versioned`]) and
//! * conditional reads ([`KeyValue::get_if_none_match`]) for cache
//!   revalidation (§III of the paper).
//!
//! Stores that cannot do better inherit default implementations of the
//! extensions built from plain `get`, so every store is revalidation-capable
//! even when its native protocol is not (at the cost of transferring the
//! value — exactly the trade-off the paper describes for servers lacking
//! If-Modified-Since support).

use crate::error::Result;
use crate::value::{Etag, Versioned};
use bytes::Bytes;

/// Result of a conditional get (revalidation) request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CondGet {
    /// The client's version is current; no body transferred (HTTP 304).
    NotModified,
    /// The server has a newer version; here it is.
    Modified(Versioned),
    /// The key no longer exists at the store.
    Missing,
}

/// Coarse size/occupancy statistics a store can report about itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of keys currently stored.
    pub keys: u64,
    /// Total payload bytes currently stored (0 if unknown).
    pub bytes: u64,
}

/// The common key-value interface (paper §II-A).
///
/// Keys are UTF-8 strings; values are opaque byte payloads. All operations
/// take `&self`: stores are internally synchronized and are shared across
/// threads behind `Arc<dyn KeyValue>`.
pub trait KeyValue: Send + Sync {
    /// A short human-readable name identifying the store ("fskv", "minisql",
    /// "cloud1", ...). Used by the monitor and the workload generator when
    /// labelling results.
    fn name(&self) -> &str;

    /// Store `value` under `key`, replacing any previous value.
    fn put(&self, key: &str, value: &[u8]) -> Result<()>;

    /// Store `value` and return the entity tag the store now associates
    /// with it — without a second round trip. The default derives a
    /// content tag, which matches any store whose `get_versioned` does the
    /// same; stores with server-assigned version counters override this
    /// (e.g. an object store returning an `ETag` header from the PUT).
    fn put_versioned(&self, key: &str, value: &[u8]) -> Result<Etag> {
        self.put(key, value)?;
        Ok(Etag::of_bytes(value))
    }

    /// Retrieve the value stored under `key`, or `None` if absent.
    fn get(&self, key: &str) -> Result<Option<Bytes>>;

    /// Remove `key`. Returns `true` if a value was present.
    fn delete(&self, key: &str) -> Result<bool>;

    /// True if `key` currently has a value.
    fn contains(&self, key: &str) -> Result<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// List all keys. Order is unspecified.
    ///
    /// Intended for tooling and tests; production workloads should not
    /// assume this is cheap on remote stores.
    fn keys(&self) -> Result<Vec<String>>;

    /// Remove every key.
    fn clear(&self) -> Result<()>;

    /// Occupancy statistics; default derives the key count from [`keys`].
    ///
    /// [`keys`]: KeyValue::keys
    fn stats(&self) -> Result<StoreStats> {
        Ok(StoreStats {
            keys: self.keys()?.len() as u64,
            bytes: 0,
        })
    }

    /// Retrieve the value together with version metadata.
    ///
    /// The default wraps `get` and derives a content etag; stores with
    /// native version tracking override this.
    fn get_versioned(&self, key: &str) -> Result<Option<Versioned>> {
        Ok(self.get(key)?.map(Versioned::new))
    }

    /// Conditional get: fetch the value only if its version differs from
    /// `etag` (the paper's If-Modified-Since analogue).
    ///
    /// The default implementation fetches unconditionally and compares tags
    /// locally — correct for any store, but it transfers the body; remote
    /// stores override this to answer `NotModified` without a body.
    fn get_if_none_match(&self, key: &str, etag: Etag) -> Result<CondGet> {
        match self.get_versioned(key)? {
            None => Ok(CondGet::Missing),
            Some(v) if v.etag == etag => Ok(CondGet::NotModified),
            Some(v) => Ok(CondGet::Modified(v)),
        }
    }

    /// Flush any buffered state to durable storage. Default: no-op.
    fn sync(&self) -> Result<()> {
        Ok(())
    }

    // ---- batch operations ----
    //
    // Remote stores pay one network round trip per operation; batching
    // amortizes that RTT across many keys. The defaults below loop over the
    // single-key operations, so every existing `KeyValue` implementation
    // keeps working unchanged — but native implementations override them to
    // pipeline the whole batch into one round trip (HTTP multi-op request,
    // RESP pipelining, a single SQL transaction, one lock acquisition, ...).
    //
    // Semantics shared by all implementations (enforced by
    // [`contract::batch_ops`](crate::contract::batch_ops)):
    //
    // * results are positional: `get_many(keys)[i]` corresponds to `keys[i]`;
    // * duplicate keys are allowed — each position is answered independently,
    //   and in `put_many` the *last* write for a key wins;
    // * an empty batch is a no-op returning an empty result;
    // * a batch is equivalent to applying the operations sequentially in
    //   order (batches are an optimization, not a transaction guarantee —
    //   although stores may provide atomicity, callers must not rely on it).

    /// Retrieve many values in one call; `None` per missing key, in key
    /// order. Default: a `get` loop.
    fn get_many(&self, keys: &[&str]) -> Result<Vec<Option<Bytes>>> {
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Store many key/value pairs in one call. Later entries overwrite
    /// earlier ones for the same key. Default: a `put` loop.
    fn put_many(&self, entries: &[(&str, &[u8])]) -> Result<()> {
        for (k, v) in entries {
            self.put(k, v)?;
        }
        Ok(())
    }

    /// Remove many keys in one call; returns, per key in order, whether a
    /// value was present. A key duplicated within the batch is only present
    /// for its first occurrence. Default: a `delete` loop.
    fn delete_many(&self, keys: &[&str]) -> Result<Vec<bool>> {
        keys.iter().map(|k| self.delete(k)).collect()
    }

    /// Batch [`get_versioned`](KeyValue::get_versioned): values plus version
    /// metadata, in key order.
    ///
    /// The default derives content etags from [`get_many`](KeyValue::get_many)
    /// — matching the `get_versioned` default, and inheriting whatever
    /// pipelining the store's `get_many` provides. Stores with
    /// server-assigned versions override this alongside `get_versioned` so
    /// batch reads carry the same etags as single reads.
    fn get_many_versioned(&self, keys: &[&str]) -> Result<Vec<Option<Versioned>>> {
        Ok(self
            .get_many(keys)?
            .into_iter()
            .map(|v| v.map(Versioned::new))
            .collect())
    }

    /// Batch [`put_versioned`](KeyValue::put_versioned): store many pairs
    /// and return the etag now associated with each, in entry order.
    ///
    /// The default writes through [`put_many`](KeyValue::put_many) and
    /// derives content tags — consistent with the `put_versioned` default.
    /// Stores with server-assigned version counters override this.
    fn put_many_versioned(&self, entries: &[(&str, &[u8])]) -> Result<Vec<Etag>> {
        self.put_many(entries)?;
        Ok(entries.iter().map(|(_, v)| Etag::of_bytes(v)).collect())
    }
}

/// Blanket implementations so `Arc<S>`, `&S` and `Box<S>` are stores too —
/// lets layers hold concrete or dynamic stores interchangeably.
macro_rules! forward_keyvalue {
    ($ty:ty) => {
        impl<S: KeyValue + ?Sized> KeyValue for $ty {
            fn name(&self) -> &str {
                (**self).name()
            }
            fn put(&self, key: &str, value: &[u8]) -> Result<()> {
                (**self).put(key, value)
            }
            fn put_versioned(&self, key: &str, value: &[u8]) -> Result<Etag> {
                (**self).put_versioned(key, value)
            }
            fn get(&self, key: &str) -> Result<Option<Bytes>> {
                (**self).get(key)
            }
            fn delete(&self, key: &str) -> Result<bool> {
                (**self).delete(key)
            }
            fn contains(&self, key: &str) -> Result<bool> {
                (**self).contains(key)
            }
            fn keys(&self) -> Result<Vec<String>> {
                (**self).keys()
            }
            fn clear(&self) -> Result<()> {
                (**self).clear()
            }
            fn stats(&self) -> Result<StoreStats> {
                (**self).stats()
            }
            fn get_versioned(&self, key: &str) -> Result<Option<Versioned>> {
                (**self).get_versioned(key)
            }
            fn get_if_none_match(&self, key: &str, etag: Etag) -> Result<CondGet> {
                (**self).get_if_none_match(key, etag)
            }
            fn sync(&self) -> Result<()> {
                (**self).sync()
            }
            fn get_many(&self, keys: &[&str]) -> Result<Vec<Option<Bytes>>> {
                (**self).get_many(keys)
            }
            fn put_many(&self, entries: &[(&str, &[u8])]) -> Result<()> {
                (**self).put_many(entries)
            }
            fn delete_many(&self, keys: &[&str]) -> Result<Vec<bool>> {
                (**self).delete_many(keys)
            }
            fn get_many_versioned(&self, keys: &[&str]) -> Result<Vec<Option<Versioned>>> {
                (**self).get_many_versioned(keys)
            }
            fn put_many_versioned(&self, entries: &[(&str, &[u8])]) -> Result<Vec<Etag>> {
                (**self).put_many_versioned(entries)
            }
        }
    };
}

forward_keyvalue!(std::sync::Arc<S>);
forward_keyvalue!(Box<S>);
forward_keyvalue!(&S);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemKv;
    use std::sync::Arc;

    #[test]
    fn default_contains_uses_get() {
        let kv = MemKv::new("m");
        kv.put("a", b"1").unwrap();
        assert!(kv.contains("a").unwrap());
        assert!(!kv.contains("b").unwrap());
    }

    #[test]
    fn default_conditional_get_semantics() {
        let kv = MemKv::new("m");
        kv.put("k", b"v1").unwrap();
        let v = kv.get_versioned("k").unwrap().unwrap();
        assert_eq!(
            kv.get_if_none_match("k", v.etag).unwrap(),
            CondGet::NotModified
        );
        kv.put("k", b"v2").unwrap();
        match kv.get_if_none_match("k", v.etag).unwrap() {
            CondGet::Modified(nv) => assert_eq!(&nv.data[..], b"v2"),
            other => panic!("expected Modified, got {other:?}"),
        }
        kv.delete("k").unwrap();
        assert_eq!(kv.get_if_none_match("k", v.etag).unwrap(), CondGet::Missing);
    }

    #[test]
    fn arc_and_ref_forwarding() {
        let kv = Arc::new(MemKv::new("m"));
        let as_dyn: Arc<dyn KeyValue> = kv.clone();
        as_dyn.put("x", b"y").unwrap();
        assert_eq!(kv.get("x").unwrap().unwrap(), Bytes::from_static(b"y"));
        let by_ref: &dyn KeyValue = &*kv;
        assert_eq!((&by_ref).name(), "m");
    }

    #[test]
    fn default_stats_counts_keys() {
        let kv = MemKv::new("m");
        kv.put("a", b"1").unwrap();
        kv.put("b", b"2").unwrap();
        // MemKv overrides stats, so exercise the default through a shim.
        struct Shim(MemKv);
        impl KeyValue for Shim {
            fn name(&self) -> &str {
                "shim"
            }
            fn put(&self, k: &str, v: &[u8]) -> Result<()> {
                self.0.put(k, v)
            }
            fn get(&self, k: &str) -> Result<Option<Bytes>> {
                self.0.get(k)
            }
            fn delete(&self, k: &str) -> Result<bool> {
                self.0.delete(k)
            }
            fn keys(&self) -> Result<Vec<String>> {
                self.0.keys()
            }
            fn clear(&self) -> Result<()> {
                self.0.clear()
            }
        }
        let shim = Shim(kv);
        assert_eq!(shim.stats().unwrap().keys, 2);
    }

    /// Minimal store exposing only the required methods, so the batch
    /// defaults (loops over single-key ops) are what actually runs.
    struct Minimal(MemKv);
    impl KeyValue for Minimal {
        fn name(&self) -> &str {
            "minimal"
        }
        fn put(&self, k: &str, v: &[u8]) -> Result<()> {
            self.0.put(k, v)
        }
        fn get(&self, k: &str) -> Result<Option<Bytes>> {
            self.0.get(k)
        }
        fn delete(&self, k: &str) -> Result<bool> {
            self.0.delete(k)
        }
        fn keys(&self) -> Result<Vec<String>> {
            self.0.keys()
        }
        fn clear(&self) -> Result<()> {
            self.0.clear()
        }
    }

    #[test]
    fn default_batch_ops_loop_over_singles() {
        let kv = Minimal(MemKv::new("m"));
        kv.put_many(&[("a", b"1"), ("b", b"2"), ("a", b"3")])
            .unwrap();
        let got = kv.get_many(&["a", "missing", "b"]).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(
            got[0].as_deref(),
            Some(&b"3"[..]),
            "last write wins for duplicate keys"
        );
        assert_eq!(got[1], None);
        assert_eq!(got[2].as_deref(), Some(&b"2"[..]));
        assert_eq!(
            kv.delete_many(&["a", "a", "b"]).unwrap(),
            vec![true, false, true]
        );
        assert!(kv.get_many(&[]).unwrap().is_empty());
        kv.put_many(&[]).unwrap();
        assert!(kv.delete_many(&[]).unwrap().is_empty());
    }

    #[test]
    fn default_versioned_batch_ops_match_single_versions() {
        let kv = Minimal(MemKv::new("m"));
        let tags = kv
            .put_many_versioned(&[("x", b"one"), ("y", b"two")])
            .unwrap();
        assert_eq!(tags, vec![Etag::of_bytes(b"one"), Etag::of_bytes(b"two")]);
        let got = kv.get_many_versioned(&["x", "gone", "y"]).unwrap();
        assert_eq!(got[0].as_ref().unwrap().etag, tags[0]);
        assert!(got[1].is_none());
        assert_eq!(got[2].as_ref().unwrap().etag, tags[1]);
        // The returned tags validate as current, like put_versioned's.
        assert_eq!(
            kv.get_if_none_match("x", tags[0]).unwrap(),
            CondGet::NotModified
        );
    }

    #[test]
    fn batch_ops_forward_through_arc_and_box() {
        let kv: Arc<dyn KeyValue> = Arc::new(MemKv::new("m"));
        kv.put_many(&[("k1", b"v1"), ("k2", b"v2")]).unwrap();
        let got = kv.get_many(&["k1", "k2"]).unwrap();
        assert_eq!(got[0].as_deref(), Some(&b"v1"[..]));
        assert_eq!(kv.delete_many(&["k1", "k2"]).unwrap(), vec![true, true]);
    }
}
