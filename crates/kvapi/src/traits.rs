//! The [`KeyValue`] trait — the common interface every data store implements.
//!
//! The interface is deliberately small (the paper's `KeyValue<K,V>`): CRUD on
//! byte values plus enumeration, with two optional extensions used by the
//! enhanced-client layers:
//!
//! * versioned reads ([`KeyValue::get_versioned`]) and
//! * conditional reads ([`KeyValue::get_if_none_match`]) for cache
//!   revalidation (§III of the paper).
//!
//! Stores that cannot do better inherit default implementations of the
//! extensions built from plain `get`, so every store is revalidation-capable
//! even when its native protocol is not (at the cost of transferring the
//! value — exactly the trade-off the paper describes for servers lacking
//! If-Modified-Since support).

use crate::error::Result;
use crate::value::{Etag, Versioned};
use bytes::Bytes;

/// Result of a conditional get (revalidation) request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CondGet {
    /// The client's version is current; no body transferred (HTTP 304).
    NotModified,
    /// The server has a newer version; here it is.
    Modified(Versioned),
    /// The key no longer exists at the store.
    Missing,
}

/// Coarse size/occupancy statistics a store can report about itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of keys currently stored.
    pub keys: u64,
    /// Total payload bytes currently stored (0 if unknown).
    pub bytes: u64,
}

/// The common key-value interface (paper §II-A).
///
/// Keys are UTF-8 strings; values are opaque byte payloads. All operations
/// take `&self`: stores are internally synchronized and are shared across
/// threads behind `Arc<dyn KeyValue>`.
pub trait KeyValue: Send + Sync {
    /// A short human-readable name identifying the store ("fskv", "minisql",
    /// "cloud1", ...). Used by the monitor and the workload generator when
    /// labelling results.
    fn name(&self) -> &str;

    /// Store `value` under `key`, replacing any previous value.
    fn put(&self, key: &str, value: &[u8]) -> Result<()>;

    /// Store `value` and return the entity tag the store now associates
    /// with it — without a second round trip. The default derives a
    /// content tag, which matches any store whose `get_versioned` does the
    /// same; stores with server-assigned version counters override this
    /// (e.g. an object store returning an `ETag` header from the PUT).
    fn put_versioned(&self, key: &str, value: &[u8]) -> Result<Etag> {
        self.put(key, value)?;
        Ok(Etag::of_bytes(value))
    }

    /// Retrieve the value stored under `key`, or `None` if absent.
    fn get(&self, key: &str) -> Result<Option<Bytes>>;

    /// Remove `key`. Returns `true` if a value was present.
    fn delete(&self, key: &str) -> Result<bool>;

    /// True if `key` currently has a value.
    fn contains(&self, key: &str) -> Result<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// List all keys. Order is unspecified.
    ///
    /// Intended for tooling and tests; production workloads should not
    /// assume this is cheap on remote stores.
    fn keys(&self) -> Result<Vec<String>>;

    /// Remove every key.
    fn clear(&self) -> Result<()>;

    /// Occupancy statistics; default derives the key count from [`keys`].
    ///
    /// [`keys`]: KeyValue::keys
    fn stats(&self) -> Result<StoreStats> {
        Ok(StoreStats { keys: self.keys()?.len() as u64, bytes: 0 })
    }

    /// Retrieve the value together with version metadata.
    ///
    /// The default wraps `get` and derives a content etag; stores with
    /// native version tracking override this.
    fn get_versioned(&self, key: &str) -> Result<Option<Versioned>> {
        Ok(self.get(key)?.map(Versioned::new))
    }

    /// Conditional get: fetch the value only if its version differs from
    /// `etag` (the paper's If-Modified-Since analogue).
    ///
    /// The default implementation fetches unconditionally and compares tags
    /// locally — correct for any store, but it transfers the body; remote
    /// stores override this to answer `NotModified` without a body.
    fn get_if_none_match(&self, key: &str, etag: Etag) -> Result<CondGet> {
        match self.get_versioned(key)? {
            None => Ok(CondGet::Missing),
            Some(v) if v.etag == etag => Ok(CondGet::NotModified),
            Some(v) => Ok(CondGet::Modified(v)),
        }
    }

    /// Flush any buffered state to durable storage. Default: no-op.
    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// Blanket implementations so `Arc<S>`, `&S` and `Box<S>` are stores too —
/// lets layers hold concrete or dynamic stores interchangeably.
macro_rules! forward_keyvalue {
    ($ty:ty) => {
        impl<S: KeyValue + ?Sized> KeyValue for $ty {
            fn name(&self) -> &str {
                (**self).name()
            }
            fn put(&self, key: &str, value: &[u8]) -> Result<()> {
                (**self).put(key, value)
            }
            fn put_versioned(&self, key: &str, value: &[u8]) -> Result<Etag> {
                (**self).put_versioned(key, value)
            }
            fn get(&self, key: &str) -> Result<Option<Bytes>> {
                (**self).get(key)
            }
            fn delete(&self, key: &str) -> Result<bool> {
                (**self).delete(key)
            }
            fn contains(&self, key: &str) -> Result<bool> {
                (**self).contains(key)
            }
            fn keys(&self) -> Result<Vec<String>> {
                (**self).keys()
            }
            fn clear(&self) -> Result<()> {
                (**self).clear()
            }
            fn stats(&self) -> Result<StoreStats> {
                (**self).stats()
            }
            fn get_versioned(&self, key: &str) -> Result<Option<Versioned>> {
                (**self).get_versioned(key)
            }
            fn get_if_none_match(&self, key: &str, etag: Etag) -> Result<CondGet> {
                (**self).get_if_none_match(key, etag)
            }
            fn sync(&self) -> Result<()> {
                (**self).sync()
            }
        }
    };
}

forward_keyvalue!(std::sync::Arc<S>);
forward_keyvalue!(Box<S>);
forward_keyvalue!(&S);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemKv;
    use std::sync::Arc;

    #[test]
    fn default_contains_uses_get() {
        let kv = MemKv::new("m");
        kv.put("a", b"1").unwrap();
        assert!(kv.contains("a").unwrap());
        assert!(!kv.contains("b").unwrap());
    }

    #[test]
    fn default_conditional_get_semantics() {
        let kv = MemKv::new("m");
        kv.put("k", b"v1").unwrap();
        let v = kv.get_versioned("k").unwrap().unwrap();
        assert_eq!(kv.get_if_none_match("k", v.etag).unwrap(), CondGet::NotModified);
        kv.put("k", b"v2").unwrap();
        match kv.get_if_none_match("k", v.etag).unwrap() {
            CondGet::Modified(nv) => assert_eq!(&nv.data[..], b"v2"),
            other => panic!("expected Modified, got {other:?}"),
        }
        kv.delete("k").unwrap();
        assert_eq!(kv.get_if_none_match("k", v.etag).unwrap(), CondGet::Missing);
    }

    #[test]
    fn arc_and_ref_forwarding() {
        let kv = Arc::new(MemKv::new("m"));
        let as_dyn: Arc<dyn KeyValue> = kv.clone();
        as_dyn.put("x", b"y").unwrap();
        assert_eq!(kv.get("x").unwrap().unwrap(), Bytes::from_static(b"y"));
        let by_ref: &dyn KeyValue = &*kv;
        assert_eq!((&by_ref).name(), "m");
    }

    #[test]
    fn default_stats_counts_keys() {
        let kv = MemKv::new("m");
        kv.put("a", b"1").unwrap();
        kv.put("b", b"2").unwrap();
        // MemKv overrides stats, so exercise the default through a shim.
        struct Shim(MemKv);
        impl KeyValue for Shim {
            fn name(&self) -> &str {
                "shim"
            }
            fn put(&self, k: &str, v: &[u8]) -> Result<()> {
                self.0.put(k, v)
            }
            fn get(&self, k: &str) -> Result<Option<Bytes>> {
                self.0.get(k)
            }
            fn delete(&self, k: &str) -> Result<bool> {
                self.0.delete(k)
            }
            fn keys(&self) -> Result<Vec<String>> {
                self.0.keys()
            }
            fn clear(&self) -> Result<()> {
                self.0.clear()
            }
        }
        let shim = Shim(kv);
        assert_eq!(shim.stats().unwrap().keys, 2);
    }
}
