//! Versioned values and entity tags.
//!
//! §III of the paper describes expiration-time management in the DSCL: an
//! expired cached object is not necessarily obsolete, so the client can
//! *revalidate* it with the server "in a manner similar to an HTTP GET
//! request with an If-Modified-Since header", sending "a timestamp, entity
//! tag, or other information identifying the version". [`Etag`] is that
//! entity tag and [`Versioned`] is a value bundled with its tag and storage
//! timestamp.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{SystemTime, UNIX_EPOCH};

/// An entity tag identifying one version of a stored object.
///
/// Stores either assign monotonically increasing version counters or derive
/// the tag from the content ([`Etag::of_bytes`], an FNV-1a content hash).
/// Two values with equal tags are treated as identical for revalidation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Etag(pub u64);

impl Etag {
    /// Content-derived tag: 64-bit FNV-1a over the value bytes.
    ///
    /// FNV is not collision-resistant against adversaries; it is used here
    /// the way HTTP servers use weak validators. Stores that need strong
    /// validators may assign version counters instead.
    pub fn of_bytes(data: &[u8]) -> Etag {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for &b in data {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        Etag(h)
    }

    /// Render as the fixed-width hex form used on the wire (HTTP header,
    /// RESP field) by the remote stores.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the wire form produced by [`Etag::to_hex`].
    pub fn from_hex(s: &str) -> Option<Etag> {
        u64::from_str_radix(s.trim().trim_matches('"'), 16)
            .ok()
            .map(Etag)
    }
}

impl fmt::Debug for Etag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Etag({})", self.to_hex())
    }
}

impl fmt::Display for Etag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Milliseconds since the Unix epoch; the timestamp granularity used across
/// the workspace (wire protocols, WAL records, monitor samples).
pub fn now_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// A value together with its version metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Versioned {
    /// The stored bytes. `Bytes` is reference-counted, so handing a
    /// `Versioned` to multiple layers (cache + application) never copies
    /// the payload.
    pub data: Bytes,
    /// Entity tag for this version.
    pub etag: Etag,
    /// When the store recorded this version (ms since epoch). Zero when the
    /// store does not track modification times.
    pub modified_ms: u64,
}

impl Versioned {
    /// Wrap raw bytes, deriving a content etag and stamping the current time.
    pub fn new(data: impl Into<Bytes>) -> Versioned {
        let data = data.into();
        let etag = Etag::of_bytes(&data);
        Versioned {
            data,
            etag,
            modified_ms: now_millis(),
        }
    }

    /// Wrap raw bytes with an explicit store-assigned tag.
    pub fn with_etag(data: impl Into<Bytes>, etag: Etag, modified_ms: u64) -> Versioned {
        Versioned {
            data: data.into(),
            etag,
            modified_ms,
        }
    }

    /// Length of the payload in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn etag_is_content_derived_and_stable() {
        let a = Etag::of_bytes(b"hello");
        let b = Etag::of_bytes(b"hello");
        let c = Etag::of_bytes(b"hellp");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn etag_empty_input_is_fnv_offset() {
        assert_eq!(Etag::of_bytes(b"").0, 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn etag_hex_round_trip() {
        let e = Etag::of_bytes(b"round trip");
        assert_eq!(Etag::from_hex(&e.to_hex()), Some(e));
        // Quoted (HTTP-style) and whitespace-padded forms also parse.
        assert_eq!(Etag::from_hex(&format!("\"{}\"", e.to_hex())), Some(e));
        assert_eq!(Etag::from_hex(&format!("  {}  ", e.to_hex())), Some(e));
        assert_eq!(Etag::from_hex("not hex"), None);
    }

    #[test]
    fn versioned_new_derives_etag() {
        let v = Versioned::new(&b"payload"[..]);
        assert_eq!(v.etag, Etag::of_bytes(b"payload"));
        assert_eq!(v.len(), 7);
        assert!(!v.is_empty());
        assert!(v.modified_ms > 0);
    }

    #[test]
    fn now_millis_is_monotonic_enough() {
        let a = now_millis();
        let b = now_millis();
        assert!(b >= a);
        // Sanity: after 2020-01-01.
        assert!(a > 1_577_836_800_000);
    }
}
