//! [`RemoteCache`] — miniredis as a remote process cache.
//!
//! §III of the paper: "A remote process cache can run on a separate node
//! from the application … can be shared by multiple clients … However,
//! remote process caches are generally slower than in-process caches"
//! because of interprocess communication and serialization. This adapter
//! implements the `dscl-cache` [`Cache`] trait over the miniredis client, so
//! the DSCL can use a remote cache interchangeably with the in-process ones
//! — the benchmark harness uses exactly that symmetry to regenerate the
//! in-process-vs-remote figures (11–19).
//!
//! Like all caches (and unlike stores), it absorbs transport errors as
//! misses: a flaky cache degrades performance, never correctness.

use crate::client::RedisClient;
use bytes::Bytes;
use dscl_cache::{Cache, CacheStats};
use kvapi::Result;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Remote-process cache backed by a miniredis server.
pub struct RemoteCache {
    client: RedisClient,
    prefix: String,
    name: String,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
}

impl RemoteCache {
    /// Connect to a miniredis server.
    pub fn connect(addr: SocketAddr) -> RemoteCache {
        RemoteCache {
            client: RedisClient::connect(addr),
            prefix: "cache:".to_string(),
            name: "remote-redis".to_string(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    /// Namespace cache entries (defaults to `cache:`).
    pub fn with_prefix(mut self, prefix: impl Into<String>) -> RemoteCache {
        self.prefix = prefix.into();
        self
    }

    fn full(&self, key: &str) -> String {
        format!("{}{key}", self.prefix)
    }

    /// Ping the server (used by setup code to fail fast).
    pub fn ping(&self) -> Result<bool> {
        self.client.ping()
    }
}

impl Cache for RemoteCache {
    fn name(&self) -> &str {
        &self.name
    }

    fn get(&self, key: &str) -> Option<Bytes> {
        match self.client.get(&self.full(key)) {
            Ok(Some(v)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, key: &str, value: Bytes) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
        let _ = self.client.set(&self.full(key), &value);
    }

    fn remove(&self, key: &str) -> bool {
        self.client.del(&self.full(key)).unwrap_or(false)
    }

    fn clear(&self) {
        if let Ok(keys) = self.client.keys(&format!("{}*", self.prefix)) {
            for k in keys {
                let _ = self.client.del(&k);
            }
        }
    }

    fn len(&self) -> usize {
        self.client
            .keys(&format!("{}*", self.prefix))
            .map(|k| k.len())
            .unwrap_or(0)
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: 0, // server-side; not tracked per client
            insertions: self.insertions.load(Ordering::Relaxed),
            bytes: 0,
            entries: self.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    #[test]
    fn cache_semantics_end_to_end() {
        let server = Server::start().unwrap();
        let c = RemoteCache::connect(server.addr());
        assert!(c.ping().unwrap());
        assert!(c.get("k").is_none());
        c.put("k", Bytes::from_static(b"v"));
        assert_eq!(c.get("k").unwrap(), Bytes::from_static(b"v"));
        assert_eq!(c.len(), 1);
        assert!(c.remove("k"));
        assert!(!c.remove("k"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn clear_respects_prefix() {
        let server = Server::start().unwrap();
        let cache = RemoteCache::connect(server.addr());
        let other = RedisClient::connect(server.addr());
        other.set("data:primary", b"keep me").unwrap();
        cache.put("x", Bytes::from_static(b"1"));
        cache.put("y", Bytes::from_static(b"2"));
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert_eq!(other.get("data:primary").unwrap().unwrap(), &b"keep me"[..]);
    }

    #[test]
    fn dead_server_degrades_to_misses() {
        let mut server = Server::start().unwrap();
        let c = RemoteCache::connect(server.addr());
        c.put("k", Bytes::from_static(b"v"));
        server.stop();
        // With the server gone, gets are misses and puts are dropped —
        // never panics or hangs.
        assert!(c.get("k").is_none());
        c.put("k2", Bytes::from_static(b"v2"));
        assert!(!c.remove("k"));
        assert_eq!(c.len(), 0);
    }
}
