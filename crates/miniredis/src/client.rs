//! A Jedis-like client for the miniredis server.
//!
//! Built on the transport-split RPC surface (see [`kvapi::rpc`]): the
//! client renders RESP command frames and decodes RESP replies, while a
//! pooled blocking [`rpc::BlockingSender`] moves the bytes. RESP has no
//! correlation slot, so this protocol is blocking-only — replies are
//! matched purely by request order on an exclusively-owned socket, which a
//! multiplexed transport cannot guarantee once a request times out.
//! A pipelining entry point ([`RedisClient::pipeline`]) sends a batch of
//! commands before reading any replies — the standard
//! round-trip-amortization trick.

use crate::resp::{command, read_value, scan_frame, write_value, Scan, Value};
use bytes::Bytes;
use kvapi::{Framer, ReplyMeta, Result, RpcClient, RpcSender, SendOptions, StoreError};
use resilience::{Resilience, ResiliencePolicy};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Reply delimiting for RESP, reusing the server-side scanner. RESP has no
/// correlation slot: [`Framer::reply_id`] always answers `None`.
struct RespFramer;

impl Framer for RespFramer {
    fn scan_reply(&self, buf: &[u8], _meta: &ReplyMeta) -> Option<usize> {
        match scan_frame(buf) {
            Scan::Frame(len) => Some(len),
            Scan::NeedMore => None,
        }
    }

    fn reply_id(&self, _frame: &[u8]) -> Option<u64> {
        None
    }
}

/// Render one command [`Value`] to its RESP wire bytes.
fn encode_command(cmd: &Value) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    write_value(&mut buf, cmd)?;
    Ok(buf)
}

/// Parse one framed RESP reply.
fn decode_reply(mut frame: &[u8]) -> Result<Value> {
    read_value(&mut frame)
}

/// Thread-safe client handle.
///
/// Commands travel over a pooled blocking transport, so concurrent callers
/// (the UDSM thread pool, multi-threaded cache users) run in parallel
/// rather than serializing on one socket — like Jedis's pooled mode. Every
/// command runs under the client's [`resilience`] policy: one total
/// request deadline, breaker gating, and (for idempotent commands only)
/// bounded-backoff retries.
pub struct RedisClient {
    addr: SocketAddr,
    resilience: Resilience,
    sender: Box<dyn RpcSender>,
}

impl RedisClient {
    /// Connect to a server (lazily; the first command opens the socket)
    /// with the default [`ResiliencePolicy`] shared by all native clients.
    pub fn connect(addr: SocketAddr) -> RedisClient {
        RedisClient::connect_with_policy(addr, ResiliencePolicy::default())
    }

    /// Connect with an explicit resilience policy.
    pub fn connect_with_policy(addr: SocketAddr, policy: ResiliencePolicy) -> RedisClient {
        let sender = Box::new(rpc::BlockingSender::new(
            addr,
            policy.clone(),
            Arc::new(RespFramer),
        ));
        RedisClient {
            addr,
            resilience: Resilience::new(policy),
            sender,
        }
    }

    /// Override the total per-request deadline (connect timeout is clamped
    /// to it). The rest of the policy keeps its current values.
    pub fn with_timeout(self, timeout: Duration) -> RedisClient {
        let mut policy = self.resilience.policy().clone();
        policy.connect_timeout = policy.connect_timeout.min(timeout);
        policy.request_timeout = timeout;
        RedisClient::connect_with_policy(self.addr, policy)
    }

    /// This endpoint's live resilience state (breaker, retry counters).
    pub fn resilience(&self) -> &Resilience {
        &self.resilience
    }

    /// Begin the distributed-tracing bookkeeping for one command: join the
    /// caller's active trace (child span) or become a new root (own trace +
    /// scope). The context is minted once per *logical* command — outside
    /// the retry loop — so every attempt shares a single span identity.
    fn begin_traced(
        parts: &[&[u8]],
    ) -> (
        obs::TraceContext,
        Option<obs::Trace>,
        Option<obs::ctx::ContextScope>,
    ) {
        let parent = obs::ctx::current();
        let ctx = match parent {
            Some(p) => p.child(),
            None => obs::TraceContext::new_root(),
        };
        if parent.is_none() {
            let op = parts
                .first()
                .map(|c| String::from_utf8_lossy(c).to_ascii_uppercase())
                .unwrap_or_else(|| "?".into());
            (
                ctx,
                Some(obs::Trace::begin(op).with_ctx(ctx)),
                Some(obs::ctx::activate(ctx)),
            )
        } else {
            (ctx, None, None)
        }
    }

    /// Close the owned half of [`RedisClient::begin_traced`]: absorb the
    /// scope's events and server spans, mark failures, and offer the trace
    /// to the flight recorder. A joined (non-owned) command has nothing to
    /// close — its root will.
    fn finish_traced(
        trace: Option<obs::Trace>,
        scope: Option<obs::ctx::ContextScope>,
        result: &Result<Value>,
    ) {
        if let Some(mut t) = trace {
            if let Some(s) = scope {
                t.absorb_scope(s.finish());
            }
            match result {
                Err(e) => t.set_error(e.to_string()),
                Ok(Value::Error(e)) => t.set_error(e.clone()),
                Ok(_) => {}
            }
            t.complete("miniredis-client");
        }
    }

    /// Undo the server's traced-reply envelope: a two-element array whose
    /// second element is a `trace-span=` bulk. The span is reported to the
    /// active scope; the real reply is returned. Replies from servers that
    /// don't speak the envelope (or error replies, which are never wrapped)
    /// pass through untouched.
    fn unwrap_traced(v: Value) -> Value {
        match v {
            Value::Array(Some(mut items)) if items.len() == 2 => {
                let is_span = matches!(
                    items.get(1),
                    Some(Value::Bulk(Some(b))) if b.starts_with(b"trace-span=")
                );
                if is_span {
                    if let Some(Value::Bulk(Some(b))) = items.pop() {
                        if let Some(span) = std::str::from_utf8(&b)
                            .ok()
                            .and_then(|s| s.strip_prefix("trace-span="))
                            .and_then(obs::ServerSpan::decode)
                        {
                            obs::ctx::report_server_span(span);
                        }
                    }
                    items.pop().unwrap_or_else(Value::nil)
                } else {
                    Value::Array(Some(items))
                }
            }
            other => other,
        }
    }

    /// Issue one command, retrying with backoff on a fresh connection
    /// after a transient failure (a pooled socket may have gone stale).
    ///
    /// Only for idempotent commands: a transient failure after the server
    /// applied the command replays it. Non-idempotent commands (INCR) go
    /// through [`RedisClient::exec_once`]. Everything sent here
    /// (SET/GET/DEL/EXPIRE/...) re-applies the same state.
    pub fn exec(&self, parts: &[&[u8]]) -> Result<Value> {
        let (ctx, trace, scope) = Self::begin_traced(parts);
        let ctx_arg = format!("trace-ctx={}", ctx.encode()).into_bytes();
        let mut full: Vec<&[u8]> = parts.to_vec();
        full.push(&ctx_arg);
        let result = encode_command(&command(&full)).and_then(|req| {
            self.resilience.run_idempotent(|deadline, attempt| {
                let opts = SendOptions {
                    fresh_conn: attempt > 1,
                    deadline: Some(deadline.instant()),
                    ..SendOptions::default()
                };
                decode_reply(&self.sender.send(&req, &opts)?)
            })
        });
        let result = result.map(Self::unwrap_traced);
        Self::finish_traced(trace, scope, &result);
        result
    }

    /// Issue one command exactly once — no retry, so a failure after the
    /// server applied the effect cannot double-apply it. At-most-once is the
    /// only safe default for commands like INCR. Still breaker-gated and
    /// deadline-bounded.
    fn exec_once(&self, parts: &[&[u8]]) -> Result<Value> {
        let (ctx, trace, scope) = Self::begin_traced(parts);
        let ctx_arg = format!("trace-ctx={}", ctx.encode()).into_bytes();
        let mut full: Vec<&[u8]> = parts.to_vec();
        full.push(&ctx_arg);
        let result = encode_command(&command(&full)).and_then(|req| {
            self.resilience.run_once(|deadline| {
                let opts = SendOptions {
                    deadline: Some(deadline.instant()),
                    ..SendOptions::default()
                };
                decode_reply(&self.sender.send(&req, &opts)?)
            })
        });
        let result = result.map(Self::unwrap_traced);
        Self::finish_traced(trace, scope, &result);
        result
    }

    /// Send all commands, then read all replies (pipelining). Not retried:
    /// callers may pipeline non-idempotent commands, and a half-applied
    /// batch must not be replayed wholesale.
    pub fn pipeline(&self, cmds: &[Vec<Vec<u8>>]) -> Result<Vec<Value>> {
        let frames: Vec<Vec<u8>> = cmds
            .iter()
            .map(|parts| {
                let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
                encode_command(&command(&refs))
            })
            .collect::<Result<_>>()?;
        self.resilience.run_once(|deadline| {
            let opts = SendOptions {
                deadline: Some(deadline.instant()),
                ..SendOptions::default()
            };
            self.sender
                .send_pipelined(&frames, &opts)?
                .iter()
                .map(|f| decode_reply(f))
                .collect()
        })
    }

    fn expect_ok(v: Value) -> Result<()> {
        match v {
            Value::Simple(s) if s == "OK" => Ok(()),
            Value::Error(e) => Err(StoreError::Rejected(e)),
            other => Err(StoreError::protocol(format!("expected +OK, got {other:?}"))),
        }
    }

    fn expect_int(v: Value) -> Result<i64> {
        match v {
            Value::Int(n) => Ok(n),
            Value::Error(e) => Err(StoreError::Rejected(e)),
            other => Err(StoreError::protocol(format!(
                "expected integer, got {other:?}"
            ))),
        }
    }

    /// `PING` → true when the server answers PONG.
    pub fn ping(&self) -> Result<bool> {
        Ok(matches!(self.exec(&[b"PING"])?, Value::Simple(s) if s == "PONG"))
    }

    /// `SET key value`.
    pub fn set(&self, key: &str, value: &[u8]) -> Result<()> {
        Self::expect_ok(self.exec(&[b"SET", key.as_bytes(), value])?)
    }

    /// `SET key value PX ms`.
    pub fn set_px(&self, key: &str, value: &[u8], ttl_ms: u64) -> Result<()> {
        let ms = ttl_ms.to_string();
        Self::expect_ok(self.exec(&[b"SET", key.as_bytes(), value, b"PX", ms.as_bytes()])?)
    }

    /// `GET key`.
    pub fn get(&self, key: &str) -> Result<Option<Bytes>> {
        match self.exec(&[b"GET", key.as_bytes()])? {
            Value::Bulk(b) => Ok(b),
            Value::Error(e) => Err(StoreError::Rejected(e)),
            other => Err(StoreError::protocol(format!(
                "expected bulk, got {other:?}"
            ))),
        }
    }

    /// `MGET key...` → one optional value per key, positionally, in a
    /// single round trip.
    pub fn mget(&self, keys: &[&str]) -> Result<Vec<Option<Bytes>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let mut parts: Vec<&[u8]> = Vec::with_capacity(keys.len() + 1);
        parts.push(b"MGET");
        parts.extend(keys.iter().map(|k| k.as_bytes()));
        match self.exec(&parts)? {
            Value::Array(Some(items)) if items.len() == keys.len() => items
                .into_iter()
                .map(|v| match v {
                    Value::Bulk(b) => Ok(b),
                    other => Err(StoreError::protocol(format!("bad MGET item {other:?}"))),
                })
                .collect(),
            Value::Error(e) => Err(StoreError::Rejected(e)),
            other => Err(StoreError::protocol(format!("bad MGET reply {other:?}"))),
        }
    }

    /// `MSET key value ...` — every pair stored in one round trip.
    pub fn mset(&self, pairs: &[(&str, &[u8])]) -> Result<()> {
        if pairs.is_empty() {
            return Ok(()); // the server rejects a bare MSET
        }
        let mut parts: Vec<&[u8]> = Vec::with_capacity(pairs.len() * 2 + 1);
        parts.push(b"MSET");
        for (k, v) in pairs {
            parts.push(k.as_bytes());
            parts.push(v);
        }
        Self::expect_ok(self.exec(&parts)?)
    }

    /// `DEL key` → whether a value existed.
    pub fn del(&self, key: &str) -> Result<bool> {
        Ok(Self::expect_int(self.exec(&[b"DEL", key.as_bytes()])?)? > 0)
    }

    /// Pipelined one-key `DEL`s: variadic `DEL` only reports a total count,
    /// which loses per-key presence, so this sends N commands on one socket
    /// write and reads N replies — one round trip, positional answers.
    pub fn del_many(&self, keys: &[&str]) -> Result<Vec<bool>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let cmds: Vec<Vec<Vec<u8>>> = keys
            .iter()
            .map(|k| vec![b"DEL".to_vec(), k.as_bytes().to_vec()])
            .collect();
        self.pipeline(&cmds)?
            .into_iter()
            .map(|v| Ok(Self::expect_int(v)? > 0))
            .collect()
    }

    /// `EXISTS key`.
    pub fn exists(&self, key: &str) -> Result<bool> {
        Ok(Self::expect_int(self.exec(&[b"EXISTS", key.as_bytes()])?)? > 0)
    }

    /// `PEXPIRE key ms` → whether the key existed.
    pub fn pexpire(&self, key: &str, ttl_ms: u64) -> Result<bool> {
        let ms = ttl_ms.to_string();
        Ok(Self::expect_int(self.exec(&[b"PEXPIRE", key.as_bytes(), ms.as_bytes()])?)? > 0)
    }

    /// `PTTL key` → remaining ms, `None` if no TTL, error text if missing.
    pub fn pttl(&self, key: &str) -> Result<Option<i64>> {
        match Self::expect_int(self.exec(&[b"PTTL", key.as_bytes()])?)? {
            -2 => Err(StoreError::Rejected("no such key".into())),
            -1 => Ok(None),
            n => Ok(Some(n)),
        }
    }

    /// `INCR key`. Sent at-most-once: a retried INCR that actually reached
    /// the server would increment twice.
    pub fn incr(&self, key: &str) -> Result<i64> {
        Self::expect_int(self.exec_once(&[b"INCR", key.as_bytes()])?)
    }

    /// `KEYS pattern`.
    pub fn keys(&self, pattern: &str) -> Result<Vec<String>> {
        match self.exec(&[b"KEYS", pattern.as_bytes()])? {
            Value::Array(Some(items)) => items
                .into_iter()
                .map(|v| match v {
                    Value::Bulk(Some(b)) => String::from_utf8(b.to_vec())
                        .map_err(|_| StoreError::protocol("non-utf8 key")),
                    other => Err(StoreError::protocol(format!("bad KEYS item {other:?}"))),
                })
                .collect(),
            other => Err(StoreError::protocol(format!(
                "expected array, got {other:?}"
            ))),
        }
    }

    /// `SCAN`: iterate all keys matching `pattern` in batches, following
    /// cursors until the server reports completion.
    pub fn scan(&self, pattern: &str, batch: usize) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let mut cursor = "0".to_string();
        let count = batch.max(1).to_string();
        loop {
            let reply = self.exec(&[
                b"SCAN",
                cursor.as_bytes(),
                b"MATCH",
                pattern.as_bytes(),
                b"COUNT",
                count.as_bytes(),
            ])?;
            let Value::Array(Some(mut parts)) = reply else {
                return Err(StoreError::protocol("bad SCAN reply"));
            };
            if parts.len() != 2 {
                return Err(StoreError::protocol("SCAN reply must have 2 elements"));
            }
            let (Some(keys), Some(cur)) = (parts.pop(), parts.pop()) else {
                return Err(StoreError::protocol("SCAN reply must have 2 elements"));
            };
            let Value::Bulk(Some(c)) = cur else {
                return Err(StoreError::protocol("bad SCAN cursor"));
            };
            cursor = String::from_utf8(c.to_vec())
                .map_err(|_| StoreError::protocol("non-utf8 cursor"))?;
            let Value::Array(Some(items)) = keys else {
                return Err(StoreError::protocol("bad SCAN key list"));
            };
            for item in items {
                match item {
                    Value::Bulk(Some(b)) => out.push(
                        String::from_utf8(b.to_vec())
                            .map_err(|_| StoreError::protocol("non-utf8 key"))?,
                    ),
                    other => return Err(StoreError::protocol(format!("bad SCAN item {other:?}"))),
                }
            }
            if cursor == "0" {
                return Ok(out);
            }
        }
    }

    /// `DBSIZE`.
    pub fn dbsize(&self) -> Result<i64> {
        Self::expect_int(self.exec(&[b"DBSIZE"])?)
    }

    /// `FLUSHALL`.
    pub fn flushall(&self) -> Result<()> {
        Self::expect_ok(self.exec(&[b"FLUSHALL"])?)
    }

    /// `METRICS` → the server's Prometheus text exposition, scraped through
    /// the data plane (no HTTP sidecar needed).
    pub fn fetch_metrics(&self) -> Result<String> {
        match self.exec(&[b"METRICS"])? {
            Value::Bulk(Some(b)) => {
                String::from_utf8(b.to_vec()).map_err(|_| StoreError::protocol("non-utf8 metrics"))
            }
            Value::Error(e) => Err(StoreError::Rejected(e)),
            other => Err(StoreError::protocol(format!(
                "expected bulk metrics, got {other:?}"
            ))),
        }
    }
}

impl RpcClient for RedisClient {
    fn sender(&self) -> &dyn RpcSender {
        self.sender.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    #[test]
    fn basic_commands_end_to_end() {
        let server = Server::start().unwrap();
        let c = RedisClient::connect(server.addr());
        assert!(c.ping().unwrap());
        c.set("k", b"v").unwrap();
        assert_eq!(c.get("k").unwrap().unwrap(), Bytes::from_static(b"v"));
        assert!(c.exists("k").unwrap());
        assert!(c.del("k").unwrap());
        assert!(!c.del("k").unwrap());
        assert_eq!(c.get("k").unwrap(), None);
    }

    #[test]
    fn ttl_expiry_end_to_end() {
        let server = Server::start().unwrap();
        let c = RedisClient::connect(server.addr());
        c.set_px("soon", b"gone", 60).unwrap();
        assert!(c.get("soon").unwrap().is_some());
        let ttl = c.pttl("soon").unwrap().unwrap();
        assert!(ttl > 0 && ttl <= 60, "ttl={ttl}");
        std::thread::sleep(Duration::from_millis(90));
        assert_eq!(c.get("soon").unwrap(), None, "value must expire");
        // pexpire on an existing key
        c.set("later", b"v").unwrap();
        assert!(c.pexpire("later", 50).unwrap());
        std::thread::sleep(Duration::from_millis(80));
        assert!(!c.exists("later").unwrap());
    }

    #[test]
    fn incr_and_dbsize() {
        let server = Server::start().unwrap();
        let c = RedisClient::connect(server.addr());
        assert_eq!(c.incr("counter").unwrap(), 1);
        assert_eq!(c.incr("counter").unwrap(), 2);
        c.set("text", b"not a number").unwrap();
        assert!(c.incr("text").is_err());
        assert_eq!(c.dbsize().unwrap(), 2);
        c.flushall().unwrap();
        assert_eq!(c.dbsize().unwrap(), 0);
    }

    #[test]
    fn keys_patterns() {
        let server = Server::start().unwrap();
        let c = RedisClient::connect(server.addr());
        c.set("user:1", b"a").unwrap();
        c.set("user:2", b"b").unwrap();
        c.set("other", b"c").unwrap();
        let mut users = c.keys("user:*").unwrap();
        users.sort();
        assert_eq!(users, vec!["user:1", "user:2"]);
        assert_eq!(c.keys("*").unwrap().len(), 3);
        assert_eq!(c.keys("other").unwrap(), vec!["other"]);
    }

    #[test]
    fn pipeline_round_trips() {
        let server = Server::start().unwrap();
        let c = RedisClient::connect(server.addr());
        let cmds: Vec<Vec<Vec<u8>>> = (0..10)
            .map(|i| {
                vec![
                    b"SET".to_vec(),
                    format!("p{i}").into_bytes(),
                    format!("v{i}").into_bytes(),
                ]
            })
            .collect();
        let replies = c.pipeline(&cmds).unwrap();
        assert_eq!(replies.len(), 10);
        assert!(replies.iter().all(|r| *r == Value::ok()));
        assert_eq!(c.dbsize().unwrap(), 10);
    }

    #[test]
    fn mget_mset_and_del_many_are_positional() {
        let server = Server::start().unwrap();
        let c = RedisClient::connect(server.addr());
        c.mset(&[("a", b"1".as_slice()), ("b", b"2"), ("a", b"1b")])
            .unwrap();
        // MGET answers every position, including misses and duplicates.
        assert_eq!(
            c.mget(&["a", "nope", "b", "a"]).unwrap(),
            vec![
                Some(Bytes::from_static(b"1b")),
                None,
                Some(Bytes::from_static(b"2")),
                Some(Bytes::from_static(b"1b")),
            ]
        );
        // Pipelined DELs: a duplicate key is only present for its first DEL.
        assert_eq!(
            c.del_many(&["a", "nope", "b", "a"]).unwrap(),
            vec![true, false, true, false]
        );
        assert_eq!(c.dbsize().unwrap(), 0);
        // Empty batches never touch the socket.
        assert_eq!(c.mget(&[]).unwrap(), Vec::<Option<Bytes>>::new());
        c.mset(&[]).unwrap();
        assert_eq!(c.del_many(&[]).unwrap(), Vec::<bool>::new());
    }

    #[test]
    fn reconnects_after_server_restart_fails_gracefully() {
        let mut server = Server::start().unwrap();
        let addr = server.addr();
        let c = RedisClient::connect(addr).with_timeout(Duration::from_millis(500));
        c.set("k", b"v").unwrap();
        server.stop();
        // Server gone: command must error, not hang or panic.
        assert!(c.ping().is_err() || c.get("k").is_err());
    }

    /// A pooled connection the server has long since closed must be aged
    /// out at checkout, not handed to the request — otherwise the first
    /// command after an idle period eats a doomed round-trip plus a retry.
    #[test]
    fn aged_pool_does_not_inflate_first_request_latency() {
        let server = Server::start().unwrap();
        let mut aging_policy = ResiliencePolicy::test_profile();
        aging_policy.max_idle_age = Duration::from_millis(50);
        let aging = RedisClient::connect_with_policy(server.addr(), aging_policy);
        let control =
            RedisClient::connect_with_policy(server.addr(), ResiliencePolicy::test_profile());

        aging.set("k", b"v").unwrap();
        control.set("k", b"v").unwrap();
        // Server drops every established connection (idle-timeout style),
        // then both pools sit past the aging client's max idle age.
        server.drop_connections();
        std::thread::sleep(Duration::from_millis(100));

        assert_eq!(aging.get("k").unwrap().unwrap(), Bytes::from_static(b"v"));
        assert_eq!(
            aging.resilience().retries(),
            0,
            "aged-out pool must open fresh, not burn a retry on a dead socket"
        );
        assert_eq!(control.get("k").unwrap().unwrap(), Bytes::from_static(b"v"));
        assert!(
            control.resilience().retries() >= 1,
            "control kept the dead socket and had to retry"
        );
    }

    #[test]
    fn metrics_command_scrapes_prometheus_text() {
        let server = Server::start().unwrap();
        let c = RedisClient::connect(server.addr());
        c.set("k", b"v").unwrap();
        c.get("k").unwrap();
        c.get("k").unwrap();
        let text = c.fetch_metrics().unwrap();
        // Every series carries the server's stable node identity.
        let node = format!("node=\"{}\"", server.addr());
        assert!(
            text.contains(&format!("miniredis_commands_total{{cmd=\"SET\",{node}}} 1")),
            "{text}"
        );
        assert!(
            text.contains(&format!("miniredis_commands_total{{cmd=\"GET\",{node}}} 2")),
            "{text}"
        );
        // Server-side command latency histograms ride along, node-tagged.
        assert!(
            text.contains(&format!(
                "miniredis_command_duration_ns_count{{cmd=\"GET\",{node}}} 2"
            )),
            "{text}"
        );
        // The in-process registry agrees with the wire scrape.
        assert!(server
            .registry()
            .render_prometheus()
            .contains(&format!("miniredis_commands_total{{cmd=\"SET\",{node}}} 1")));
        // Process resource gauges ride along on every scrape.
        assert!(
            text.contains("# TYPE process_resident_memory_bytes gauge"),
            "{text}"
        );
        assert!(text.contains("process_threads "), "{text}");
    }

    #[test]
    fn traced_commands_join_the_server_span() {
        let server = Server::start().unwrap();
        let c = RedisClient::connect(server.addr());
        let root = obs::TraceContext::new_root();
        let scope = obs::ctx::activate(root);
        c.set("k", b"v").unwrap();
        assert_eq!(c.get("k").unwrap().unwrap(), Bytes::from_static(b"v"));
        let data = scope.finish();
        assert_eq!(data.server_spans.len(), 2, "{:?}", data.server_spans);
        assert!(data.server_spans.iter().all(|s| s.server == "miniredis"));
    }

    #[test]
    fn traced_error_reply_is_unwrapped_and_retained_by_the_recorder() {
        let server = Server::start().unwrap();
        let c = RedisClient::connect(server.addr());
        let root = obs::TraceContext::new_root();
        let scope = obs::ctx::activate(root);
        // Error replies are never wrapped: the client sees the bare error.
        match c.exec(&[b"NOSUCHCMD"]).unwrap() {
            Value::Error(e) => assert!(e.contains("unknown command")),
            other => panic!("expected error reply, got {other:?}"),
        }
        let data = scope.finish();
        assert!(data.server_spans.is_empty(), "errors carry no span");
        // But the server-side record is an error trace → retained 100%.
        let recs = obs::FlightRecorder::global().by_trace_id(root.trace_id);
        let rec = recs
            .iter()
            .find(|t| t.origin == "miniredis")
            .expect("server-side error trace retained");
        assert_eq!(rec.op, "NOSUCHCMD");
        assert!(rec.error.as_deref().unwrap_or("").contains("unknown"));
    }

    #[test]
    fn untraced_old_client_gets_plain_replies() {
        // Mixed versions: a raw RESP client that never sends `trace-ctx=`
        // must see byte-identical behaviour — no envelope on replies.
        use crate::resp::{read_value, write_value};
        use std::io::Write;
        let server = Server::start().unwrap();
        let stream = std::net::TcpStream::connect(server.addr()).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = std::io::BufWriter::new(stream);
        write_value(&mut writer, &command(&[b"SET", b"k", b"v"])).unwrap();
        writer.flush().unwrap();
        assert_eq!(read_value(&mut reader).unwrap(), Value::ok());
        write_value(&mut writer, &command(&[b"GET", b"k"])).unwrap();
        writer.flush().unwrap();
        assert_eq!(
            read_value(&mut reader).unwrap(),
            Value::Bulk(Some(Bytes::from_static(b"v")))
        );
    }

    #[test]
    fn unknown_command_is_rejected() {
        let server = Server::start().unwrap();
        let c = RedisClient::connect(server.addr());
        match c.exec(&[b"NOSUCHCMD"]).unwrap() {
            Value::Error(e) => assert!(e.contains("unknown command")),
            other => panic!("expected error reply, got {other:?}"),
        }
    }

    #[test]
    fn binary_safe_values() {
        let server = Server::start().unwrap();
        let c = RedisClient::connect(server.addr());
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        c.set("bin", &data).unwrap();
        assert_eq!(c.get("bin").unwrap().unwrap(), Bytes::from(data));
    }

    #[test]
    fn memory_bound_evicts_lru() {
        let server = Server::start_with(crate::server::ServerConfig {
            max_memory: 5_000,
            ..Default::default()
        })
        .unwrap();
        let c = RedisClient::connect(server.addr());
        for i in 0..100 {
            c.set(&format!("k{i}"), &[0u8; 100]).unwrap();
        }
        let n = c.dbsize().unwrap();
        assert!(n < 100, "eviction should have kicked in, still have {n}");
        assert!(n > 10, "should retain a working set, only {n} left");
    }

    #[test]
    fn concurrent_clients() {
        let server = Server::start().unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..6)
            .map(|t| {
                std::thread::spawn(move || {
                    let c = RedisClient::connect(addr);
                    for i in 0..100 {
                        let k = format!("t{t}-{i}");
                        c.set(&k, k.as_bytes()).unwrap();
                        assert_eq!(c.get(&k).unwrap().unwrap(), Bytes::from(k.into_bytes()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let c = RedisClient::connect(addr);
        assert_eq!(c.dbsize().unwrap(), 600);
    }
}

#[cfg(test)]
mod scan_tests {
    use super::*;
    use crate::server::Server;

    #[test]
    fn scan_iterates_everything_in_batches() {
        let server = Server::start().unwrap();
        let c = RedisClient::connect(server.addr());
        for i in 0..57 {
            c.set(&format!("key:{i:03}"), b"v").unwrap();
        }
        c.set("other", b"v").unwrap();
        let mut keys = c.scan("key:*", 10).unwrap();
        keys.sort();
        assert_eq!(keys.len(), 57);
        assert_eq!(keys[0], "key:000");
        assert_eq!(keys[56], "key:056");
        // Exact-match and match-all patterns.
        assert_eq!(c.scan("other", 5).unwrap(), vec!["other"]);
        assert_eq!(c.scan("*", 7).unwrap().len(), 58);
        assert!(c.scan("missing*", 5).unwrap().is_empty());
    }

    #[test]
    fn scan_skips_expired_entries() {
        let server = Server::start().unwrap();
        let c = RedisClient::connect(server.addr());
        c.set("live", b"v").unwrap();
        c.set_px("dying", b"v", 30).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert_eq!(c.scan("*", 10).unwrap(), vec!["live"]);
    }
}
