//! # miniredis — a Redis-compatible remote-process cache, from scratch
//!
//! The paper uses "a Redis instance running on the client node accessed via
//! the Jedis client" both as a data store in its own right (Figs. 9/10/19)
//! and as the **remote process cache** for every other store
//! (Figs. 12/14/16/18). No Redis is available offline, so this crate
//! implements the relevant slice of it over real TCP:
//!
//! * [`resp`] — the RESP2 wire protocol (what Redis and Jedis speak);
//! * [`server`] — a threaded server with per-key expiration, lazy + active
//!   expiry, and approximate-LRU eviction under a memory bound (sampling
//!   eviction, like real Redis's `allkeys-lru`);
//! * [`client`] — a Jedis-like client with reconnect and pipelining;
//! * [`RedisKv`] — the client exposed through the common [`kvapi::KeyValue`]
//!   interface;
//! * [`RemoteCache`] — the client exposed through the `dscl-cache`
//!   [`Cache`](dscl_cache::Cache) interface, which is what makes it a
//!   drop-in *remote process cache* for the DSCL.
//!
//! Because client and server are separate processes-worth of machinery
//! talking through the loopback stack, reads genuinely pay interprocess
//! communication + serialization — the overhead the paper measures when
//! comparing remote-process against in-process caching (its Fig. 19
//! discussion).

#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod persist;
pub mod resp;
pub mod server;
pub mod store;

pub use cache::RemoteCache;
pub use client::RedisClient;
pub use server::{Server, ServerConfig};
pub use store::RedisKv;
