//! Snapshot persistence — miniredis's RDB analogue.
//!
//! §III of the paper: "Some caches such as redis have the ability to back
//! up data in persistent storage … It is also often desirable to store some
//! data from a cache persistently before shutting down a cache process.
//! That way, when the cache is restarted, it can quickly be brought to a
//! warm state by reading in the data previously stored persistently."
//!
//! Format: `MRDB` magic, entry count, then per entry:
//! `key_len u32 | key | val_len u32 | val | expires_at u64 (0 = none)`.
//! Entries whose TTL has already elapsed are skipped at save time and again
//! at load time, so a snapshot never resurrects dead values.

use kvapi::value::now_millis;
use kvapi::{Result, StoreError};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"MRDB";

/// One persisted entry.
pub struct SnapshotEntry {
    /// Key.
    pub key: String,
    /// Value bytes.
    pub value: Vec<u8>,
    /// Absolute expiry in ms since epoch; `None` = immortal.
    pub expires_at: Option<u64>,
}

/// Write entries to `path` atomically (tmp + rename). Already-expired
/// entries are dropped.
pub fn save(path: impl AsRef<Path>, entries: impl Iterator<Item = SnapshotEntry>) -> Result<u64> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    let now = now_millis();
    let mut written = 0u64;
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        w.write_all(MAGIC)?;
        // Count written later? Stream format instead: sentinel-free, read
        // to EOF. Keep it simple and robust: no count field.
        for e in entries {
            if e.expires_at.map(|t| t <= now).unwrap_or(false) {
                continue;
            }
            w.write_all(&(e.key.len() as u32).to_le_bytes())?;
            w.write_all(e.key.as_bytes())?;
            w.write_all(&(e.value.len() as u32).to_le_bytes())?;
            w.write_all(&e.value)?;
            w.write_all(&e.expires_at.unwrap_or(0).to_le_bytes())?;
            written += 1;
        }
        w.flush()?;
        w.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(written)
}

/// Load a snapshot; missing file = empty. Expired entries are skipped.
pub fn load(path: impl AsRef<Path>) -> Result<Vec<SnapshotEntry>> {
    let file = match std::fs::File::open(path.as_ref()) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|_| StoreError::corrupt("snapshot too short"))?;
    if &magic != MAGIC {
        return Err(StoreError::corrupt("bad snapshot magic"));
    }
    let now = now_millis();
    let mut out = Vec::new();
    loop {
        let mut len4 = [0u8; 4];
        match r.read_exact(&mut len4) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let key_len = u32::from_le_bytes(len4) as usize;
        if key_len > 1 << 20 {
            return Err(StoreError::corrupt("implausible key length"));
        }
        let mut key = vec![0u8; key_len];
        r.read_exact(&mut key)
            .map_err(|_| StoreError::corrupt("truncated snapshot key"))?;
        r.read_exact(&mut len4)
            .map_err(|_| StoreError::corrupt("truncated snapshot"))?;
        let val_len = u32::from_le_bytes(len4) as usize;
        if val_len > 1 << 30 {
            return Err(StoreError::corrupt("implausible value length"));
        }
        let mut value = vec![0u8; val_len];
        r.read_exact(&mut value)
            .map_err(|_| StoreError::corrupt("truncated snapshot value"))?;
        let mut exp8 = [0u8; 8];
        r.read_exact(&mut exp8)
            .map_err(|_| StoreError::corrupt("truncated snapshot expiry"))?;
        let expires_at = match u64::from_le_bytes(exp8) {
            0 => None,
            t => Some(t),
        };
        if expires_at.map(|t| t <= now).unwrap_or(false) {
            continue;
        }
        let key = String::from_utf8(key).map_err(|_| StoreError::corrupt("non-utf8 key"))?;
        out.push(SnapshotEntry {
            key,
            value,
            expires_at,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mrdb-{tag}-{}", std::process::id()))
    }

    #[test]
    fn round_trip() {
        let path = temp("rt");
        let entries = vec![
            SnapshotEntry {
                key: "a".into(),
                value: b"1".to_vec(),
                expires_at: None,
            },
            SnapshotEntry {
                key: "b".into(),
                value: vec![0u8; 10_000],
                expires_at: Some(now_millis() + 60_000),
            },
        ];
        assert_eq!(save(&path, entries.into_iter()).unwrap(), 2);
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].key, "a");
        assert_eq!(loaded[1].value.len(), 10_000);
        assert!(loaded[1].expires_at.is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn expired_entries_dropped_on_save_and_load() {
        let path = temp("exp");
        let entries = vec![
            SnapshotEntry {
                key: "live".into(),
                value: b"x".to_vec(),
                expires_at: None,
            },
            SnapshotEntry {
                key: "dead".into(),
                value: b"y".to_vec(),
                expires_at: Some(1),
            },
        ];
        assert_eq!(
            save(&path, entries.into_iter()).unwrap(),
            1,
            "dead entry skipped at save"
        );
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].key, "live");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        assert!(load(temp("missing")).unwrap().is_empty());
    }

    #[test]
    fn corrupt_snapshots_rejected() {
        let path = temp("bad");
        std::fs::write(&path, b"NOPE").unwrap();
        assert!(load(&path).is_err());
        std::fs::write(&path, b"MRDB\xff\xff\xff\xff").unwrap();
        assert!(load(&path).is_err());
        // Truncated mid-entry.
        save(
            &path,
            vec![SnapshotEntry {
                key: "k".into(),
                value: vec![9; 100],
                expires_at: None,
            }]
            .into_iter(),
        )
        .unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data.truncate(data.len() - 20);
        std::fs::write(&path, &data).unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
