//! RESP2 (REdis Serialization Protocol) encoding and decoding.
//!
//! The five frame types: simple strings (`+OK\r\n`), errors (`-ERR …`),
//! integers (`:42`), bulk strings (`$5\r\nhello\r\n`, `$-1` = nil) and
//! arrays (`*2\r\n…`, `*-1` = nil array).

// Wire-facing arithmetic must be visibly checked or saturating.
#![warn(clippy::arithmetic_side_effects)]

use bytes::Bytes;
use kvapi::{Result, StoreError};
use std::io::{BufRead, Write};

/// One RESP value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `+...` simple string.
    Simple(String),
    /// `-...` error reply.
    Error(String),
    /// `:n` integer.
    Int(i64),
    /// `$n` bulk string; `None` is the nil bulk (`$-1`).
    Bulk(Option<Bytes>),
    /// `*n` array; `None` is the nil array (`*-1`).
    Array(Option<Vec<Value>>),
}

impl Value {
    /// Convenience: a non-nil bulk from bytes.
    pub fn bulk(data: impl Into<Bytes>) -> Value {
        Value::Bulk(Some(data.into()))
    }

    /// Convenience: the nil bulk.
    pub fn nil() -> Value {
        Value::Bulk(None)
    }

    /// Convenience: `+OK`.
    pub fn ok() -> Value {
        Value::Simple("OK".to_string())
    }
}

/// Serialize `v` to `w`.
pub fn write_value(w: &mut impl Write, v: &Value) -> std::io::Result<()> {
    match v {
        Value::Simple(s) => {
            debug_assert!(!s.contains('\r') && !s.contains('\n'));
            write!(w, "+{s}\r\n")
        }
        Value::Error(s) => write!(w, "-{s}\r\n"),
        Value::Int(n) => write!(w, ":{n}\r\n"),
        Value::Bulk(None) => w.write_all(b"$-1\r\n"),
        Value::Bulk(Some(data)) => {
            write!(w, "${}\r\n", data.len())?;
            w.write_all(data)?;
            w.write_all(b"\r\n")
        }
        Value::Array(None) => w.write_all(b"*-1\r\n"),
        Value::Array(Some(items)) => {
            write!(w, "*{}\r\n", items.len())?;
            for item in items {
                write_value(w, item)?;
            }
            Ok(())
        }
    }
}

fn read_line(r: &mut impl BufRead) -> Result<String> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Err(StoreError::Closed);
    }
    if !line.ends_with("\r\n") {
        return Err(StoreError::protocol("RESP line missing CRLF"));
    }
    line.truncate(line.len().saturating_sub(2));
    Ok(line)
}

/// Nesting allowed before a frame is rejected — deep enough for any real
/// client, shallow enough that a hostile `*1\r\n*1\r\n…` chain can't blow
/// the stack.
const MAX_DEPTH: usize = 32;

/// Deserialize one value from `r`. Returns `StoreError::Closed` on clean EOF
/// at a frame boundary.
pub fn read_value(r: &mut impl BufRead) -> Result<Value> {
    read_value_at(r, 0)
}

fn read_value_at(r: &mut impl BufRead, depth: usize) -> Result<Value> {
    if depth > MAX_DEPTH {
        return Err(StoreError::protocol("RESP frame nested too deeply"));
    }
    let line = read_line(r)?;
    let (kind, rest) = line
        .split_at_checked(1)
        .ok_or_else(|| StoreError::protocol("empty RESP frame"))?;
    match kind {
        "+" => Ok(Value::Simple(rest.to_string())),
        "-" => Ok(Value::Error(rest.to_string())),
        ":" => rest
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| StoreError::protocol(format!("bad integer {rest:?}"))),
        "$" => {
            let n: i64 = rest
                .parse()
                .map_err(|_| StoreError::protocol(format!("bad bulk len {rest:?}")))?;
            if n < 0 {
                return Ok(Value::Bulk(None));
            }
            if n > 512 * 1024 * 1024 {
                return Err(StoreError::protocol("bulk string too large"));
            }
            let len =
                usize::try_from(n).map_err(|_| StoreError::protocol("bulk len out of range"))?;
            let mut buf = vec![0u8; len.saturating_add(2)];
            r.read_exact(&mut buf)
                .map_err(|_| StoreError::protocol("truncated bulk string"))?;
            if buf.get(len..) != Some(b"\r\n") {
                return Err(StoreError::protocol("bulk string missing CRLF"));
            }
            buf.truncate(len);
            Ok(Value::Bulk(Some(Bytes::from(buf))))
        }
        "*" => {
            let n: i64 = rest
                .parse()
                .map_err(|_| StoreError::protocol(format!("bad array len {rest:?}")))?;
            if n < 0 {
                return Ok(Value::Array(None));
            }
            if n > 1_000_000 {
                return Err(StoreError::protocol("array too large"));
            }
            let len =
                usize::try_from(n).map_err(|_| StoreError::protocol("array len out of range"))?;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(read_value_at(r, depth.saturating_add(1))?);
            }
            Ok(Value::Array(Some(items)))
        }
        other => Err(StoreError::protocol(format!("unknown RESP type {other:?}"))),
    }
}

/// Result of structurally scanning a buffer for one complete frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scan {
    /// The buffer holds only a prefix of a frame; read more bytes.
    NeedMore,
    /// `buf[..len]` is one deliverable unit: either a complete frame or a
    /// malformed prefix [`read_value`] will reject without reading further.
    Frame(usize),
}

/// Structurally locate one frame in `buf` without validating content.
///
/// The scanner is exactly as eager as [`read_value`]: whenever it returns
/// [`Scan::Frame`], the parser run over that slice terminates (with a value
/// or an error) without needing more input, and whenever it returns
/// [`Scan::NeedMore`], the parser at EOF would report truncation. This is
/// what lets the event-driven server reuse the blocking parser per frame
/// and keep its error text byte-identical.
pub fn scan_frame(buf: &[u8]) -> Scan {
    match scan_at(buf, 0, 0) {
        Some(end) => Scan::Frame(end),
        None => Scan::NeedMore,
    }
}

/// Find the end of the line starting at `pos`: returns (next position,
/// line content without the terminator). Any `\n` terminates — lines
/// missing the `\r` are structurally complete and rejected by the parser.
fn scan_line(buf: &[u8], pos: usize) -> Option<(usize, &[u8])> {
    let rest = buf.get(pos..)?;
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let mut line = rest.get(..nl).unwrap_or_default();
    if line.last() == Some(&b'\r') {
        line = line.get(..line.len().saturating_sub(1)).unwrap_or_default();
    }
    pos.checked_add(nl)?.checked_add(1).map(|next| (next, line))
}

fn scan_int(line: &[u8]) -> Option<i64> {
    std::str::from_utf8(line).ok()?.parse().ok()
}

fn scan_at(buf: &[u8], pos: usize, depth: usize) -> Option<usize> {
    let (line_end, line) = scan_line(buf, pos)?;
    if depth > MAX_DEPTH {
        // The parser errors on entry at this depth without consuming; the
        // enclosing frame is already deliverable.
        return Some(pos);
    }
    let payload = line.get(1..).unwrap_or_default();
    match line.first() {
        Some(b'+') | Some(b'-') | Some(b':') => Some(line_end),
        Some(b'$') => match scan_int(payload) {
            Some(n) if n >= 0 => {
                if n > 512 * 1024 * 1024 {
                    // Parser rejects the length before touching the payload.
                    return Some(line_end);
                }
                let len = usize::try_from(n).ok()?;
                let need = line_end.checked_add(len)?.checked_add(2)?;
                (buf.len() >= need).then_some(need)
            }
            // Negative (nil) or unparseable: the line alone decides.
            _ => Some(line_end),
        },
        Some(b'*') => match scan_int(payload) {
            Some(n) if n > 0 => {
                if n > 1_000_000 {
                    return Some(line_end);
                }
                let mut at = line_end;
                for _ in 0..n {
                    at = scan_at(buf, at, depth.saturating_add(1))?;
                }
                Some(at)
            }
            // Empty, nil, or unparseable array: the line alone decides.
            _ => Some(line_end),
        },
        // Unknown type byte or empty line: parser rejects the line as-is.
        _ => Some(line_end),
    }
}

/// Encode a client command (array of bulk strings).
pub fn command(parts: &[&[u8]]) -> Value {
    Value::Array(Some(
        parts
            .iter()
            .map(|p| Value::bulk(Bytes::copy_from_slice(p)))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn round_trip(v: &Value) -> Value {
        let mut buf = Vec::new();
        write_value(&mut buf, v).unwrap();
        read_value(&mut BufReader::new(&buf[..])).unwrap()
    }

    #[test]
    fn all_types_round_trip() {
        for v in [
            Value::Simple("OK".into()),
            Value::Error("ERR something broke".into()),
            Value::Int(0),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::bulk(&b"hello"[..]),
            Value::bulk(&b""[..]),
            Value::bulk(&b"with\r\nnewlines\0and nul"[..]),
            Value::nil(),
            Value::Array(None),
            Value::Array(Some(vec![])),
            Value::Array(Some(vec![
                Value::bulk(&b"SET"[..]),
                Value::bulk(&b"key"[..]),
                Value::Int(7),
                Value::Array(Some(vec![Value::nil()])),
            ])),
        ] {
            assert_eq!(round_trip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn wire_format_examples() {
        let mut buf = Vec::new();
        write_value(&mut buf, &Value::ok()).unwrap();
        assert_eq!(buf, b"+OK\r\n");
        buf.clear();
        write_value(&mut buf, &Value::bulk(&b"hey"[..])).unwrap();
        assert_eq!(buf, b"$3\r\nhey\r\n");
        buf.clear();
        write_value(&mut buf, &Value::nil()).unwrap();
        assert_eq!(buf, b"$-1\r\n");
        buf.clear();
        write_value(&mut buf, &command(&[b"GET", b"k"])).unwrap();
        assert_eq!(buf, b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n");
    }

    #[test]
    fn malformed_input_rejected() {
        for bad in [
            &b"hello\r\n"[..],    // unknown type
            &b"$5\r\nhi\r\n"[..], // bulk shorter than declared
            &b":notanum\r\n"[..], // bad integer
            &b"$3\r\nabcXY"[..],  // missing CRLF terminator
            &b"*2\r\n:1\r\n"[..], // truncated array
        ] {
            assert!(
                read_value(&mut BufReader::new(bad)).is_err(),
                "accepted malformed {bad:?}"
            );
        }
    }

    #[test]
    fn hostile_nesting_rejected() {
        // A chain of single-element arrays deeper than MAX_DEPTH must come
        // back as a protocol error, not a stack overflow.
        let frame = "*1\r\n".repeat(MAX_DEPTH + 2).into_bytes();
        let err = read_value(&mut BufReader::new(&frame[..])).unwrap_err();
        assert!(format!("{err}").contains("nested"), "{err:?}");
    }

    #[test]
    fn scanner_agrees_with_parser_on_complete_frames() {
        for v in [
            Value::Simple("OK".into()),
            Value::Error("ERR x".into()),
            Value::Int(-7),
            Value::bulk(&b"hello"[..]),
            Value::bulk(&b""[..]),
            Value::nil(),
            Value::Array(None),
            Value::Array(Some(vec![])),
            Value::Array(Some(vec![
                Value::bulk(&b"SET"[..]),
                Value::bulk(&b"k"[..]),
                Value::Array(Some(vec![Value::Int(1), Value::nil()])),
            ])),
        ] {
            let mut wire = Vec::new();
            write_value(&mut wire, &v).unwrap();
            // The exact frame scans to its full length...
            assert_eq!(scan_frame(&wire), Scan::Frame(wire.len()), "{v:?}");
            // ...every strict prefix wants more bytes...
            for cut in 0..wire.len() {
                assert_eq!(
                    scan_frame(&wire[..cut]),
                    Scan::NeedMore,
                    "{v:?} cut at {cut}"
                );
            }
            // ...and trailing pipelined bytes don't change the boundary.
            let mut two = wire.clone();
            two.extend_from_slice(&wire);
            assert_eq!(scan_frame(&two), Scan::Frame(wire.len()));
        }
    }

    #[test]
    fn scanner_delivers_malformed_frames_for_parser_rejection() {
        // Each input is structurally terminal: the scanner hands it over
        // and the parser must then fail without wanting more bytes.
        for bad in [
            &b"hello\r\n"[..],         // unknown type byte
            &b":notanum\r\n"[..],      // bad integer
            &b"$abc\r\n"[..],          // bad bulk length
            &b"$999999999999\r\n"[..], // bulk beyond the size cap
            &b"*xyz\r\n"[..],          // bad array length
            &b"\r\n"[..],              // empty frame line
            &b"+no-cr\n"[..],          // LF-only line
        ] {
            let Scan::Frame(len) = scan_frame(bad) else {
                panic!("scanner wanted more for {bad:?}");
            };
            assert!(len <= bad.len());
            assert!(
                read_value(&mut BufReader::new(bad)).is_err(),
                "parser accepted {bad:?}"
            );
        }
        // Hostile nesting: deliverable (the parser depth-rejects it).
        let deep = "*1\r\n".repeat(MAX_DEPTH + 2).into_bytes();
        assert!(matches!(scan_frame(&deep), Scan::Frame(_)));
    }

    #[test]
    fn eof_is_closed() {
        let empty: &[u8] = b"";
        match read_value(&mut BufReader::new(empty)) {
            Err(StoreError::Closed) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }
}
