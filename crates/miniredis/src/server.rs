//! The miniredis server: event-driven TCP on the in-tree epoll reactor,
//! per-key expiry, bounded memory with approximate-LRU eviction.
//!
//! Each connection is a [`reactor::ConnHandler`] state machine: the RESP
//! scanner ([`crate::resp::scan_frame`]) finds complete frames in the
//! input buffer, the existing blocking parser decodes them (keeping every
//! error byte-identical), and fault-injected reply shapes (stalls,
//! dribbles, partial writes) become ordered write-pipeline steps instead
//! of sleeps. The old thread-per-connection mode survives behind
//! [`ServerConfig::legacy_threads`] for A/B comparison — it is the build
//! the C10K test demonstrates cannot scale.

use crate::resp::{read_value, write_value, Scan, Value};
use bytes::Bytes;
use kvapi::value::now_millis;
use kvapi::{Result, StoreError};
use netsim::{FaultAction, FaultInjector, FaultModel};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind; use port 0 for an ephemeral port.
    pub bind: SocketAddr,
    /// Soft memory bound in payload bytes; 0 = unbounded.
    pub max_memory: u64,
    /// Active-expiry sweep interval.
    pub sweep_interval: Duration,
    /// Snapshot file for warm restarts (paper §III: "when the cache is
    /// restarted, it can quickly be brought to a warm state"). Loaded at
    /// startup, written by the `SAVE` command and on [`Server::stop`].
    pub persistence: Option<PathBuf>,
    /// Injected fault model (refusals, resets, stalls, dribbles, ...).
    pub fault: FaultModel,
    /// Seed for the fault injector's RNG (fixed = reproducible chaos runs).
    pub fault_seed: u64,
    /// Serve with one OS thread per connection instead of the epoll
    /// reactor. Kept only to demonstrate the scaling ceiling the reactor
    /// removes; everything else behaves identically.
    pub legacy_threads: bool,
    /// Kernel accept backlog for the listener (reactor mode). Sized for
    /// connect bursts; std's bind() default of 128 drops overflow SYNs.
    pub accept_backlog: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            max_memory: 0,
            sweep_interval: Duration::from_millis(100),
            persistence: None,
            fault: FaultModel::none(),
            fault_seed: 0x4ed1,
            legacy_threads: false,
            accept_backlog: reactor::DEFAULT_ACCEPT_BACKLOG,
        }
    }
}

struct Entry {
    data: Bytes,
    /// Absolute expiry, ms since epoch; `None` = no TTL.
    expires_at: Option<u64>,
    /// Logical clock for approximate LRU.
    last_used: u64,
}

#[derive(Default)]
struct Db {
    map: HashMap<String, Entry>,
    bytes: u64,
}

impl Db {
    fn charge(key: &str, data: &Bytes) -> u64 {
        key.len() as u64 + data.len() as u64
    }

    fn insert(&mut self, key: String, e: Entry) {
        if let Some(old) = self.map.get(&key) {
            self.bytes -= Self::charge(&key, &old.data);
        }
        self.bytes += Self::charge(&key, &e.data);
        self.map.insert(key, e);
    }

    fn remove(&mut self, key: &str) -> bool {
        if let Some(old) = self.map.remove(key) {
            self.bytes -= Self::charge(key, &old.data);
            true
        } else {
            false
        }
    }

    /// Drop the entry if its TTL has elapsed; returns true if it is live.
    fn check_live(&mut self, key: &str, now: u64) -> bool {
        let dead = match self.map.get(key) {
            Some(e) => e.expires_at.map(|t| t <= now).unwrap_or(false),
            None => return false,
        };
        if dead {
            self.remove(key);
            false
        } else {
            true
        }
    }

    /// Sampling eviction: pick up to 8 candidates, evict the least recently
    /// used, repeat until under budget (Redis's `allkeys-lru` approach).
    fn evict_until_under(&mut self, budget: u64) -> u64 {
        let mut evicted = 0;
        while budget > 0 && self.bytes > budget && !self.map.is_empty() {
            let Some(victim) = self
                .map
                .iter()
                .take(8)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

/// A running miniredis server. Dropping it shuts the listener down.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    sweep_thread: Option<JoinHandle<()>>,
    /// The event loop serving connections (None in legacy threaded mode).
    reactor: Option<reactor::ReactorThread>,
    /// Established connections in legacy mode, so `stop` can sever them.
    conns: Arc<Mutex<Vec<TcpStream>>>,
    db: Arc<Mutex<Db>>,
    persistence: Option<PathBuf>,
    /// Total commands served (observability for tests).
    pub commands_served: Arc<AtomicU64>,
    fault: Arc<FaultInjector>,
    registry: Arc<obs::Registry>,
}

impl Server {
    /// Start with default config on an ephemeral loopback port.
    pub fn start() -> Result<Server> {
        Server::start_with(ServerConfig::default())
    }

    /// Start with explicit config.
    pub fn start_with(cfg: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(cfg.bind)?;
        let addr = listener.local_addr()?;
        let db = Arc::new(Mutex::new(Db::default()));
        if let Some(path) = &cfg.persistence {
            // Load from disk before taking the lock: file I/O under the db
            // mutex would stall the first connections on a slow disk.
            let entries = crate::persist::load(path)?;
            let mut g = db.lock();
            for e in entries {
                g.insert(
                    e.key,
                    Entry {
                        data: Bytes::from(e.value),
                        expires_at: e.expires_at,
                        last_used: 0,
                    },
                );
            }
        }
        let clock = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));
        let commands_served = Arc::new(AtomicU64::new(0));

        let sweep_thread = {
            let db = db.clone();
            let shutdown = shutdown.clone();
            let interval = cfg.sweep_interval;
            Some(std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    let now = now_millis();
                    let mut g = db.lock();
                    let dead: Vec<String> = g
                        .map
                        .iter()
                        .filter(|(_, e)| e.expires_at.map(|t| t <= now).unwrap_or(false))
                        .map(|(k, _)| k.clone())
                        .collect();
                    for k in dead {
                        g.remove(&k);
                    }
                }
            }))
        };

        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let persistence = cfg.persistence.clone();
        let fault = Arc::new(cfg.fault.injector(cfg.fault_seed));
        let registry = Arc::new(obs::Registry::new());
        // Stable node identity on every federated series.
        registry.set_base_label("node", &addr.to_string());
        let shared = ConnShared {
            db: db.clone(),
            clock,
            max_memory: cfg.max_memory,
            served: commands_served.clone(),
            persist: persistence.clone(),
            fault: fault.clone(),
            registry: registry.clone(),
        };
        let (accept_thread, reactor) = if cfg.legacy_threads {
            let shutdown = shutdown.clone();
            let conns = conns.clone();
            let shared = shared.clone();
            let thread = std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if shared.fault.refuse_connection() {
                        drop(stream);
                        continue;
                    }
                    if let Ok(clone) = stream.try_clone() {
                        let mut g = conns.lock();
                        // Keep the registry from growing without bound.
                        g.retain(|s| s.peer_addr().is_ok());
                        g.push(clone);
                    }
                    let shared = shared.clone();
                    std::thread::spawn(move || {
                        let _ = handle_connection(stream, shared);
                    });
                }
            });
            (Some(thread), None)
        } else {
            let mut r = reactor::Reactor::new()?;
            let shutdown = shutdown.clone();
            r.listen_with_backlog(
                listener,
                move |_peer: SocketAddr| {
                    if shutdown.load(Ordering::Relaxed) || shared.fault.refuse_connection() {
                        return None;
                    }
                    Some(Box::new(RedisConn {
                        shared: shared.clone(),
                        dead: false,
                    }) as Box<dyn reactor::ConnHandler>)
                },
                cfg.accept_backlog,
            )?;
            (None, Some(r.spawn()))
        };

        Ok(Server {
            addr,
            shutdown,
            accept_thread,
            sweep_thread,
            reactor,
            conns,
            db,
            persistence,
            commands_served,
            fault,
            registry,
        })
    }

    /// The server-side metrics registry (also scrapeable over the wire via
    /// the `METRICS` command).
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.registry
    }

    /// This server's fault injector; swap its model at runtime to start or
    /// clear an outage mid-test.
    pub fn fault_injector(&self) -> &Arc<FaultInjector> {
        &self.fault
    }

    /// Sever every established connection while keeping the listener alive
    /// — the shape of a server-side idle close, used to exercise client
    /// pool staleness.
    pub fn drop_connections(&self) {
        if let Some(rt) = &self.reactor {
            rt.handle().close_all_conns();
        }
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Write a snapshot now (the `SAVE` path, callable in-process).
    pub fn save_snapshot(&self) -> Result<u64> {
        match &self.persistence {
            None => Ok(0),
            Some(path) => save_db(&self.db, path),
        }
    }

    /// Request shutdown, sever established connections, join the service
    /// threads, and (when configured) persist a final snapshot.
    pub fn stop(&mut self) {
        let _ = self.save_snapshot();
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(mut rt) = self.reactor.take() {
            rt.shutdown();
        }
        if self.accept_thread.is_some() {
            // Unblock the legacy accept() with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.sweep_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn save_db(db: &Mutex<Db>, path: &PathBuf) -> Result<u64> {
    // Clone entries out under the lock, write outside it.
    let entries: Vec<crate::persist::SnapshotEntry> = {
        let g = db.lock();
        g.map
            .iter()
            .map(|(k, e)| crate::persist::SnapshotEntry {
                key: k.clone(),
                value: e.data.to_vec(),
                expires_at: e.expires_at,
            })
            .collect()
    };
    crate::persist::save(path, entries.into_iter())
}

/// Everything one connection needs (reactor handler or legacy thread),
/// bundled so the handlers keep civilized signatures.
#[derive(Clone)]
struct ConnShared {
    db: Arc<Mutex<Db>>,
    clock: Arc<AtomicU64>,
    max_memory: u64,
    served: Arc<AtomicU64>,
    persist: Option<PathBuf>,
    fault: Arc<FaultInjector>,
    registry: Arc<obs::Registry>,
}

/// Strip a trailing `trace-ctx=<encoded>` bulk from a command array and
/// decode it. Old clients never send one; a last argument that merely
/// *resembles* the marker but fails to decode is left untouched.
fn extract_trace_ctx(frame: &mut Value) -> Option<obs::TraceContext> {
    let Value::Array(Some(parts)) = frame else {
        return None;
    };
    let ctx = match parts.last() {
        Some(Value::Bulk(Some(b))) => std::str::from_utf8(b)
            .ok()
            .and_then(|s| s.strip_prefix("trace-ctx="))
            .and_then(obs::TraceContext::decode),
        _ => None,
    };
    if ctx.is_some() {
        parts.pop();
    }
    ctx
}

/// Serve one decoded command: fault decision, dispatch, trace recording.
/// Returns the action to apply on the write side and the (possibly
/// trace-wrapped) reply. Shared verbatim by the reactor handler and the
/// legacy threaded loop so the two modes cannot drift.
fn execute_frame(mut frame: Value, shared: &ConnShared) -> (FaultAction, Value) {
    shared.served.fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    let trace_ctx = extract_trace_ctx(&mut frame);
    let op = match &frame {
        Value::Array(Some(parts)) => parts
            .first()
            .and_then(arg_str)
            .map(|s| s.to_ascii_uppercase())
            .unwrap_or_else(|| "?".into()),
        _ => "?".into(),
    };
    // Reply-side fault, decided after the command was read: the server
    // *received* (and below, applies) the command even when its answer
    // is lost — which is exactly what makes blind retries of
    // non-idempotent commands dangerous.
    let action = shared.fault.reply_action();
    let queue = t0.elapsed();
    let t_exec = Instant::now();
    let mut reply = dispatch(
        frame,
        &shared.db,
        &shared.clock,
        shared.max_memory,
        shared.persist.as_ref(),
        &shared.registry,
    );
    let execute = t_exec.elapsed();
    if let Some(cctx) = trace_ctx {
        // Serialize cost comes from a probe render of the unwrapped
        // reply: the span rides *inside* the reply, so it must exist
        // before the real serialization.
        let t_ser = Instant::now();
        let mut probe = Vec::new();
        let _ = write_value(&mut probe, &reply);
        let serialize = t_ser.elapsed();
        let span = obs::ServerSpan::new("miniredis", queue, execute, serialize);
        let mut rec = obs::CompletedTrace::server_side(&cctx, &span, op);
        rec.error = match (&action, &reply) {
            (FaultAction::Reset, _) => Some("connection reset before reply".into()),
            (FaultAction::ErrorReply, _) => Some("injected fault".into()),
            (_, Value::Error(e)) => Some(e.clone()),
            _ => None,
        };
        // Recorded even when the reply is about to be lost (Reset,
        // partial writes): the command's *effect* was applied, and the
        // trace proving that is what makes lost-reply retries auditable.
        obs::FlightRecorder::global().record(rec);
        // Error replies are never wrapped — error-reply handling must
        // stay byte-identical for every client generation.
        if !matches!(reply, Value::Error(_)) && !matches!(action, FaultAction::ErrorReply) {
            reply = Value::Array(Some(vec![
                reply,
                Value::Bulk(Some(Bytes::from(
                    format!("trace-span={}", span.encode()).into_bytes(),
                ))),
            ]));
        }
    }
    (action, reply)
}

/// Render a value to its wire bytes (serialization to a Vec can't fail).
fn render(v: &Value) -> Vec<u8> {
    let mut wire = Vec::new();
    let _ = write_value(&mut wire, v);
    wire
}

/// Reactor state machine for one RESP connection: scan complete frames
/// out of the input buffer, execute each, and map the fault actions that
/// used to block a thread (stall, dribble) onto timed write-pipeline
/// steps. Wire bytes and their pacing are identical to the legacy loop.
struct RedisConn {
    shared: ConnShared,
    /// The session is over (reset, dribble, partial write, protocol
    /// error) but the socket stays open: the blocking build parked such
    /// connections without ever sending a FIN (the accept loop holds a
    /// clone), so a lost reply black-holes until the client's deadline.
    /// Later buffered frames must not execute and never get replies.
    dead: bool,
}

impl RedisConn {
    fn process(&mut self, frame_bytes: &[u8], out: &mut reactor::Outbox) {
        let mut cursor: &[u8] = frame_bytes;
        let frame = match read_value(&mut cursor) {
            Ok(f) => f,
            Err(StoreError::Closed) => {
                // Unreachable for a scanner-complete frame; park quietly
                // like the blocking loop does at EOF.
                self.dead = true;
                return;
            }
            Err(e) => {
                out.send(render(&Value::Error(format!("ERR protocol: {e}"))));
                self.dead = true;
                return;
            }
        };
        let (action, reply) = execute_frame(frame, &self.shared);
        match action {
            FaultAction::Reset => {
                // Reply lost: black-hole, no FIN.
                self.dead = true;
            }
            FaultAction::ErrorReply => {
                out.send(render(&Value::Error("ERR injected fault".into())));
            }
            FaultAction::Stall(d) => {
                out.delay(d);
                out.send(render(&reply));
            }
            FaultAction::Dribble(delay) => {
                let wire = render(&reply);
                for &b in wire.iter().take(netsim::fault::DRIBBLE_MAX_BYTES) {
                    out.send(vec![b]);
                    out.delay(delay);
                }
                // The rest of the reply never arrives, and neither does a
                // FIN: the client is left holding a stalled read.
                self.dead = true;
            }
            FaultAction::PartialWrite => {
                let wire = render(&reply);
                out.send(wire.get(..wire.len() / 2).unwrap_or_default().to_vec());
                self.dead = true;
            }
            FaultAction::Deliver => out.send(render(&reply)),
        }
    }
}

impl reactor::ConnHandler for RedisConn {
    fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut reactor::Outbox) {
        while !self.dead {
            match crate::resp::scan_frame(inbuf) {
                Scan::NeedMore => break,
                Scan::Frame(len) => {
                    if len > inbuf.len() {
                        break;
                    }
                    let frame: Vec<u8> = inbuf.drain(..len).collect();
                    self.process(&frame, out);
                }
            }
        }
        if self.dead {
            // Discard anything the parked client keeps sending so the
            // buffer stays bounded.
            inbuf.clear();
        }
    }

    fn on_eof(&mut self, inbuf: &mut Vec<u8>, out: &mut reactor::Outbox) {
        if !self.dead && !inbuf.is_empty() {
            // Peer hung up mid-frame: run the parser over the remnant so
            // truncation errors stay byte-identical to the blocking build.
            let mut cursor: &[u8] = inbuf.as_slice();
            if let Err(e) = read_value(&mut cursor) {
                if !matches!(e, StoreError::Closed) {
                    out.send(render(&Value::Error(format!("ERR protocol: {e}"))));
                }
            }
            inbuf.clear();
        }
        out.close();
    }
}

fn handle_connection(stream: TcpStream, shared: ConnShared) -> Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let frame = match read_value(&mut reader) {
            Ok(f) => f,
            Err(StoreError::Closed) => return Ok(()),
            Err(e) => {
                let _ = write_value(&mut writer, &Value::Error(format!("ERR protocol: {e}")));
                let _ = writer.flush();
                return Err(e);
            }
        };
        let (action, reply) = execute_frame(frame, &shared);
        match action {
            FaultAction::Reset => return Ok(()),
            FaultAction::ErrorReply => {
                write_value(&mut writer, &Value::Error("ERR injected fault".into()))?;
                writer.flush()?;
            }
            FaultAction::Stall(d) => {
                std::thread::sleep(d);
                write_value(&mut writer, &reply)?;
                writer.flush()?;
            }
            FaultAction::Dribble(delay) => {
                let mut wire = Vec::new();
                write_value(&mut wire, &reply)?;
                for &b in wire.iter().take(netsim::fault::DRIBBLE_MAX_BYTES) {
                    writer.write_all(&[b])?;
                    writer.flush()?;
                    std::thread::sleep(delay);
                }
                return Ok(());
            }
            FaultAction::PartialWrite => {
                let mut wire = Vec::new();
                write_value(&mut wire, &reply)?;
                writer.write_all(wire.get(..wire.len() / 2).unwrap_or_default())?;
                writer.flush()?;
                return Ok(());
            }
            FaultAction::Deliver => {
                write_value(&mut writer, &reply)?;
                writer.flush()?;
            }
        }
    }
}

fn arg_str(v: &Value) -> Option<String> {
    match v {
        Value::Bulk(Some(b)) => String::from_utf8(b.to_vec()).ok(),
        Value::Simple(s) => Some(s.clone()),
        _ => None,
    }
}

fn arg_bytes(v: &Value) -> Option<Bytes> {
    match v {
        Value::Bulk(Some(b)) => Some(b.clone()),
        Value::Simple(s) => Some(Bytes::copy_from_slice(s.as_bytes())),
        _ => None,
    }
}

fn err(msg: impl std::fmt::Display) -> Value {
    Value::Error(format!("ERR {msg}"))
}

fn wrong_args(cmd: &str) -> Value {
    Value::Error(format!("ERR wrong number of arguments for '{cmd}'"))
}

fn dispatch(
    frame: Value,
    db: &Mutex<Db>,
    clock: &AtomicU64,
    max_memory: u64,
    persist: Option<&PathBuf>,
    registry: &obs::Registry,
) -> Value {
    let Value::Array(Some(parts)) = frame else {
        return err("expected command array");
    };
    if parts.is_empty() {
        return err("empty command");
    }
    let Some(cmd) = parts.first().and_then(arg_str) else {
        return err("command name must be a bulk string");
    };
    let cmd = cmd.to_ascii_uppercase();
    registry
        .counter("miniredis_commands_total", &[("cmd", &cmd)])
        .inc();
    let args = parts.get(1..).unwrap_or_default();
    let now = now_millis();
    let tick = clock.fetch_add(1, Ordering::Relaxed);
    let started = std::time::Instant::now();

    let reply = match cmd.as_str() {
        "PING" => {
            if let Some(msg) = args.first().and_then(arg_bytes) {
                Value::Bulk(Some(msg))
            } else {
                Value::Simple("PONG".into())
            }
        }
        "ECHO" => match args.first().and_then(arg_bytes) {
            Some(b) => Value::Bulk(Some(b)),
            None => wrong_args("echo"),
        },
        "SET" => {
            let (Some(key), Some(val)) = (
                args.first().and_then(arg_str),
                args.get(1).and_then(arg_bytes),
            ) else {
                return wrong_args("set");
            };
            // Options: EX seconds | PX millis | NX
            let mut expires_at = None;
            let mut nx = false;
            let mut i = 2;
            while i < args.len() {
                match args
                    .get(i)
                    .and_then(arg_str)
                    .map(|s| s.to_ascii_uppercase())
                    .as_deref()
                {
                    Some("EX") => {
                        let Some(secs) = args
                            .get(i + 1)
                            .and_then(arg_str)
                            .and_then(|s| s.parse::<u64>().ok())
                        else {
                            return err("invalid EX argument");
                        };
                        // Saturate: `SET k v EX 18446744073709551615` must
                        // mean "never expires", not an overflow trap.
                        expires_at = Some(now.saturating_add(secs.saturating_mul(1000)));
                        i += 2;
                    }
                    Some("PX") => {
                        let Some(ms) = args
                            .get(i + 1)
                            .and_then(arg_str)
                            .and_then(|s| s.parse::<u64>().ok())
                        else {
                            return err("invalid PX argument");
                        };
                        expires_at = Some(now.saturating_add(ms));
                        i += 2;
                    }
                    Some("NX") => {
                        nx = true;
                        i += 1;
                    }
                    other => return err(format!("unknown SET option {other:?}")),
                }
            }
            let mut g = db.lock();
            if nx && g.check_live(&key, now) {
                return Value::nil();
            }
            g.insert(
                key,
                Entry {
                    data: val,
                    expires_at,
                    last_used: tick,
                },
            );
            if max_memory > 0 {
                g.evict_until_under(max_memory);
            }
            Value::ok()
        }
        "GET" => {
            let Some(key) = args.first().and_then(arg_str) else {
                return wrong_args("get");
            };
            let mut g = db.lock();
            if !g.check_live(&key, now) {
                return Value::nil();
            }
            match g.map.get_mut(&key) {
                Some(e) => {
                    e.last_used = tick;
                    Value::Bulk(Some(e.data.clone()))
                }
                None => Value::nil(),
            }
        }
        "DEL" => {
            let mut n = 0i64;
            let mut g = db.lock();
            for a in args {
                if let Some(key) = arg_str(a) {
                    if g.check_live(&key, now) && g.remove(&key) {
                        n += 1;
                    }
                }
            }
            Value::Int(n)
        }
        "EXISTS" => {
            let mut n = 0i64;
            let mut g = db.lock();
            for a in args {
                if let Some(key) = arg_str(a) {
                    if g.check_live(&key, now) {
                        n += 1;
                    }
                }
            }
            Value::Int(n)
        }
        "PEXPIRE" | "EXPIRE" => {
            let (Some(key), Some(amount)) = (
                args.first().and_then(arg_str),
                args.get(1)
                    .and_then(arg_str)
                    .and_then(|s| s.parse::<u64>().ok()),
            ) else {
                return wrong_args("expire");
            };
            let ms = if cmd == "EXPIRE" {
                amount.saturating_mul(1000)
            } else {
                amount
            };
            let mut g = db.lock();
            if !g.check_live(&key, now) {
                return Value::Int(0);
            }
            let Some(e) = g.map.get_mut(&key) else {
                return Value::Int(0);
            };
            e.expires_at = Some(now.saturating_add(ms));
            Value::Int(1)
        }
        "PERSIST" => {
            let Some(key) = args.first().and_then(arg_str) else {
                return wrong_args("persist");
            };
            let mut g = db.lock();
            if !g.check_live(&key, now) {
                return Value::Int(0);
            }
            let Some(e) = g.map.get_mut(&key) else {
                return Value::Int(0);
            };
            let had = e.expires_at.take().is_some();
            Value::Int(i64::from(had))
        }
        "PTTL" | "TTL" => {
            let Some(key) = args.first().and_then(arg_str) else {
                return wrong_args("ttl");
            };
            let mut g = db.lock();
            if !g.check_live(&key, now) {
                return Value::Int(-2);
            }
            match g.map.get(&key).and_then(|e| e.expires_at) {
                None => Value::Int(-1),
                Some(t) => {
                    let remain = t.saturating_sub(now);
                    Value::Int(if cmd == "TTL" {
                        (remain / 1000) as i64
                    } else {
                        remain as i64
                    })
                }
            }
        }
        "INCR" | "INCRBY" => {
            let Some(key) = args.first().and_then(arg_str) else {
                return wrong_args("incr");
            };
            let by: i64 = if cmd == "INCRBY" {
                match args.get(1).and_then(arg_str).and_then(|s| s.parse().ok()) {
                    Some(v) => v,
                    None => return err("value is not an integer"),
                }
            } else {
                1
            };
            let mut g = db.lock();
            let cur: i64 = if g.check_live(&key, now) {
                match g
                    .map
                    .get(&key)
                    .and_then(|e| std::str::from_utf8(&e.data).ok())
                    .and_then(|s| s.parse::<i64>().ok())
                {
                    Some(v) => v,
                    None => return err("value is not an integer or out of range"),
                }
            } else {
                0
            };
            let next = cur.wrapping_add(by);
            let expires_at = g.map.get(&key).and_then(|e| e.expires_at);
            g.insert(
                key,
                Entry {
                    data: Bytes::from(next.to_string().into_bytes()),
                    expires_at,
                    last_used: tick,
                },
            );
            Value::Int(next)
        }
        "MGET" => {
            let mut g = db.lock();
            let items = args
                .iter()
                .map(|a| match arg_str(a) {
                    Some(key) if g.check_live(&key, now) => match g.map.get(&key) {
                        Some(e) => Value::Bulk(Some(e.data.clone())),
                        None => Value::nil(),
                    },
                    _ => Value::nil(),
                })
                .collect();
            Value::Array(Some(items))
        }
        "MSET" => {
            if args.is_empty() || args.len() % 2 != 0 {
                return wrong_args("mset");
            }
            let mut g = db.lock();
            for pair in args.chunks_exact(2) {
                let (Some(key), Some(val)) = (
                    pair.first().and_then(arg_str),
                    pair.get(1).and_then(arg_bytes),
                ) else {
                    return err("bad MSET pair");
                };
                g.insert(
                    key,
                    Entry {
                        data: val,
                        expires_at: None,
                        last_used: tick,
                    },
                );
            }
            if max_memory > 0 {
                g.evict_until_under(max_memory);
            }
            Value::ok()
        }
        "KEYS" => {
            // Pattern support: "*" (everything) and prefix* only — that is
            // all the clients in this workspace use.
            let pattern = args.first().and_then(arg_str).unwrap_or_else(|| "*".into());
            let mut g = db.lock();
            let all: Vec<String> = g.map.keys().cloned().collect();
            let mut live = Vec::new();
            for k in all {
                if g.check_live(&k, now) {
                    let matches = if pattern == "*" {
                        true
                    } else if let Some(prefix) = pattern.strip_suffix('*') {
                        k.starts_with(prefix)
                    } else {
                        k == pattern
                    };
                    if matches {
                        live.push(k);
                    }
                }
            }
            Value::Array(Some(
                live.into_iter()
                    .map(|k| Value::bulk(Bytes::from(k.into_bytes())))
                    .collect(),
            ))
        }
        "SCAN" => {
            // Cursor-based iteration: the cursor is a position in the
            // sorted key space (we return keys > cursor_key). Unlike real
            // Redis's reverse-binary cursors this may miss keys inserted
            // mid-scan, but it always terminates and never repeats —
            // documented trade-off for a cache-role server.
            let Some(cursor) = args.first().and_then(arg_str) else {
                return wrong_args("scan");
            };
            let mut pattern: Option<String> = None;
            let mut count = 10usize;
            let mut i = 1;
            while i < args.len() {
                match args
                    .get(i)
                    .and_then(arg_str)
                    .map(|s| s.to_ascii_uppercase())
                    .as_deref()
                {
                    Some("MATCH") => {
                        pattern = args.get(i + 1).and_then(arg_str);
                        i += 2;
                    }
                    Some("COUNT") => {
                        // `COUNT 0` would otherwise cut the batch before its
                        // first key and panic picking a cursor from it.
                        count = args
                            .get(i + 1)
                            .and_then(arg_str)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or(10)
                            .max(1);
                        i += 2;
                    }
                    other => return err(format!("unknown SCAN option {other:?}")),
                }
            }
            let matches = |k: &str| match &pattern {
                None => true,
                Some(p) if p == "*" => true,
                Some(p) => match p.strip_suffix('*') {
                    Some(prefix) => k.starts_with(prefix),
                    None => k == p,
                },
            };
            let mut g = db.lock();
            let mut keys: Vec<String> = g.map.keys().cloned().collect();
            keys.sort();
            let mut batch: Vec<String> = Vec::new();
            let mut next_cursor = String::from("0");
            for k in keys {
                if (cursor != "0" && k.as_str() <= cursor.as_str()) || !g.check_live(&k, now) {
                    continue;
                }
                if !matches(&k) {
                    continue;
                }
                if batch.len() >= count {
                    if let Some(last) = batch.last() {
                        next_cursor = last.clone();
                    }
                    break;
                }
                batch.push(k);
            }
            Value::Array(Some(vec![
                Value::bulk(Bytes::from(next_cursor.into_bytes())),
                Value::Array(Some(
                    batch
                        .into_iter()
                        .map(|k| Value::bulk(Bytes::from(k.into_bytes())))
                        .collect(),
                )),
            ]))
        }
        "DBSIZE" => {
            let mut g = db.lock();
            let all: Vec<String> = g.map.keys().cloned().collect();
            let mut n = 0i64;
            for k in all {
                if g.check_live(&k, now) {
                    n += 1;
                }
            }
            Value::Int(n)
        }
        "FLUSHALL" | "FLUSHDB" => {
            let mut g = db.lock();
            g.map.clear();
            g.bytes = 0;
            Value::ok()
        }
        "SAVE" | "BGSAVE" => match persist {
            None => err("persistence not configured"),
            Some(path) => match save_db(db, path) {
                Ok(n) => Value::Simple(format!("OK saved {n}")),
                Err(e) => err(format!("save failed: {e}")),
            },
        },
        // Wire-scrapeable metrics: the registry's Prometheus text as one
        // bulk string, so sidecar-less deployments can still be scraped
        // through the data plane.
        "METRICS" => {
            // Refresh process gauges so every scrape sees current resource
            // telemetry alongside the op metrics.
            obs::procinfo::publish(registry);
            Value::Bulk(Some(Bytes::from(registry.render_prometheus().into_bytes())))
        }
        "INFO" => {
            let g = db.lock();
            let body = format!(
                "# miniredis\r\nkeys:{}\r\nbytes:{}\r\n",
                g.map.len(),
                g.bytes
            );
            Value::Bulk(Some(Bytes::from(body.into_bytes())))
        }
        other => Value::Error(format!("ERR unknown command '{other}'")),
    };
    // Per-command service time, so federated dashboards get a server-side
    // p50/p99 per node (the command set is closed, so `cmd` is bounded).
    registry
        .histogram("miniredis_command_duration_ns", &[("cmd", &cmd)])
        .record_duration(started.elapsed());
    reply
}
