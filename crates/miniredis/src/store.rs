//! [`RedisKv`] — the miniredis client behind the common key-value interface.
//!
//! This is how the paper's UDSM exposes Redis: as one more implementation of
//! `KeyValue<K,V>`, interchangeable with the file system, SQL database, and
//! cloud stores.

use crate::client::RedisClient;
use bytes::Bytes;
use kvapi::{KeyValue, Result, StoreStats};
use std::net::SocketAddr;

/// Key-value store backed by a miniredis server.
pub struct RedisKv {
    client: RedisClient,
    name: String,
    /// Prefix applied to every key, so several logical stores can share one
    /// server instance without colliding.
    prefix: String,
}

impl RedisKv {
    /// Connect to a miniredis server.
    pub fn connect(addr: SocketAddr) -> RedisKv {
        RedisKv::connect_with_policy(addr, resilience::ResiliencePolicy::default())
    }

    /// Connect with an explicit resilience policy (deadline, retry,
    /// breaker, pool tuning) instead of the defaults.
    pub fn connect_with_policy(addr: SocketAddr, policy: resilience::ResiliencePolicy) -> RedisKv {
        RedisKv {
            client: RedisClient::connect_with_policy(addr, policy),
            name: "redis".into(),
            prefix: String::new(),
        }
    }

    /// Namespace all keys with `prefix`.
    pub fn with_prefix(mut self, prefix: impl Into<String>) -> RedisKv {
        self.prefix = prefix.into();
        self
    }

    /// Override the display name.
    pub fn with_name(mut self, name: impl Into<String>) -> RedisKv {
        self.name = name.into();
        self
    }

    /// Borrow the underlying client (for commands beyond the key-value
    /// interface — the paper's "native features of the underlying data
    /// store" escape hatch).
    pub fn client(&self) -> &RedisClient {
        &self.client
    }

    fn full(&self, key: &str) -> String {
        format!("{}{key}", self.prefix)
    }
}

impl KeyValue for RedisKv {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        self.client.set(&self.full(key), value)
    }

    fn get(&self, key: &str) -> Result<Option<Bytes>> {
        self.client.get(&self.full(key))
    }

    fn delete(&self, key: &str) -> Result<bool> {
        self.client.del(&self.full(key))
    }

    fn contains(&self, key: &str) -> Result<bool> {
        self.client.exists(&self.full(key))
    }

    fn keys(&self) -> Result<Vec<String>> {
        let pattern = format!("{}*", self.prefix);
        Ok(self
            .client
            .keys(&pattern)?
            .into_iter()
            .filter_map(|k| k.strip_prefix(&self.prefix).map(str::to_string))
            .collect())
    }

    fn clear(&self) -> Result<()> {
        if self.prefix.is_empty() {
            self.client.flushall()
        } else {
            for k in self.keys()? {
                self.client.del(&self.full(&k))?;
            }
            Ok(())
        }
    }

    fn stats(&self) -> Result<StoreStats> {
        Ok(StoreStats {
            keys: self.keys()?.len() as u64,
            bytes: 0,
        })
    }

    fn get_many(&self, keys: &[&str]) -> Result<Vec<Option<Bytes>>> {
        let full: Vec<String> = keys.iter().map(|k| self.full(k)).collect();
        let refs: Vec<&str> = full.iter().map(String::as_str).collect();
        self.client.mget(&refs)
    }

    fn put_many(&self, entries: &[(&str, &[u8])]) -> Result<()> {
        let full: Vec<String> = entries.iter().map(|(k, _)| self.full(k)).collect();
        let pairs: Vec<(&str, &[u8])> = full
            .iter()
            .zip(entries)
            .map(|(k, &(_, v))| (k.as_str(), v))
            .collect();
        self.client.mset(&pairs)
    }

    fn delete_many(&self, keys: &[&str]) -> Result<Vec<bool>> {
        let full: Vec<String> = keys.iter().map(|k| self.full(k)).collect();
        let refs: Vec<&str> = full.iter().map(String::as_str).collect();
        self.client.del_many(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use std::sync::Arc;

    #[test]
    fn contract() {
        let server = Server::start().unwrap();
        kvapi::contract::run_all(&RedisKv::connect(server.addr()));
    }

    #[test]
    fn contract_concurrent() {
        let server = Server::start().unwrap();
        kvapi::contract::run_all_concurrent(Arc::new(RedisKv::connect(server.addr())));
    }

    #[test]
    fn batch_ops_respect_prefixes() {
        let server = Server::start().unwrap();
        let a = RedisKv::connect(server.addr()).with_prefix("a:");
        let b = RedisKv::connect(server.addr()).with_prefix("b:");
        a.put_many(&[("x", b"ax".as_slice()), ("y", b"ay")])
            .unwrap();
        b.put_many(&[("x", b"bx".as_slice())]).unwrap();
        assert_eq!(
            a.get_many(&["x", "y", "z"]).unwrap(),
            vec![
                Some(Bytes::from_static(b"ax")),
                Some(Bytes::from_static(b"ay")),
                None
            ]
        );
        assert_eq!(
            b.get_many(&["x", "y"]).unwrap()[0],
            Some(Bytes::from_static(b"bx"))
        );
        assert_eq!(
            a.delete_many(&["x", "y", "z"]).unwrap(),
            vec![true, true, false]
        );
        assert!(b.contains("x").unwrap(), "b's namespace must be untouched");
    }

    #[test]
    fn prefixes_isolate_logical_stores() {
        let server = Server::start().unwrap();
        let a = RedisKv::connect(server.addr()).with_prefix("a:");
        let b = RedisKv::connect(server.addr()).with_prefix("b:");
        a.put("k", b"from-a").unwrap();
        b.put("k", b"from-b").unwrap();
        assert_eq!(a.get("k").unwrap().unwrap(), &b"from-a"[..]);
        assert_eq!(b.get("k").unwrap().unwrap(), &b"from-b"[..]);
        a.clear().unwrap();
        assert_eq!(a.get("k").unwrap(), None);
        assert_eq!(
            b.get("k").unwrap().unwrap(),
            &b"from-b"[..],
            "clear must respect prefix"
        );
        assert_eq!(b.keys().unwrap(), vec!["k"]);
    }
}
