//! Property-based tests for miniredis: RESP frames round-trip, and the
//! server is a faithful map for arbitrary binary keys/values.

use bytes::Bytes;
use miniredis::resp::{read_value, write_value, Value};
use miniredis::{RedisClient, Server};
use proptest::prelude::*;
use std::io::BufReader;

/// Arbitrary RESP values, recursively (depth-limited arrays).
fn resp_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        "[^\r\n]{0,30}".prop_map(Value::Simple),
        "[^\r\n]{0,30}".prop_map(Value::Error),
        any::<i64>().prop_map(Value::Int),
        proptest::collection::vec(any::<u8>(), 0..100)
            .prop_map(|v| Value::Bulk(Some(Bytes::from(v)))),
        Just(Value::Bulk(None)),
        Just(Value::Array(None)),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        proptest::collection::vec(inner, 0..6).prop_map(|items| Value::Array(Some(items)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn resp_round_trip(v in resp_value()) {
        let mut buf = Vec::new();
        write_value(&mut buf, &v).unwrap();
        let got = read_value(&mut BufReader::new(&buf[..])).unwrap();
        prop_assert_eq!(got, v);
    }

    /// Arbitrary garbage either parses to *something* or errors — never
    /// panics, never loops.
    #[test]
    fn resp_reader_is_total(garbage in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = read_value(&mut BufReader::new(&garbage[..]));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The server behaves as a map for random operation sequences, checked
    /// against a HashMap oracle. (Few cases: each spins up a TCP server.)
    #[test]
    fn server_matches_hashmap_oracle(
        ops in proptest::collection::vec(
            (0u8..4, "[a-z]{1,6}", proptest::collection::vec(any::<u8>(), 0..50)),
            1..40
        )
    ) {
        let server = Server::start().unwrap();
        let c = RedisClient::connect(server.addr());
        let mut oracle: std::collections::HashMap<String, Vec<u8>> = Default::default();
        for (op, key, val) in &ops {
            match op % 4 {
                0 | 1 => {
                    c.set(key, val).unwrap();
                    oracle.insert(key.clone(), val.clone());
                }
                2 => {
                    let got = c.del(key).unwrap();
                    let expect = oracle.remove(key).is_some();
                    prop_assert_eq!(got, expect, "DEL {}", key);
                }
                _ => {
                    let got = c.get(key).unwrap().map(|b| b.to_vec());
                    prop_assert_eq!(&got, &oracle.get(key).cloned(), "GET {}", key);
                }
            }
        }
        prop_assert_eq!(c.dbsize().unwrap() as usize, oracle.len());
    }
}
