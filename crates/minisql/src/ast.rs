//! Abstract syntax for the supported SQL subset.

use crate::value::{SqlType, SqlValue};
use serde::{Deserialize, Serialize};

/// A column definition in CREATE TABLE.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (case-preserved; lookups are case-insensitive).
    pub name: String,
    /// Declared type.
    pub ty: SqlType,
    /// PRIMARY KEY?
    pub primary_key: bool,
    /// NOT NULL?
    pub not_null: bool,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `LIKE`
    Like,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(SqlValue),
    /// Column reference.
    Col(String),
    /// Binary operation.
    Bin(Box<Expr>, BinOp, Box<Expr>),
    /// `NOT e`
    Not(Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `e IS NULL` / `e IS NOT NULL`
    IsNull(Box<Expr>, bool),
}

/// ORDER BY direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(col)` — counts non-NULL values.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)`.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

/// One aggregate term in a projection.
#[derive(Clone, Debug, PartialEq)]
pub struct Aggregate {
    /// The function.
    pub func: AggFunc,
    /// Argument column (`None` only for `COUNT(*)`).
    pub col: Option<String>,
}

/// Select column list.
#[derive(Clone, Debug, PartialEq)]
pub enum Projection {
    /// `*`
    All,
    /// Named columns.
    Columns(Vec<String>),
    /// Aggregate terms, optionally preceded by the GROUP BY column.
    Aggregates(Vec<Aggregate>),
}

/// One SQL statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
        /// IF NOT EXISTS?
        if_not_exists: bool,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
        /// IF EXISTS?
        if_exists: bool,
    },
    /// CREATE INDEX — a secondary index on one column.
    CreateIndex {
        /// Index name (unique per database).
        name: String,
        /// Table name.
        table: String,
        /// Indexed column.
        column: String,
        /// IF NOT EXISTS?
        if_not_exists: bool,
    },
    /// DROP INDEX.
    DropIndex {
        /// Index name.
        name: String,
        /// IF EXISTS?
        if_exists: bool,
    },
    /// INSERT.
    Insert {
        /// Table name.
        table: String,
        /// Explicit column list (empty = table order).
        columns: Vec<String>,
        /// One or more rows of value expressions.
        rows: Vec<Vec<Expr>>,
        /// INSERT OR REPLACE?
        or_replace: bool,
    },
    /// SELECT.
    Select {
        /// Projection.
        projection: Projection,
        /// Table name.
        table: String,
        /// WHERE clause.
        filter: Option<Expr>,
        /// GROUP BY column (aggregates only).
        group_by: Option<String>,
        /// ORDER BY column + direction.
        order_by: Option<(String, Order)>,
        /// LIMIT.
        limit: Option<usize>,
        /// OFFSET.
        offset: Option<usize>,
    },
    /// UPDATE.
    Update {
        /// Table name.
        table: String,
        /// SET assignments.
        sets: Vec<(String, Expr)>,
        /// WHERE clause.
        filter: Option<Expr>,
    },
    /// DELETE.
    Delete {
        /// Table name.
        table: String,
        /// WHERE clause.
        filter: Option<Expr>,
    },
    /// BEGIN.
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
}
