//! A JDBC-like client for the minisql server.
//!
//! `?` placeholders are bound client-side: values are rendered as SQL
//! literals with proper escaping before the statement is sent — the same
//! effective contract as JDBC's `PreparedStatement` for this engine.
//!
//! The client is transport-split (see [`kvapi::rpc`]): it builds framed
//! wire requests and decodes framed replies, while an [`RpcSender`] moves
//! the bytes — one pooled blocking socket per in-flight statement
//! ([`Transport::Blocking`], the historical behavior), or many statements
//! interleaved on one shared reactor-driven connection
//! ([`Transport::Multiplexed`]), matched back by the envelope's `id` field.

use crate::engine::ResultSet;
use crate::server::{WireRequest, WireResponse};
use crate::value::SqlValue;
use kvapi::{Framer, ReplyMeta, Result, RpcClient, RpcSender, SendOptions, StoreError, Transport};
use resilience::{Resilience, ResiliencePolicy};
use serde::Deserialize;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Reply delimiting for the minisql wire: a 4-byte LE length prefix, then
/// that many bytes of JSON.
struct MiniSqlFramer;

impl Framer for MiniSqlFramer {
    fn scan_reply(&self, buf: &[u8], _meta: &ReplyMeta) -> Option<usize> {
        let head: [u8; 4] = buf.get(..4)?.try_into().ok()?;
        let len = u32::from_le_bytes(head) as usize;
        let total = len.checked_add(4)?;
        (buf.len() >= total).then_some(total)
    }

    fn reply_id(&self, frame: &[u8]) -> Option<u64> {
        let val: serde::Value = serde_json::from_slice(frame.get(4..)?).ok()?;
        match val.get("id")? {
            serde::Value::Int(n) => u64::try_from(*n).ok(),
            serde::Value::UInt(n) => Some(*n),
            _ => None,
        }
    }
}

/// Wrap a JSON payload in the wire's length-prefix frame.
fn encode_frame(payload: &[u8]) -> Result<Vec<u8>> {
    let len = u32::try_from(payload.len())
        .map_err(|_| StoreError::protocol("request frame too large"))?;
    let mut frame = Vec::with_capacity(payload.len() + 4);
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

fn build_sender(
    addr: SocketAddr,
    policy: &ResiliencePolicy,
    transport: Transport,
) -> Box<dyn RpcSender> {
    let framer: Arc<dyn Framer> = Arc::new(MiniSqlFramer);
    match transport {
        Transport::Blocking => Box::new(rpc::BlockingSender::new(addr, policy.clone(), framer)),
        Transport::Multiplexed => Box::new(rpc::MuxSender::new(addr, policy.clone(), framer)),
    }
}

/// Thread-safe client for a [`crate::SqlServer`].
///
/// Every statement runs under the client's resilience policy: one total
/// request deadline, breaker gating, and retries gated by replay safety
/// (read-only statements, or frames that never reached the server).
/// Concurrency comes from the transport: pooled sockets run statements on
/// parallel connections (like a JDBC connection pool); the multiplexed
/// transport interleaves them on one shared connection.
pub struct MiniSqlClient {
    addr: SocketAddr,
    resilience: Resilience,
    transport: Transport,
    sender: Box<dyn RpcSender>,
}

impl MiniSqlClient {
    /// Connect lazily to `addr` with the default [`ResiliencePolicy`]
    /// shared by all native clients, over the blocking transport.
    pub fn connect(addr: SocketAddr) -> MiniSqlClient {
        MiniSqlClient::connect_with(addr, ResiliencePolicy::default(), Transport::Blocking)
    }

    /// Connect with an explicit resilience policy and transport.
    pub fn connect_with(
        addr: SocketAddr,
        policy: ResiliencePolicy,
        transport: Transport,
    ) -> MiniSqlClient {
        let sender = build_sender(addr, &policy, transport);
        MiniSqlClient {
            addr,
            resilience: Resilience::new(policy),
            transport,
            sender,
        }
    }

    /// Connect with an explicit resilience policy.
    #[deprecated(note = "transport-split API: use `connect_with` and pick a `Transport`")]
    pub fn connect_with_policy(addr: SocketAddr, policy: ResiliencePolicy) -> MiniSqlClient {
        MiniSqlClient::connect_with(addr, policy, Transport::Blocking)
    }

    /// Override the total per-statement deadline (connect timeout is
    /// clamped to it). The rest of the policy keeps its current values.
    pub fn with_timeout(self, timeout: Duration) -> MiniSqlClient {
        let mut policy = self.resilience.policy().clone();
        policy.connect_timeout = policy.connect_timeout.min(timeout);
        policy.request_timeout = timeout;
        MiniSqlClient::connect_with(self.addr, policy, self.transport)
    }

    /// This endpoint's live resilience state (breaker, retry counters).
    pub fn resilience(&self) -> &Resilience {
        &self.resilience
    }

    /// Decode one response payload: lift the server span (spliced inside
    /// the `ok` object by tracing-aware servers) into the active trace
    /// scope, then deserialize the envelope. Old servers send no span;
    /// old-shaped payloads decode identically.
    fn decode_response(payload: &[u8]) -> Result<ResultSet> {
        let mut val: serde::Value = serde_json::from_slice(payload)
            .map_err(|e| StoreError::protocol(format!("bad response: {e}")))?;
        if let Some(span) = val
            .get("ok")
            .and_then(|ok| ok.get("span"))
            .and_then(|s| s.as_str())
            .and_then(obs::ServerSpan::decode)
        {
            obs::ctx::report_server_span(span);
        }
        // Drop the echoed correlation id (multiplexed transport) before
        // decoding: the response envelope itself is a one-variant object.
        if let serde::Value::Object(pairs) = &mut val {
            pairs.retain(|(k, _)| k != "id");
        }
        let resp = WireResponse::from_value(&val)
            .map_err(|e| StoreError::protocol(format!("bad response: {e}")))?;
        match resp {
            WireResponse::Ok(rs) => Ok(rs),
            WireResponse::Err(msg) => Err(StoreError::Rejected(msg)),
        }
    }

    /// Execute a statement verbatim.
    ///
    /// Statements are retried with backoff on a fresh connection after a
    /// transient failure, but only while a replay cannot double-apply:
    /// either the statement is read-only (`SELECT`), or the frame never
    /// reached the server (the transport failed before the send-off
    /// completed). The [`resilience::ReplayGuard`] carries that contract.
    pub fn execute(&self, sql: &str) -> Result<ResultSet> {
        // Join the caller's active trace (child span) or become a new root.
        // Minted once per *statement*, outside the retry loop, so every
        // attempt shares one span identity.
        let parent = obs::ctx::current();
        let ctx = match parent {
            Some(p) => p.child(),
            None => obs::TraceContext::new_root(),
        };
        let (trace, scope) = if parent.is_none() {
            let op = sql
                .split_whitespace()
                .next()
                .unwrap_or("?")
                .to_ascii_uppercase();
            (
                Some(obs::Trace::begin(op).with_ctx(ctx)),
                Some(obs::ctx::activate(ctx)),
            )
        } else {
            (None, None)
        };
        let result = self.execute_with_ctx(sql, ctx);
        if let Some(mut t) = trace {
            if let Some(s) = scope {
                t.absorb_scope(s.finish());
            }
            if let Err(e) = &result {
                t.set_error(e.to_string());
            }
            t.complete("minisql-client");
        }
        result
    }

    fn execute_with_ctx(&self, sql: &str, ctx: obs::TraceContext) -> Result<ResultSet> {
        let read_only = sql
            .trim_start()
            .get(..6)
            .is_some_and(|p| p.eq_ignore_ascii_case("SELECT"));
        self.resilience.run_guarded(|deadline, attempt, guard| {
            // A fresh correlation id per attempt: a retry must not collide
            // with the abandoned entry its predecessor may have left on
            // the shared connection.
            let id = self.sender.next_correlation_id();
            let payload = serde_json::to_vec(&WireRequest {
                sql: sql.to_string(),
                ctx: Some(ctx.encode()),
                id,
            })
            .map_err(|e| StoreError::protocol(format!("request does not serialize: {e}")))?;
            let frame = encode_frame(&payload)?;
            let poison = || {
                // The frame was sent off: the server may already have
                // executed it, so only read-only statements stay safe to
                // replay from here on.
                if !read_only {
                    guard.poison();
                }
            };
            let opts = SendOptions {
                fresh_conn: attempt > 1,
                deadline: Some(deadline.instant()),
                correlation_id: id,
                on_sent: Some(&poison),
                ..SendOptions::default()
            };
            let reply = self.sender.send(&frame, &opts)?;
            Self::decode_response(reply.get(4..).unwrap_or_default())
        })
    }

    /// Execute with `?` parameter binding.
    pub fn execute_bound(&self, sql: &str, params: &[SqlValue]) -> Result<ResultSet> {
        self.execute(&bind(sql, params)?)
    }

    /// Scrape the server's metrics registry through the data plane: the
    /// `METRICS` pseudo-statement answers one row holding the Prometheus
    /// text exposition.
    pub fn fetch_metrics(&self) -> Result<String> {
        let rs = self.execute("METRICS")?;
        match rs.scalar() {
            Some(SqlValue::Text(text)) => Ok(text.clone()),
            other => Err(StoreError::protocol(format!(
                "expected one metrics cell, got {other:?}"
            ))),
        }
    }

    /// Execute statements back-to-back on one connection: every frame is
    /// sent before any reply is collected (the server answers in order),
    /// so a batch pays one round trip instead of one per statement.
    ///
    /// The outer `Result` is transport-level; each inner `Result` is that
    /// statement's own outcome, positionally.
    ///
    /// Unlike [`MiniSqlClient::execute`], a batch is never replayed once
    /// any frame has been sent: the server may have executed a prefix, so
    /// a transport error after the first send-off surfaces as an error
    /// rather than risking statements running twice.
    pub fn execute_batch(&self, stmts: &[String]) -> Result<Vec<Result<ResultSet>>> {
        if stmts.is_empty() {
            return Ok(Vec::new());
        }
        let frames: Vec<Vec<u8>> = stmts
            .iter()
            .map(|sql| {
                let payload = serde_json::to_vec(&WireRequest {
                    sql: sql.clone(),
                    ctx: None,
                    id: None,
                })
                .map_err(|e| StoreError::protocol(format!("request does not serialize: {e}")))?;
                encode_frame(&payload)
            })
            .collect::<Result<_>>()?;
        // A batch is only safe to retry while no frame has reached the
        // server: once one is out the server may have executed a prefix of
        // the batch, and replaying it would run statements twice (wrong
        // `delete_many` booleans, duplicate `BEGIN`s). The transport fires
        // `on_sent` at exactly that boundary — the one case a stale pooled
        // connection can still be retried on a fresh socket is a failure
        // before the first frame's send-off.
        self.resilience.run_guarded(|deadline, attempt, guard| {
            let poison = || guard.poison();
            let opts = SendOptions {
                fresh_conn: attempt > 1,
                deadline: Some(deadline.instant()),
                on_sent: Some(&poison),
                ..SendOptions::default()
            };
            let replies = self.sender.send_pipelined(&frames, &opts)?;
            replies
                .iter()
                .map(|reply| {
                    let resp: WireResponse =
                        serde_json::from_slice(reply.get(4..).unwrap_or_default())
                            .map_err(|e| StoreError::protocol(format!("bad response: {e}")))?;
                    Ok(match resp {
                        WireResponse::Ok(rs) => Ok(rs),
                        WireResponse::Err(msg) => Err(StoreError::Rejected(msg)),
                    })
                })
                .collect()
        })
    }
}

impl RpcClient for MiniSqlClient {
    fn sender(&self) -> &dyn RpcSender {
        self.sender.as_ref()
    }
}

/// Substitute `?` placeholders (outside string/blob literals) with rendered
/// literals.
pub fn bind(sql: &str, params: &[SqlValue]) -> Result<String> {
    let mut out = String::with_capacity(sql.len() + params.len() * 8);
    let mut params_iter = params.iter();
    let mut chars = sql.chars().peekable();
    let mut used = 0usize;
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                // Copy the string literal wholesale (handling '' escapes).
                out.push(c);
                for inner in chars.by_ref() {
                    out.push(inner);
                    if inner == '\'' {
                        break;
                    }
                }
                // A doubled quote means we're still inside; the simple copy
                // above treats each quote pair independently, which is
                // equivalent for placeholder scanning purposes.
            }
            '?' => match params_iter.next() {
                Some(v) => {
                    used += 1;
                    out.push_str(&v.to_literal());
                }
                None => {
                    return Err(StoreError::Rejected(format!(
                        "statement has more than {} placeholders",
                        params.len()
                    )))
                }
            },
            other => out.push(other),
        }
    }
    if used != params.len() {
        return Err(StoreError::Rejected(format!(
            "{} parameters provided, {used} placeholders found",
            params.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SqlServer;

    fn mux_client(addr: SocketAddr) -> MiniSqlClient {
        MiniSqlClient::connect_with(
            addr,
            ResiliencePolicy::test_profile(),
            Transport::Multiplexed,
        )
    }

    #[test]
    fn bind_renders_literals() {
        let sql = bind(
            "INSERT INTO t VALUES (?, ?, ?, ?)",
            &[
                SqlValue::Int(5),
                SqlValue::Text("it's".into()),
                SqlValue::Blob(vec![0xab]),
                SqlValue::Null,
            ],
        )
        .unwrap();
        assert_eq!(sql, "INSERT INTO t VALUES (5, 'it''s', x'ab', NULL)");
    }

    #[test]
    fn bind_ignores_question_marks_in_strings() {
        let sql = bind(
            "SELECT * FROM t WHERE a = 'what?' AND b = ?",
            &[SqlValue::Int(1)],
        )
        .unwrap();
        assert_eq!(sql, "SELECT * FROM t WHERE a = 'what?' AND b = 1");
    }

    #[test]
    fn bind_arity_checked() {
        assert!(bind("SELECT ?", &[]).is_err());
        assert!(bind("SELECT 1", &[SqlValue::Int(1)]).is_err());
    }

    #[test]
    fn end_to_end_over_tcp() {
        let server = SqlServer::start_in_memory().unwrap();
        let c = MiniSqlClient::connect(server.addr());
        assert_eq!(RpcClient::transport(&c), Transport::Blocking);
        c.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v BLOB)")
            .unwrap();
        c.execute_bound(
            "INSERT INTO t VALUES (?, ?)",
            &[
                SqlValue::Text("key1".into()),
                SqlValue::Blob(b"value1".to_vec()),
            ],
        )
        .unwrap();
        let rs = c
            .execute_bound(
                "SELECT v FROM t WHERE k = ?",
                &[SqlValue::Text("key1".into())],
            )
            .unwrap();
        assert_eq!(rs.scalar(), Some(&SqlValue::Blob(b"value1".to_vec())));
        // Errors travel back as rejections.
        let err = c.execute("SELECT * FROM missing").unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn execute_batch_pipelines_and_reports_per_statement() {
        let server = SqlServer::start_in_memory().unwrap();
        let c = MiniSqlClient::connect(server.addr());
        c.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INT)")
            .unwrap();
        let stmts: Vec<String> = (0..10)
            .map(|i| format!("INSERT INTO t VALUES ('k{i}', {i})"))
            .chain([
                "SELECT COUNT(*) FROM t".to_string(),
                "SELECT * FROM nope".to_string(),
            ])
            .collect();
        let replies = c.execute_batch(&stmts).unwrap();
        assert_eq!(replies.len(), 12);
        assert!(replies[..10].iter().all(Result::is_ok));
        assert_eq!(
            replies[10].as_ref().unwrap().scalar(),
            Some(&SqlValue::Int(10))
        );
        // A rejected statement answers its own position without poisoning
        // the rest of the pipeline.
        assert!(replies[11].is_err());
        assert!(c.execute_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn concurrent_clients_share_one_database() {
        let server = SqlServer::start_in_memory().unwrap();
        let addr = server.addr();
        let setup = MiniSqlClient::connect(addr);
        setup
            .execute("CREATE TABLE c (id INT PRIMARY KEY, who TEXT)")
            .unwrap();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let c = MiniSqlClient::connect(addr);
                    for i in 0..50 {
                        c.execute_bound(
                            "INSERT INTO c VALUES (?, ?)",
                            &[
                                SqlValue::Int((t * 50 + i) as i64),
                                SqlValue::Text(format!("t{t}")),
                            ],
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let rs = setup.execute("SELECT COUNT(*) FROM c").unwrap();
        assert_eq!(rs.scalar(), Some(&SqlValue::Int(200)));
    }

    #[test]
    fn metrics_statement_scrapes_prometheus_text() {
        let server = SqlServer::start_in_memory().unwrap();
        let c = MiniSqlClient::connect(server.addr());
        c.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        c.execute("SELECT * FROM t").unwrap();
        let text = c.fetch_metrics().unwrap();
        // Every series carries the server's stable node identity.
        let node = format!("node=\"{}\"", server.addr());
        assert!(
            text.contains(&format!(
                "minisql_statements_total{{op=\"CREATE\",outcome=\"ok\",{node}}} 1"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "minisql_statements_total{{op=\"SELECT\",outcome=\"ok\",{node}}} 1"
            )),
            "{text}"
        );
        // Server-side execute latency histograms ride along, node-tagged.
        assert!(
            text.contains(&format!(
                "minisql_statement_duration_ns_count{{op=\"SELECT\",{node}}} 1"
            )),
            "{text}"
        );
        // The in-process registry agrees with the wire scrape.
        assert!(server
            .registry()
            .render_prometheus()
            .contains("minisql_statements_total"));
        // Process resource gauges ride along on every scrape.
        assert!(
            text.contains("# TYPE process_resident_memory_bytes gauge"),
            "{text}"
        );
        assert!(text.contains("process_open_fds "), "{text}");
    }

    #[test]
    fn traced_statements_join_the_server_span() {
        let server = SqlServer::start_in_memory().unwrap();
        let c = MiniSqlClient::connect(server.addr());
        let root = obs::TraceContext::new_root();
        let scope = obs::ctx::activate(root);
        c.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        c.execute("INSERT INTO t VALUES (1)").unwrap();
        let data = scope.finish();
        assert_eq!(data.server_spans.len(), 2, "{:?}", data.server_spans);
        assert!(data.server_spans.iter().all(|s| s.server == "minisql"));
    }

    #[test]
    fn traced_statement_error_is_retained_by_the_recorder() {
        let server = SqlServer::start_in_memory().unwrap();
        let c = MiniSqlClient::connect(server.addr());
        let root = obs::TraceContext::new_root();
        let scope = obs::ctx::activate(root);
        assert!(c.execute("SELECT * FROM missing").is_err());
        drop(scope);
        let recs = obs::FlightRecorder::global().by_trace_id(root.trace_id);
        let rec = recs
            .iter()
            .find(|t| t.origin == "minisql")
            .expect("server-side error trace retained");
        assert_eq!(rec.op, "SELECT");
        assert!(rec.error.is_some());
    }

    #[test]
    fn old_wire_shapes_still_parse() {
        // Mixed versions, old client → new server: a request without the
        // ctx field must execute normally (the server already proved this
        // for every execute_batch frame, which sends ctx: null — here we
        // check a frame with the field entirely absent).
        use crate::server::{read_frame, write_frame};
        let server = SqlServer::start_in_memory().unwrap();
        let stream = std::net::TcpStream::connect(server.addr()).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = std::io::BufWriter::new(stream);
        write_frame(
            &mut writer,
            br#"{"sql":"CREATE TABLE o (a INT PRIMARY KEY)"}"#,
        )
        .unwrap();
        let payload = read_frame(&mut reader).unwrap().unwrap();
        let text = String::from_utf8(payload).unwrap();
        assert!(text.contains("\"ok\""), "{text}");
        assert!(
            !text.contains("span"),
            "untraced request must not grow a span: {text}"
        );
        assert!(
            !text.contains("\"id\""),
            "id-less request must not grow an id echo: {text}"
        );
        // Mixed versions, new client → old server: a response without a
        // span decodes identically.
        let rs = MiniSqlClient::decode_response(br#"{"ok":{"columns":[],"rows":[],"affected":3}}"#)
            .unwrap();
        assert_eq!(rs.affected, 3);
    }

    #[test]
    fn server_stop_breaks_clients_cleanly() {
        let mut server = SqlServer::start_in_memory().unwrap();
        let c = MiniSqlClient::connect(server.addr())
            .with_timeout(std::time::Duration::from_millis(500));
        c.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        server.stop();
        assert!(c.execute("SELECT * FROM t").is_err());
    }

    #[test]
    fn multiplexed_statements_execute_end_to_end() {
        let server = SqlServer::start_in_memory().unwrap();
        let c = mux_client(server.addr());
        assert_eq!(RpcClient::transport(&c), Transport::Multiplexed);
        c.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INT)")
            .unwrap();
        c.execute("INSERT INTO t VALUES ('a', 1)").unwrap();
        let rs = c.execute("SELECT v FROM t WHERE k = 'a'").unwrap();
        assert_eq!(rs.scalar(), Some(&SqlValue::Int(1)));
        // Rejections still decode positionally (the id echo must be
        // stripped before the envelope parses).
        let err = c.execute("SELECT * FROM missing").unwrap_err();
        assert!(matches!(err, StoreError::Rejected(_)), "{err:?}");
    }

    #[test]
    fn multiplexed_statements_interleave_on_one_connection() {
        let server = SqlServer::start_in_memory().unwrap();
        let c = std::sync::Arc::new(mux_client(server.addr()));
        c.execute("CREATE TABLE c (id INT PRIMARY KEY)").unwrap();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..25 {
                        c.execute(&format!("INSERT INTO c VALUES ({})", t * 25 + i))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let rs = c.execute("SELECT COUNT(*) FROM c").unwrap();
        assert_eq!(rs.scalar(), Some(&SqlValue::Int(100)));
    }

    #[test]
    fn multiplexed_traced_statements_join_the_server_span() {
        let server = SqlServer::start_in_memory().unwrap();
        let c = mux_client(server.addr());
        let root = obs::TraceContext::new_root();
        let scope = obs::ctx::activate(root);
        c.execute("CREATE TABLE t (a INT PRIMARY KEY)").unwrap();
        c.execute("INSERT INTO t VALUES (1)").unwrap();
        let data = scope.finish();
        assert_eq!(data.server_spans.len(), 2, "{:?}", data.server_spans);
        assert!(data.server_spans.iter().all(|s| s.server == "minisql"));
    }

    #[test]
    fn multiplexed_batch_pipelines_on_the_shared_connection() {
        let server = SqlServer::start_in_memory().unwrap();
        let c = mux_client(server.addr());
        c.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INT)")
            .unwrap();
        let stmts: Vec<String> = (0..8)
            .map(|i| format!("INSERT INTO t VALUES ('k{i}', {i})"))
            .chain(["SELECT COUNT(*) FROM t".to_string()])
            .collect();
        let replies = c.execute_batch(&stmts).unwrap();
        assert_eq!(replies.len(), 9);
        assert_eq!(
            replies[8].as_ref().unwrap().scalar(),
            Some(&SqlValue::Int(8))
        );
    }
}
