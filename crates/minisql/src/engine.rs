//! The storage and execution engine.
//!
//! Tables store rows in a slab (`Vec<Option<Row>>`) with a `BTreeMap`
//! primary-key index. `WHERE pk = literal` takes the index (the point-lookup
//! path a MySQL client hits for key-value access); other filters scan.
//! Transactions are single-writer (one big lock — this models a database
//! used as a local key-value backend, not a concurrency research vehicle)
//! with an undo log for rollback and a write-ahead log for durability.

use crate::ast::*;
use crate::parser::parse;
use crate::value::{PkKey, SqlValue};
use crate::wal::{read_snapshot, write_snapshot, SyncMode, Wal, WalRecord};
use kvapi::{Result, StoreError};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};

type Row = Vec<SqlValue>;

/// The result of executing one statement.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResultSet {
    /// Column names (empty for non-queries).
    pub columns: Vec<String>,
    /// Result rows (empty for non-queries).
    pub rows: Vec<Row>,
    /// Rows affected by a mutation.
    pub affected: u64,
}

impl ResultSet {
    fn affected(n: u64) -> ResultSet {
        ResultSet {
            affected: n,
            ..Default::default()
        }
    }

    /// First value of the first row, if any (convenience for point reads).
    pub fn scalar(&self) -> Option<&SqlValue> {
        self.rows.first().and_then(|r| r.first())
    }
}

#[derive(Serialize, Deserialize)]
struct TableSnapshot {
    schema: Vec<ColumnDef>,
    rows: Vec<Row>,
    /// Secondary-indexed column positions (rebuilt on load).
    #[serde(default)]
    indexed_cols: Vec<usize>,
}

#[derive(Serialize, Deserialize)]
struct DbSnapshot {
    tables: Vec<(String, TableSnapshot)>,
    txn_counter: u64,
    /// index name → (table, column position).
    #[serde(default)]
    indexes: Vec<(String, (String, usize))>,
}

struct Table {
    schema: Vec<ColumnDef>,
    pk: Option<usize>,
    rows: Vec<Option<Row>>,
    index: BTreeMap<PkKey, usize>,
    /// Secondary indexes: column position → value → slots.
    secondary: HashMap<usize, BTreeMap<PkKey, Vec<usize>>>,
    free: Vec<usize>,
    live: usize,
}

impl Table {
    fn new(schema: Vec<ColumnDef>) -> Table {
        let pk = schema.iter().position(|c| c.primary_key);
        Table {
            schema,
            pk,
            rows: Vec::new(),
            index: BTreeMap::new(),
            secondary: HashMap::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn col_index(&self, name: &str) -> Option<usize> {
        self.schema
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    fn pk_key(&self, row: &Row) -> Option<PkKey> {
        self.pk.map(|i| PkKey(row[i].clone()))
    }

    fn secondary_add(&mut self, slot: usize, row: &Row) {
        for (&ci, map) in self.secondary.iter_mut() {
            map.entry(PkKey(row[ci].clone())).or_default().push(slot);
        }
    }

    fn secondary_remove(&mut self, slot: usize, row: &Row) {
        for (&ci, map) in self.secondary.iter_mut() {
            let key = PkKey(row[ci].clone());
            if let Some(slots) = map.get_mut(&key) {
                slots.retain(|&s| s != slot);
                if slots.is_empty() {
                    map.remove(&key);
                }
            }
        }
    }

    /// Build (or rebuild) a secondary index over every live row.
    fn build_secondary(&mut self, ci: usize) {
        let mut map: BTreeMap<PkKey, Vec<usize>> = BTreeMap::new();
        for (slot, row) in self.rows.iter().enumerate() {
            if let Some(row) = row {
                map.entry(PkKey(row[ci].clone())).or_default().push(slot);
            }
        }
        self.secondary.insert(ci, map);
    }

    /// Swap the row in `slot`, keeping every index consistent. The caller
    /// has already verified PK uniqueness for `new_row`.
    fn replace_row(&mut self, slot: usize, new_row: Row) -> Row {
        let old = self.rows[slot].take().expect("replace_row on live slot");
        if let Some(pk) = self.pk_key(&old) {
            self.index.remove(&pk);
        }
        self.secondary_remove(slot, &old);
        if let Some(pk) = self.pk_key(&new_row) {
            self.index.insert(pk, slot);
        }
        self.secondary_add(slot, &new_row);
        self.rows[slot] = Some(new_row);
        old
    }

    /// Insert a row into a fresh slot; the caller has already checked PK
    /// uniqueness. Returns the slot.
    fn insert_row(&mut self, row: Row) -> usize {
        let slot = match self.free.pop() {
            Some(s) => {
                self.rows[s] = Some(row);
                s
            }
            None => {
                self.rows.push(Some(row));
                self.rows.len() - 1
            }
        };
        let row_ref = self.rows[slot].clone().expect("just inserted");
        if let Some(pk) = self.pk_key(&row_ref) {
            self.index.insert(pk, slot);
        }
        self.secondary_add(slot, &row_ref);
        self.live += 1;
        slot
    }

    fn remove_slot(&mut self, slot: usize) -> Option<Row> {
        let row = self.rows[slot].take()?;
        if let Some(pk) = self.pk_key(&row) {
            self.index.remove(&pk);
        }
        self.secondary_remove(slot, &row);
        self.free.push(slot);
        self.live -= 1;
        Some(row)
    }

    /// Restore a previously removed row into its original slot.
    fn restore_slot(&mut self, slot: usize, row: Row) {
        debug_assert!(self.rows[slot].is_none());
        self.free.retain(|&s| s != slot);
        if let Some(pk) = self.pk_key(&row) {
            self.index.insert(pk, slot);
        }
        self.secondary_add(slot, &row);
        self.rows[slot] = Some(row);
        self.live += 1;
    }

    fn snapshot(&self) -> TableSnapshot {
        TableSnapshot {
            schema: self.schema.clone(),
            rows: self.rows.iter().flatten().cloned().collect(),
            indexed_cols: self.secondary.keys().copied().collect(),
        }
    }

    fn from_snapshot(s: TableSnapshot) -> Table {
        let mut t = Table::new(s.schema);
        for &ci in &s.indexed_cols {
            t.secondary.insert(ci, BTreeMap::new());
        }
        for row in s.rows {
            t.insert_row(row);
        }
        t
    }

    /// Slots matching a filter; uses the PK index (unique) or a secondary
    /// index (multi-valued) for `col = literal` point lookups.
    fn candidate_slots(&self, filter: Option<&Expr>) -> Vec<usize> {
        if let Some(expr) = filter {
            if let Some(pk_col) = self.pk {
                if let Some(lit) = point_lookup_literal(expr, &self.schema[pk_col].name) {
                    return self
                        .index
                        .get(&PkKey(lit))
                        .map(|&s| vec![s])
                        .unwrap_or_default();
                }
            }
            for (&ci, map) in &self.secondary {
                if let Some(lit) = point_lookup_literal(expr, &self.schema[ci].name) {
                    return map.get(&PkKey(lit)).cloned().unwrap_or_default();
                }
            }
        }
        (0..self.rows.len())
            .filter(|&s| self.rows[s].is_some())
            .collect()
    }
}

/// Match `pk = literal` / `literal = pk` for the index fast path.
fn point_lookup_literal(expr: &Expr, pk_name: &str) -> Option<SqlValue> {
    let Expr::Bin(lhs, BinOp::Eq, rhs) = expr else {
        return None;
    };
    match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Col(c), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(c))
            if c.eq_ignore_ascii_case(pk_name) =>
        {
            Some(v.clone())
        }
        _ => None,
    }
}

// The Un- prefix is the point: each variant names the inverse of a statement.
#[allow(clippy::enum_variant_names)]
enum UndoOp {
    UnInsert {
        table: String,
        slot: usize,
    },
    UnDelete {
        table: String,
        slot: usize,
        row: Row,
    },
    UnUpdate {
        table: String,
        slot: usize,
        old_row: Row,
    },
    UnCreate {
        table: String,
    },
    UnDrop {
        table: String,
        snapshot: TableSnapshot,
        index_names: Vec<(String, usize)>,
    },
    UnCreateIndex {
        name: String,
    },
    UnDropIndex {
        name: String,
        table: String,
        col: usize,
    },
}

struct Txn {
    undo: Vec<UndoOp>,
    statements: Vec<String>,
}

struct Inner {
    tables: HashMap<String, Table>,
    /// index name (lowercase) → (table lowercase, column position).
    indexes: HashMap<String, (String, usize)>,
    wal: Option<Wal>,
    snapshot_path: Option<PathBuf>,
    checkpoint_threshold: u64,
    txn: Option<Txn>,
    txn_counter: u64,
}

/// A minisql database instance.
pub struct Database {
    inner: Mutex<Inner>,
}

impl Database {
    /// Volatile in-memory database (no WAL).
    pub fn in_memory() -> Database {
        Database {
            inner: Mutex::new(Inner {
                tables: HashMap::new(),
                indexes: HashMap::new(),
                wal: None,
                snapshot_path: None,
                checkpoint_threshold: 8 * 1024 * 1024,
                txn: None,
                txn_counter: 0,
            }),
        }
    }

    /// Durable database rooted at `dir` (creates `wal.log` / `db.snapshot`).
    /// Runs crash recovery: loads the snapshot, then replays the WAL.
    pub fn open(dir: impl AsRef<Path>, sync: SyncMode) -> Result<Database> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let wal_path = dir.join("wal.log");
        let snapshot_path = dir.join("db.snapshot");

        let db = Database::in_memory();
        // Read the snapshot before taking the lock, for the same reason the
        // WAL is opened outside it below.
        let snapshot_blob = read_snapshot(&snapshot_path)?;
        {
            let mut inner = db.inner.lock();
            if let Some(blob) = snapshot_blob {
                let snap: DbSnapshot = serde_json::from_slice(&blob)
                    .map_err(|e| StoreError::corrupt(format!("bad snapshot: {e}")))?;
                inner.txn_counter = snap.txn_counter;
                inner.indexes = snap.indexes.into_iter().collect();
                for (name, ts) in snap.tables {
                    inner.tables.insert(name, Table::from_snapshot(ts));
                }
            }
            inner.snapshot_path = Some(snapshot_path);
        }
        // Replay committed transactions (WAL not yet attached, so replayed
        // statements are not re-logged).
        let records = Wal::replay(&wal_path)?;
        for rec in &records {
            for sql in &rec.statements {
                // Replay failures mean the log postdates a schema change we
                // lost — surface loudly rather than continuing from a
                // half-recovered state.
                db.execute(sql).map_err(|e| {
                    StoreError::corrupt(format!("WAL replay failed on {sql:?}: {e}"))
                })?;
            }
        }
        // Open the WAL before taking the lock: file I/O (and its fsyncs)
        // never runs under the database mutex.
        let wal = Wal::open(&wal_path, sync)?;
        {
            let mut inner = db.inner.lock();
            if let Some(last) = records.last() {
                inner.txn_counter = inner.txn_counter.max(last.txn);
            }
            inner.wal = Some(wal);
        }
        Ok(db)
    }

    /// Set the WAL size that triggers an automatic checkpoint.
    pub fn set_checkpoint_threshold(&self, bytes: u64) {
        self.inner.lock().checkpoint_threshold = bytes;
    }

    /// Parse and execute one statement.
    pub fn execute(&self, sql: &str) -> Result<ResultSet> {
        let stmt = parse(sql)?;
        let mut inner = self.inner.lock();
        inner.execute_stmt(stmt, sql)
    }

    /// Force a checkpoint: snapshot to disk, truncate the WAL.
    pub fn checkpoint(&self) -> Result<()> {
        self.inner.lock().checkpoint()
    }

    /// Table names (lower-cased), for tooling.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.lock().tables.keys().cloned().collect()
    }
}

impl Inner {
    fn execute_stmt(&mut self, stmt: Statement, sql: &str) -> Result<ResultSet> {
        match stmt {
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(StoreError::Rejected("already in a transaction".into()));
                }
                self.txn = Some(Txn {
                    undo: Vec::new(),
                    statements: Vec::new(),
                });
                Ok(ResultSet::default())
            }
            Statement::Commit => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| StoreError::Rejected("no transaction to commit".into()))?;
                self.log_commit(txn.statements)?;
                Ok(ResultSet::default())
            }
            Statement::Rollback => {
                let txn = self
                    .txn
                    .take()
                    .ok_or_else(|| StoreError::Rejected("no transaction to roll back".into()))?;
                self.apply_undo(txn.undo);
                Ok(ResultSet::default())
            }
            Statement::Select { .. } => self.run_select(stmt),
            mutating => {
                // Statement-level atomicity: on error, roll back just this
                // statement's effects.
                let explicit = self.txn.is_some();
                if !explicit {
                    self.txn = Some(Txn {
                        undo: Vec::new(),
                        statements: Vec::new(),
                    });
                }
                let undo_mark = self.txn.as_ref().expect("txn exists").undo.len();
                let result = self.run_mutation(mutating);
                match result {
                    Ok(rs) => {
                        self.txn
                            .as_mut()
                            .expect("txn exists")
                            .statements
                            .push(sql.to_string());
                        if !explicit {
                            let txn = self.txn.take().expect("txn exists");
                            self.log_commit(txn.statements)?;
                        }
                        Ok(rs)
                    }
                    Err(e) => {
                        let txn = self.txn.as_mut().expect("txn exists");
                        let tail: Vec<UndoOp> = txn.undo.drain(undo_mark..).collect();
                        self.apply_undo(tail);
                        if !explicit {
                            self.txn = None;
                        }
                        Err(e)
                    }
                }
            }
        }
    }

    fn log_commit(&mut self, statements: Vec<String>) -> Result<()> {
        if statements.is_empty() {
            return Ok(());
        }
        self.txn_counter += 1;
        let txn = self.txn_counter;
        if let Some(wal) = self.wal.as_mut() {
            wal.append(&WalRecord { txn, statements })?;
            if wal.bytes() > self.checkpoint_threshold && self.snapshot_path.is_some() {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    fn checkpoint(&mut self) -> Result<()> {
        let Some(path) = self.snapshot_path.clone() else {
            return Ok(());
        };
        let snap = DbSnapshot {
            tables: self
                .tables
                .iter()
                .map(|(n, t)| (n.clone(), t.snapshot()))
                .collect(),
            txn_counter: self.txn_counter,
            indexes: self
                .indexes
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        };
        let blob = serde_json::to_vec(&snap).expect("snapshot serializes");
        write_snapshot(&path, &blob)?;
        if let Some(wal) = self.wal.as_mut() {
            wal.truncate()?;
        }
        Ok(())
    }

    fn apply_undo(&mut self, ops: Vec<UndoOp>) {
        for op in ops.into_iter().rev() {
            match op {
                UndoOp::UnInsert { table, slot } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.remove_slot(slot);
                    }
                }
                UndoOp::UnDelete { table, slot, row } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.restore_slot(slot, row);
                    }
                }
                UndoOp::UnUpdate {
                    table,
                    slot,
                    old_row,
                } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.replace_row(slot, old_row);
                    }
                }
                UndoOp::UnCreate { table } => {
                    self.tables.remove(&table);
                }
                UndoOp::UnDrop {
                    table,
                    snapshot,
                    index_names,
                } => {
                    self.tables
                        .insert(table.clone(), Table::from_snapshot(snapshot));
                    for (name, col) in index_names {
                        self.indexes.insert(name, (table.clone(), col));
                    }
                }
                UndoOp::UnCreateIndex { name } => {
                    if let Some((table, col)) = self.indexes.remove(&name) {
                        if let Some(t) = self.tables.get_mut(&table) {
                            t.secondary.remove(&col);
                        }
                    }
                }
                UndoOp::UnDropIndex { name, table, col } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.build_secondary(col);
                    }
                    self.indexes.insert(name, (table, col));
                }
            }
        }
    }

    fn push_undo(&mut self, op: UndoOp) {
        self.txn
            .as_mut()
            .expect("mutations run inside a txn")
            .undo
            .push(op);
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| StoreError::Rejected(format!("no such table {name:?}")))
    }

    fn run_mutation(&mut self, stmt: Statement) -> Result<ResultSet> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                let key = name.to_ascii_lowercase();
                if self.tables.contains_key(&key) {
                    return if if_not_exists {
                        Ok(ResultSet::default())
                    } else {
                        Err(StoreError::Rejected(format!(
                            "table {name:?} already exists"
                        )))
                    };
                }
                // Duplicate column names are a schema error.
                for (i, c) in columns.iter().enumerate() {
                    if columns[..i]
                        .iter()
                        .any(|o| o.name.eq_ignore_ascii_case(&c.name))
                    {
                        return Err(StoreError::Rejected(format!(
                            "duplicate column {:?}",
                            c.name
                        )));
                    }
                }
                if columns.is_empty() {
                    return Err(StoreError::Rejected(
                        "table needs at least one column".into(),
                    ));
                }
                self.tables.insert(key.clone(), Table::new(columns));
                self.push_undo(UndoOp::UnCreate { table: key });
                Ok(ResultSet::default())
            }
            Statement::DropTable { name, if_exists } => {
                let key = name.to_ascii_lowercase();
                match self.tables.remove(&key) {
                    Some(t) => {
                        let index_names: Vec<(String, usize)> = self
                            .indexes
                            .iter()
                            .filter(|(_, (tbl, _))| *tbl == key)
                            .map(|(n, (_, c))| (n.clone(), *c))
                            .collect();
                        for (n, _) in &index_names {
                            self.indexes.remove(n);
                        }
                        self.push_undo(UndoOp::UnDrop {
                            table: key,
                            snapshot: t.snapshot(),
                            index_names,
                        });
                        Ok(ResultSet::default())
                    }
                    None if if_exists => Ok(ResultSet::default()),
                    None => Err(StoreError::Rejected(format!("no such table {name:?}"))),
                }
            }
            Statement::CreateIndex {
                name,
                table,
                column,
                if_not_exists,
            } => {
                let iname = name.to_ascii_lowercase();
                if self.indexes.contains_key(&iname) {
                    return if if_not_exists {
                        Ok(ResultSet::default())
                    } else {
                        Err(StoreError::Rejected(format!(
                            "index {name:?} already exists"
                        )))
                    };
                }
                let tkey = table.to_ascii_lowercase();
                let t = self.table_mut(&table)?;
                let ci = t
                    .col_index(&column)
                    .ok_or_else(|| StoreError::Rejected(format!("no such column {column:?}")))?;
                if t.pk == Some(ci) {
                    return Err(StoreError::Rejected(
                        "column already covered by the primary key".into(),
                    ));
                }
                if t.secondary.contains_key(&ci) {
                    return Err(StoreError::Rejected(format!(
                        "column {column:?} already has an index"
                    )));
                }
                t.build_secondary(ci);
                self.indexes.insert(iname.clone(), (tkey, ci));
                self.push_undo(UndoOp::UnCreateIndex { name: iname });
                Ok(ResultSet::default())
            }
            Statement::DropIndex { name, if_exists } => {
                let iname = name.to_ascii_lowercase();
                match self.indexes.remove(&iname) {
                    Some((table, col)) => {
                        if let Some(t) = self.tables.get_mut(&table) {
                            t.secondary.remove(&col);
                        }
                        self.push_undo(UndoOp::UnDropIndex {
                            name: iname,
                            table,
                            col,
                        });
                        Ok(ResultSet::default())
                    }
                    None if if_exists => Ok(ResultSet::default()),
                    None => Err(StoreError::Rejected(format!("no such index {name:?}"))),
                }
            }
            Statement::Insert {
                table,
                columns,
                rows,
                or_replace,
            } => self.run_insert(&table, &columns, &rows, or_replace),
            Statement::Update {
                table,
                sets,
                filter,
            } => self.run_update(&table, &sets, filter),
            Statement::Delete { table, filter } => self.run_delete(&table, filter),
            _ => unreachable!("non-mutating statement routed to run_mutation"),
        }
    }

    fn run_insert(
        &mut self,
        table: &str,
        columns: &[String],
        rows: &[Vec<Expr>],
        or_replace: bool,
    ) -> Result<ResultSet> {
        let key = table.to_ascii_lowercase();
        // Resolve column positions up front.
        let (positions, ncols, schema) = {
            let t = self.table_mut(table)?;
            let ncols = t.schema.len();
            let positions: Vec<usize> = if columns.is_empty() {
                (0..ncols).collect()
            } else {
                columns
                    .iter()
                    .map(|c| {
                        t.col_index(c)
                            .ok_or_else(|| StoreError::Rejected(format!("no such column {c:?}")))
                    })
                    .collect::<Result<_>>()?
            };
            (positions, ncols, t.schema.clone())
        };
        let mut affected = 0u64;
        for exprs in rows {
            if exprs.len() != positions.len() {
                return Err(StoreError::Rejected(format!(
                    "expected {} values, got {}",
                    positions.len(),
                    exprs.len()
                )));
            }
            let mut row: Row = vec![SqlValue::Null; ncols];
            for (pos, expr) in positions.iter().zip(exprs) {
                let v = eval(expr, None)?;
                row[*pos] = v.coerce(schema[*pos].ty)?;
            }
            for (i, col) in schema.iter().enumerate() {
                if (col.not_null || col.primary_key) && row[i].is_null() {
                    return Err(StoreError::Rejected(format!(
                        "column {:?} may not be NULL",
                        col.name
                    )));
                }
            }
            // PK conflict handling.
            let t = self.tables.get_mut(&key).expect("checked above");
            if let Some(pk) = t.pk_key(&row) {
                if let Some(&slot) = t.index.get(&pk) {
                    if !or_replace {
                        return Err(StoreError::Conflict(format!(
                            "duplicate primary key {:?}",
                            pk.0
                        )));
                    }
                    let old = t.replace_row(slot, row);
                    self.push_undo(UndoOp::UnUpdate {
                        table: key.clone(),
                        slot,
                        old_row: old,
                    });
                    affected += 1;
                    continue;
                }
            }
            let slot = t.insert_row(row);
            self.push_undo(UndoOp::UnInsert {
                table: key.clone(),
                slot,
            });
            affected += 1;
        }
        Ok(ResultSet::affected(affected))
    }

    fn run_update(
        &mut self,
        table: &str,
        sets: &[(String, Expr)],
        filter: Option<Expr>,
    ) -> Result<ResultSet> {
        let key = table.to_ascii_lowercase();
        let t = self.table_mut(table)?;
        let set_cols: Vec<usize> = sets
            .iter()
            .map(|(c, _)| {
                t.col_index(c)
                    .ok_or_else(|| StoreError::Rejected(format!("no such column {c:?}")))
            })
            .collect::<Result<_>>()?;
        let slots = t.candidate_slots(filter.as_ref());
        let schema = t.schema.clone();
        let mut affected = 0u64;
        let mut undos = Vec::new();
        for slot in slots {
            let t = self.tables.get_mut(&key).expect("exists");
            let row = t.rows[slot].clone().expect("candidate slot is live");
            if let Some(f) = &filter {
                if !eval(f, Some((&schema, &row)))?.is_truthy() {
                    continue;
                }
            }
            let mut new_row = row.clone();
            for ((_, expr), &ci) in sets.iter().zip(&set_cols) {
                let v = eval(expr, Some((&schema, &row)))?;
                new_row[ci] = v.coerce(schema[ci].ty)?;
                if (schema[ci].not_null || schema[ci].primary_key) && new_row[ci].is_null() {
                    return Err(StoreError::Rejected(format!(
                        "column {:?} may not be NULL",
                        schema[ci].name
                    )));
                }
            }
            // PK change: enforce uniqueness before swapping.
            let t = self.tables.get_mut(&key).expect("exists");
            let old_pk = t.pk_key(&row);
            let new_pk = t.pk_key(&new_row);
            if old_pk != new_pk {
                if let Some(npk) = &new_pk {
                    if t.index.contains_key(npk) {
                        // Abort the whole statement; caller unwinds undos.
                        self.txn.as_mut().expect("in txn").undo.extend(undos);
                        return Err(StoreError::Conflict(format!(
                            "duplicate primary key {:?}",
                            npk.0
                        )));
                    }
                }
            }
            let old = t.replace_row(slot, new_row);
            undos.push(UndoOp::UnUpdate {
                table: key.clone(),
                slot,
                old_row: old,
            });
            affected += 1;
        }
        self.txn.as_mut().expect("in txn").undo.extend(undos);
        Ok(ResultSet::affected(affected))
    }

    fn run_delete(&mut self, table: &str, filter: Option<Expr>) -> Result<ResultSet> {
        let key = table.to_ascii_lowercase();
        let t = self.table_mut(table)?;
        let slots = t.candidate_slots(filter.as_ref());
        let schema = t.schema.clone();
        let mut affected = 0u64;
        for slot in slots {
            let t = self.tables.get_mut(&key).expect("exists");
            let row = t.rows[slot].clone().expect("candidate slot is live");
            if let Some(f) = &filter {
                if !eval(f, Some((&schema, &row)))?.is_truthy() {
                    continue;
                }
            }
            let t = self.tables.get_mut(&key).expect("exists");
            let removed = t.remove_slot(slot).expect("live slot");
            self.push_undo(UndoOp::UnDelete {
                table: key.clone(),
                slot,
                row: removed,
            });
            affected += 1;
        }
        Ok(ResultSet::affected(affected))
    }

    fn run_select(&mut self, stmt: Statement) -> Result<ResultSet> {
        let Statement::Select {
            projection,
            table,
            filter,
            group_by,
            order_by,
            limit,
            offset,
        } = stmt
        else {
            unreachable!("run_select takes Select");
        };
        let t = self
            .tables
            .get(&table.to_ascii_lowercase())
            .ok_or_else(|| StoreError::Rejected(format!("no such table {table:?}")))?;
        let schema = &t.schema;
        let mut matched: Vec<&Row> = Vec::new();
        for slot in t.candidate_slots(filter.as_ref()) {
            let row = t.rows[slot].as_ref().expect("candidate slot is live");
            if let Some(f) = &filter {
                if !eval(f, Some((schema, row)))?.is_truthy() {
                    continue;
                }
            }
            matched.push(row);
        }
        if let Some((col, dir)) = &order_by {
            let ci = t
                .col_index(col)
                .ok_or_else(|| StoreError::Rejected(format!("no such column {col:?}")))?;
            matched.sort_by(|a, b| {
                let ord = a[ci].compare(&b[ci]).unwrap_or_else(|| {
                    // NULLs (and incomparables) first, stable.
                    match (a[ci].is_null(), b[ci].is_null()) {
                        (true, false) => std::cmp::Ordering::Less,
                        (false, true) => std::cmp::Ordering::Greater,
                        _ => std::cmp::Ordering::Equal,
                    }
                });
                if *dir == Order::Desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
        }
        let off = offset.unwrap_or(0);
        let lim = limit.unwrap_or(usize::MAX);
        let window = matched.into_iter().skip(off).take(lim);

        match projection {
            Projection::Aggregates(aggs) => {
                let rows: Vec<&Row> = window.collect();
                aggregate_rows(&aggs, group_by.as_deref(), t, rows)
            }
            Projection::All => Ok(ResultSet {
                columns: schema.iter().map(|c| c.name.clone()).collect(),
                rows: window.cloned().collect(),
                affected: 0,
            }),
            Projection::Columns(cols) => {
                let indices: Vec<usize> = cols
                    .iter()
                    .map(|c| {
                        t.col_index(c)
                            .ok_or_else(|| StoreError::Rejected(format!("no such column {c:?}")))
                    })
                    .collect::<Result<_>>()?;
                Ok(ResultSet {
                    columns: cols,
                    rows: window
                        .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
                        .collect(),
                    affected: 0,
                })
            }
        }
    }
}

/// Compute aggregate projections, optionally grouped by one column.
fn aggregate_rows(
    aggs: &[Aggregate],
    group_by: Option<&str>,
    t: &Table,
    rows: Vec<&Row>,
) -> Result<ResultSet> {
    // Resolve argument columns once.
    let arg_cols: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match &a.col {
            None => Ok(None),
            Some(c) => t
                .col_index(c)
                .map(Some)
                .ok_or_else(|| StoreError::Rejected(format!("no such column {c:?}"))),
        })
        .collect::<Result<_>>()?;

    let agg_name = |a: &Aggregate| -> String {
        match (&a.func, &a.col) {
            (AggFunc::CountStar, _) => "count".to_string(),
            (f, Some(c)) => format!("{}({})", format!("{f:?}").to_lowercase(), c),
            (f, None) => format!("{f:?}").to_lowercase(),
        }
    };

    let compute = |group: &[&Row]| -> Result<Vec<SqlValue>> {
        aggs.iter()
            .zip(&arg_cols)
            .map(|(a, ci)| {
                let values = || {
                    group
                        .iter()
                        .map(|r| &r[ci.expect("has col")])
                        .filter(|v| !v.is_null())
                };
                Ok(match a.func {
                    AggFunc::CountStar => SqlValue::Int(group.len() as i64),
                    AggFunc::Count => SqlValue::Int(values().count() as i64),
                    AggFunc::Sum | AggFunc::Avg => {
                        let mut int_sum = 0i64;
                        let mut float_sum = 0f64;
                        let mut all_int = true;
                        let mut n = 0u64;
                        for v in values() {
                            n += 1;
                            match v {
                                SqlValue::Int(i) => {
                                    int_sum = int_sum.wrapping_add(*i);
                                    float_sum += *i as f64;
                                }
                                SqlValue::Real(f) => {
                                    all_int = false;
                                    float_sum += f;
                                }
                                other => {
                                    return Err(StoreError::Rejected(format!(
                                        "cannot aggregate non-numeric {other:?}"
                                    )))
                                }
                            }
                        }
                        if n == 0 {
                            SqlValue::Null // SQL: aggregate of the empty set
                        } else if a.func == AggFunc::Avg {
                            SqlValue::Real(float_sum / n as f64)
                        } else if all_int {
                            SqlValue::Int(int_sum)
                        } else {
                            SqlValue::Real(float_sum)
                        }
                    }
                    AggFunc::Min | AggFunc::Max => {
                        let mut best: Option<&SqlValue> = None;
                        for v in values() {
                            best = Some(match best {
                                None => v,
                                Some(b) => match v.compare(b) {
                                    Some(std::cmp::Ordering::Less) if a.func == AggFunc::Min => v,
                                    Some(std::cmp::Ordering::Greater) if a.func == AggFunc::Max => {
                                        v
                                    }
                                    None => {
                                        return Err(StoreError::Rejected(
                                            "MIN/MAX over incomparable values".into(),
                                        ))
                                    }
                                    _ => b,
                                },
                            });
                        }
                        best.cloned().unwrap_or(SqlValue::Null)
                    }
                })
            })
            .collect()
    };

    match group_by {
        None => Ok(ResultSet {
            columns: aggs.iter().map(agg_name).collect(),
            rows: vec![compute(&rows)?],
            affected: 0,
        }),
        Some(col) => {
            let gi = t
                .col_index(col)
                .ok_or_else(|| StoreError::Rejected(format!("no such column {col:?}")))?;
            // BTreeMap on the total-order key wrapper ⇒ deterministic,
            // sorted group output.
            let mut groups: BTreeMap<PkKey, Vec<&Row>> = BTreeMap::new();
            for r in rows {
                groups.entry(PkKey(r[gi].clone())).or_default().push(r);
            }
            let mut columns = vec![col.to_string()];
            columns.extend(aggs.iter().map(agg_name));
            let mut out_rows = Vec::with_capacity(groups.len());
            for (key, group) in groups {
                let mut row = vec![key.0];
                row.extend(compute(&group)?);
                out_rows.push(row);
            }
            Ok(ResultSet {
                columns,
                rows: out_rows,
                affected: 0,
            })
        }
    }
}

/// Evaluate an expression, optionally against a row.
fn eval(expr: &Expr, env: Option<(&[ColumnDef], &Row)>) -> Result<SqlValue> {
    use SqlValue::*;
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Col(name) => {
            let (schema, row) =
                env.ok_or_else(|| StoreError::Rejected(format!("no column {name:?} here")))?;
            let i = schema
                .iter()
                .position(|c| c.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| StoreError::Rejected(format!("no such column {name:?}")))?;
            Ok(row[i].clone())
        }
        Expr::Neg(e) => match eval(e, env)? {
            Int(n) => Ok(Int(-n)),
            Real(f) => Ok(Real(-f)),
            Null => Ok(Null),
            v => Err(StoreError::Rejected(format!("cannot negate {v:?}"))),
        },
        Expr::Not(e) => match eval(e, env)? {
            Null => Ok(Null),
            v => Ok(Bool(!v.is_truthy())),
        },
        Expr::IsNull(e, negated) => {
            let isnull = eval(e, env)?.is_null();
            Ok(Bool(isnull != *negated))
        }
        Expr::Bin(lhs, op, rhs) => {
            // AND/OR need three-valued logic and short-circuiting.
            if matches!(op, BinOp::And | BinOp::Or) {
                let l = eval(lhs, env)?;
                return match op {
                    BinOp::And => {
                        if !l.is_null() && !l.is_truthy() {
                            return Ok(Bool(false));
                        }
                        let r = eval(rhs, env)?;
                        if !r.is_null() && !r.is_truthy() {
                            Ok(Bool(false))
                        } else if l.is_null() || r.is_null() {
                            Ok(Null)
                        } else {
                            Ok(Bool(true))
                        }
                    }
                    BinOp::Or => {
                        if !l.is_null() && l.is_truthy() {
                            return Ok(Bool(true));
                        }
                        let r = eval(rhs, env)?;
                        if !r.is_null() && r.is_truthy() {
                            Ok(Bool(true))
                        } else if l.is_null() || r.is_null() {
                            Ok(Null)
                        } else {
                            Ok(Bool(false))
                        }
                    }
                    _ => unreachable!(),
                };
            }
            let l = eval(lhs, env)?;
            let r = eval(rhs, env)?;
            match op {
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    match l.compare(&r) {
                        None => Ok(Null),
                        Some(ord) => {
                            let res = match op {
                                BinOp::Eq => ord.is_eq(),
                                BinOp::Ne => !ord.is_eq(),
                                BinOp::Lt => ord.is_lt(),
                                BinOp::Le => ord.is_le(),
                                BinOp::Gt => ord.is_gt(),
                                BinOp::Ge => ord.is_ge(),
                                _ => unreachable!(),
                            };
                            Ok(Bool(res))
                        }
                    }
                }
                BinOp::Like => match (&l, &r) {
                    (Null, _) | (_, Null) => Ok(Null),
                    (Text(t), Text(p)) => Ok(Bool(like_match(t, p))),
                    _ => Err(StoreError::Rejected("LIKE requires text operands".into())),
                },
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    arith(&l, *op, &r)
                }
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
    }
}

fn arith(l: &SqlValue, op: BinOp, r: &SqlValue) -> Result<SqlValue> {
    use SqlValue::*;
    match (l, r) {
        (Null, _) | (_, Null) => Ok(Null),
        (Int(a), Int(b)) => {
            let a = *a;
            let b = *b;
            match op {
                BinOp::Add => Ok(Int(a.wrapping_add(b))),
                BinOp::Sub => Ok(Int(a.wrapping_sub(b))),
                BinOp::Mul => Ok(Int(a.wrapping_mul(b))),
                BinOp::Div => {
                    if b == 0 {
                        Err(StoreError::Rejected("division by zero".into()))
                    } else {
                        Ok(Int(a.wrapping_div(b)))
                    }
                }
                BinOp::Mod => {
                    if b == 0 {
                        Err(StoreError::Rejected("modulo by zero".into()))
                    } else {
                        Ok(Int(a.wrapping_rem(b)))
                    }
                }
                _ => unreachable!(),
            }
        }
        _ => {
            let fa = match l {
                Int(a) => *a as f64,
                Real(a) => *a,
                v => return Err(StoreError::Rejected(format!("non-numeric operand {v:?}"))),
            };
            let fb = match r {
                Int(b) => *b as f64,
                Real(b) => *b,
                v => return Err(StoreError::Rejected(format!("non-numeric operand {v:?}"))),
            };
            let out = match op {
                BinOp::Add => fa + fb,
                BinOp::Sub => fa - fb,
                BinOp::Mul => fa * fb,
                BinOp::Div => fa / fb,
                BinOp::Mod => fa % fb,
                _ => unreachable!(),
            };
            Ok(Real(out))
        }
    }
}

/// SQL LIKE with `%` (any run) and `_` (any single char).
fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => (0..=t.len()).any(|i| rec(&t[i..], &p[1..])),
            Some('_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(c) => t.first() == Some(c) && rec(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}
