//! [`SqlKv`] — the common key-value interface over minisql.
//!
//! Exactly the paper's construction: "The key-value interface for SQL
//! databases can also be implemented using JDBC." Values live in a
//! `kv (k TEXT PRIMARY KEY, v BLOB)` table; `get` is an indexed point
//! SELECT, `put` is `INSERT OR REPLACE`. Every write is an auto-committed
//! transaction paying the WAL fsync — which is why, as in the paper's
//! Fig. 10, SQL writes are far slower than reads.

use crate::client::MiniSqlClient;
use crate::value::SqlValue;
use bytes::Bytes;
use kvapi::{KeyValue, Result, StoreError, StoreStats};
use std::net::SocketAddr;

/// Key-value store backed by a minisql server.
pub struct SqlKv {
    client: MiniSqlClient,
    name: String,
    table: String,
}

impl SqlKv {
    /// Connect and ensure the backing table exists.
    pub fn connect(addr: SocketAddr) -> Result<SqlKv> {
        SqlKv::connect_table(addr, "kv")
    }

    /// Connect with a custom table name (several logical stores can share
    /// a server).
    pub fn connect_table(addr: SocketAddr, table: &str) -> Result<SqlKv> {
        if !table.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(StoreError::Rejected(format!("invalid table name {table:?}")));
        }
        let client = MiniSqlClient::connect(addr);
        client.execute(&format!(
            "CREATE TABLE IF NOT EXISTS {table} (k TEXT PRIMARY KEY, v BLOB NOT NULL)"
        ))?;
        Ok(SqlKv { client, name: "minisql".to_string(), table: table.to_string() })
    }

    /// Override the display name.
    pub fn with_name(mut self, name: impl Into<String>) -> SqlKv {
        self.name = name.into();
        self
    }

    /// The underlying SQL client — the paper's "native features" escape
    /// hatch (issue arbitrary SQL against the same database).
    pub fn client(&self) -> &MiniSqlClient {
        &self.client
    }
}

impl KeyValue for SqlKv {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        self.client.execute_bound(
            &format!("INSERT OR REPLACE INTO {} VALUES (?, ?)", self.table),
            &[SqlValue::Text(key.to_string()), SqlValue::Blob(value.to_vec())],
        )?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Bytes>> {
        let rs = self.client.execute_bound(
            &format!("SELECT v FROM {} WHERE k = ?", self.table),
            &[SqlValue::Text(key.to_string())],
        )?;
        match rs.rows.into_iter().next() {
            None => Ok(None),
            Some(mut row) => match row.pop() {
                Some(SqlValue::Blob(b)) => Ok(Some(Bytes::from(b))),
                other => Err(StoreError::protocol(format!("expected blob, got {other:?}"))),
            },
        }
    }

    fn delete(&self, key: &str) -> Result<bool> {
        let rs = self.client.execute_bound(
            &format!("DELETE FROM {} WHERE k = ?", self.table),
            &[SqlValue::Text(key.to_string())],
        )?;
        Ok(rs.affected > 0)
    }

    fn contains(&self, key: &str) -> Result<bool> {
        let rs = self.client.execute_bound(
            &format!("SELECT COUNT(*) FROM {} WHERE k = ?", self.table),
            &[SqlValue::Text(key.to_string())],
        )?;
        Ok(matches!(rs.scalar(), Some(SqlValue::Int(n)) if *n > 0))
    }

    fn keys(&self) -> Result<Vec<String>> {
        let rs = self.client.execute(&format!("SELECT k FROM {} ORDER BY k", self.table))?;
        rs.rows
            .into_iter()
            .map(|mut row| match row.pop() {
                Some(SqlValue::Text(k)) => Ok(k),
                other => Err(StoreError::protocol(format!("expected text key, got {other:?}"))),
            })
            .collect()
    }

    fn clear(&self) -> Result<()> {
        self.client.execute(&format!("DELETE FROM {}", self.table))?;
        Ok(())
    }

    fn stats(&self) -> Result<StoreStats> {
        let rs = self.client.execute(&format!("SELECT COUNT(*) FROM {}", self.table))?;
        let keys = match rs.scalar() {
            Some(SqlValue::Int(n)) => *n as u64,
            _ => 0,
        };
        Ok(StoreStats { keys, bytes: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SqlServer;
    use std::sync::Arc;

    #[test]
    fn contract() {
        let server = SqlServer::start_in_memory().unwrap();
        kvapi::contract::run_all(&SqlKv::connect(server.addr()).unwrap());
    }

    #[test]
    fn contract_concurrent() {
        let server = SqlServer::start_in_memory().unwrap();
        kvapi::contract::run_all_concurrent(Arc::new(SqlKv::connect(server.addr()).unwrap()));
    }

    #[test]
    fn sql_injection_via_key_is_inert() {
        let server = SqlServer::start_in_memory().unwrap();
        let kv = SqlKv::connect(server.addr()).unwrap();
        let evil = "x'; DROP TABLE kv; --";
        kv.put(evil, b"payload").unwrap();
        assert_eq!(kv.get(evil).unwrap().unwrap(), &b"payload"[..]);
        assert_eq!(kv.keys().unwrap(), vec![evil.to_string()]);
    }

    #[test]
    fn custom_tables_are_isolated() {
        let server = SqlServer::start_in_memory().unwrap();
        let a = SqlKv::connect_table(server.addr(), "store_a").unwrap();
        let b = SqlKv::connect_table(server.addr(), "store_b").unwrap();
        a.put("k", b"a").unwrap();
        b.put("k", b"b").unwrap();
        a.clear().unwrap();
        assert_eq!(a.get("k").unwrap(), None);
        assert_eq!(b.get("k").unwrap().unwrap(), &b"b"[..]);
        assert!(SqlKv::connect_table(server.addr(), "bad name").is_err());
    }

    #[test]
    fn native_sql_escape_hatch() {
        let server = SqlServer::start_in_memory().unwrap();
        let kv = SqlKv::connect(server.addr()).unwrap();
        kv.put("a", b"1").unwrap();
        kv.put("b", b"22").unwrap();
        // Beyond the key-value interface: a real SQL query on the same data.
        let rs = kv
            .client()
            .execute("SELECT COUNT(*) FROM kv WHERE k LIKE 'a%'")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&SqlValue::Int(1)));
    }
}
