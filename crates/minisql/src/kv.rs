//! [`SqlKv`] — the common key-value interface over minisql.
//!
//! Exactly the paper's construction: "The key-value interface for SQL
//! databases can also be implemented using JDBC." Values live in a
//! `kv (k TEXT PRIMARY KEY, v BLOB)` table; `get` is an indexed point
//! SELECT, `put` is `INSERT OR REPLACE`. Every write is an auto-committed
//! transaction paying the WAL fsync — which is why, as in the paper's
//! Fig. 10, SQL writes are far slower than reads.

use crate::client::{bind, MiniSqlClient};
use crate::value::SqlValue;
use bytes::Bytes;
use kvapi::{KeyValue, Result, StoreError, StoreStats};
use parking_lot::Mutex;
use std::net::SocketAddr;

/// Key-value store backed by a minisql server.
pub struct SqlKv {
    client: MiniSqlClient,
    name: String,
    table: String,
    /// Serializes batch transactions issued through this handle: the engine
    /// tracks one global transaction, so two interleaved `BEGIN`s from the
    /// same store would reject each other.
    txn: Mutex<()>,
}

impl SqlKv {
    /// Connect and ensure the backing table exists.
    pub fn connect(addr: SocketAddr) -> Result<SqlKv> {
        SqlKv::connect_table(addr, "kv")
    }

    /// Connect with a custom table name (several logical stores can share
    /// a server).
    pub fn connect_table(addr: SocketAddr, table: &str) -> Result<SqlKv> {
        if !table.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(StoreError::Rejected(format!(
                "invalid table name {table:?}"
            )));
        }
        let client = MiniSqlClient::connect(addr);
        client.execute(&format!(
            "CREATE TABLE IF NOT EXISTS {table} (k TEXT PRIMARY KEY, v BLOB NOT NULL)"
        ))?;
        Ok(SqlKv {
            client,
            name: "minisql".to_string(),
            table: table.to_string(),
            txn: Mutex::new(()),
        })
    }

    /// Override the display name.
    pub fn with_name(mut self, name: impl Into<String>) -> SqlKv {
        self.name = name.into();
        self
    }

    /// The underlying SQL client — the paper's "native features" escape
    /// hatch (issue arbitrary SQL against the same database).
    pub fn client(&self) -> &MiniSqlClient {
        &self.client
    }

    /// Open a transaction, pipeline `stmts` inside it, then `COMMIT` on
    /// success or `ROLLBACK` if any statement was rejected. The whole batch
    /// pays the WAL fsync once at commit instead of once per auto-committed
    /// statement, and three round trips total instead of one per statement.
    ///
    /// `BEGIN` gets its own round trip rather than riding the pipeline: the
    /// engine tracks one global transaction across all connections, so a
    /// concurrent client may already hold it. If `BEGIN` were pipelined and
    /// rejected, our statements would silently join the foreign transaction
    /// and the trailing `COMMIT` would commit that client's uncommitted
    /// work. Verifying `BEGIN` first means nothing of ours is sent unless
    /// the transaction is actually ours.
    fn run_in_txn(&self, stmts: Vec<String>) -> Result<Vec<crate::engine::ResultSet>> {
        let _guard = self.txn.lock();
        self.client.execute("BEGIN")?;
        let replies = match self.client.execute_batch(&stmts) {
            Ok(r) => r,
            Err(e) => {
                let _ = self.client.execute("ROLLBACK");
                return Err(e);
            }
        };
        let mut out = Vec::with_capacity(replies.len());
        for reply in replies {
            match reply {
                Ok(rs) => out.push(rs),
                Err(e) => {
                    let _ = self.client.execute("ROLLBACK");
                    return Err(e);
                }
            }
        }
        self.client.execute("COMMIT")?;
        Ok(out)
    }

    fn select_stmt(&self, key: &str) -> Result<String> {
        bind(
            &format!("SELECT v FROM {} WHERE k = ?", self.table),
            &[SqlValue::Text(key.to_string())],
        )
    }
}

impl KeyValue for SqlKv {
    fn name(&self) -> &str {
        &self.name
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        self.client.execute_bound(
            &format!("INSERT OR REPLACE INTO {} VALUES (?, ?)", self.table),
            &[
                SqlValue::Text(key.to_string()),
                SqlValue::Blob(value.to_vec()),
            ],
        )?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Bytes>> {
        let rs = self.client.execute_bound(
            &format!("SELECT v FROM {} WHERE k = ?", self.table),
            &[SqlValue::Text(key.to_string())],
        )?;
        match rs.rows.into_iter().next() {
            None => Ok(None),
            Some(mut row) => match row.pop() {
                Some(SqlValue::Blob(b)) => Ok(Some(Bytes::from(b))),
                other => Err(StoreError::protocol(format!(
                    "expected blob, got {other:?}"
                ))),
            },
        }
    }

    fn delete(&self, key: &str) -> Result<bool> {
        let rs = self.client.execute_bound(
            &format!("DELETE FROM {} WHERE k = ?", self.table),
            &[SqlValue::Text(key.to_string())],
        )?;
        Ok(rs.affected > 0)
    }

    fn contains(&self, key: &str) -> Result<bool> {
        let rs = self.client.execute_bound(
            &format!("SELECT COUNT(*) FROM {} WHERE k = ?", self.table),
            &[SqlValue::Text(key.to_string())],
        )?;
        Ok(matches!(rs.scalar(), Some(SqlValue::Int(n)) if *n > 0))
    }

    fn keys(&self) -> Result<Vec<String>> {
        let rs = self
            .client
            .execute(&format!("SELECT k FROM {} ORDER BY k", self.table))?;
        rs.rows
            .into_iter()
            .map(|mut row| match row.pop() {
                Some(SqlValue::Text(k)) => Ok(k),
                other => Err(StoreError::protocol(format!(
                    "expected text key, got {other:?}"
                ))),
            })
            .collect()
    }

    fn clear(&self) -> Result<()> {
        self.client
            .execute(&format!("DELETE FROM {}", self.table))?;
        Ok(())
    }

    fn stats(&self) -> Result<StoreStats> {
        let rs = self
            .client
            .execute(&format!("SELECT COUNT(*) FROM {}", self.table))?;
        let keys = match rs.scalar() {
            Some(SqlValue::Int(n)) => *n as u64,
            _ => 0,
        };
        Ok(StoreStats { keys, bytes: 0 })
    }

    fn get_many(&self, keys: &[&str]) -> Result<Vec<Option<Bytes>>> {
        // Point SELECTs pipelined on one connection — no transaction needed
        // for reads, but still one round trip for the whole batch.
        let stmts: Vec<String> = keys
            .iter()
            .map(|k| self.select_stmt(k))
            .collect::<Result<_>>()?;
        self.client
            .execute_batch(&stmts)?
            .into_iter()
            .map(|reply| match reply?.rows.into_iter().next() {
                None => Ok(None),
                Some(mut row) => match row.pop() {
                    Some(SqlValue::Blob(b)) => Ok(Some(Bytes::from(b))),
                    other => Err(StoreError::protocol(format!(
                        "expected blob, got {other:?}"
                    ))),
                },
            })
            .collect()
    }

    fn put_many(&self, entries: &[(&str, &[u8])]) -> Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let stmts: Vec<String> = entries
            .iter()
            .map(|&(k, v)| {
                bind(
                    &format!("INSERT OR REPLACE INTO {} VALUES (?, ?)", self.table),
                    &[SqlValue::Text(k.to_string()), SqlValue::Blob(v.to_vec())],
                )
            })
            .collect::<Result<_>>()?;
        self.run_in_txn(stmts).map(|_| ())
    }

    fn delete_many(&self, keys: &[&str]) -> Result<Vec<bool>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let stmts: Vec<String> = keys
            .iter()
            .map(|k| {
                bind(
                    &format!("DELETE FROM {} WHERE k = ?", self.table),
                    &[SqlValue::Text(k.to_string())],
                )
            })
            .collect::<Result<_>>()?;
        Ok(self
            .run_in_txn(stmts)?
            .into_iter()
            .map(|rs| rs.affected > 0)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SqlServer;
    use std::sync::Arc;

    #[test]
    fn contract() {
        let server = SqlServer::start_in_memory().unwrap();
        kvapi::contract::run_all(&SqlKv::connect(server.addr()).unwrap());
    }

    #[test]
    fn contract_concurrent() {
        let server = SqlServer::start_in_memory().unwrap();
        kvapi::contract::run_all_concurrent(Arc::new(SqlKv::connect(server.addr()).unwrap()));
    }

    #[test]
    fn sql_injection_via_key_is_inert() {
        let server = SqlServer::start_in_memory().unwrap();
        let kv = SqlKv::connect(server.addr()).unwrap();
        let evil = "x'; DROP TABLE kv; --";
        kv.put(evil, b"payload").unwrap();
        assert_eq!(kv.get(evil).unwrap().unwrap(), &b"payload"[..]);
        assert_eq!(kv.keys().unwrap(), vec![evil.to_string()]);
    }

    #[test]
    fn custom_tables_are_isolated() {
        let server = SqlServer::start_in_memory().unwrap();
        let a = SqlKv::connect_table(server.addr(), "store_a").unwrap();
        let b = SqlKv::connect_table(server.addr(), "store_b").unwrap();
        a.put("k", b"a").unwrap();
        b.put("k", b"b").unwrap();
        a.clear().unwrap();
        assert_eq!(a.get("k").unwrap(), None);
        assert_eq!(b.get("k").unwrap().unwrap(), &b"b"[..]);
        assert!(SqlKv::connect_table(server.addr(), "bad name").is_err());
    }

    #[test]
    fn batch_puts_commit_as_one_transaction() {
        let server = SqlServer::start_in_memory().unwrap();
        let kv = SqlKv::connect(server.addr()).unwrap();
        let entries: Vec<(String, Vec<u8>)> = (0..20)
            .map(|i| (format!("k{i}"), format!("v{i}").into_bytes()))
            .collect();
        let refs: Vec<(&str, &[u8])> = entries
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
            .collect();
        kv.put_many(&refs).unwrap();
        assert_eq!(kv.stats().unwrap().keys, 20);
        // No transaction left dangling: a fresh explicit one must start.
        kv.client().execute("BEGIN").unwrap();
        kv.client().execute("COMMIT").unwrap();
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        let got = kv.get_many(&keys).unwrap();
        assert!(got
            .iter()
            .enumerate()
            .all(|(i, v)| v.as_deref() == Some(entries[i].1.as_slice())));
        let deleted = kv.delete_many(&keys).unwrap();
        assert!(deleted.iter().all(|&d| d));
        assert_eq!(kv.stats().unwrap().keys, 0);
    }

    #[test]
    fn batch_write_rejected_while_foreign_transaction_open() {
        let server = SqlServer::start_in_memory().unwrap();
        let a = SqlKv::connect(server.addr()).unwrap();
        let b = SqlKv::connect(server.addr()).unwrap();
        // `a` holds the engine's single global transaction with an
        // uncommitted insert in flight.
        a.client().execute("BEGIN").unwrap();
        a.client()
            .execute("INSERT INTO kv VALUES ('theirs', x'aa')")
            .unwrap();
        // `b`'s batch must fail cleanly instead of joining — and worse,
        // committing — the foreign transaction.
        let err = b.put_many(&[("ours", b"1".as_slice())]).unwrap_err();
        assert!(err.to_string().contains("transaction"), "{err}");
        assert!(b.delete_many(&["theirs"]).is_err());
        // Nothing of `b`'s batch leaked in, and `a`'s transaction is still
        // open and intact.
        a.client().execute("COMMIT").unwrap();
        assert_eq!(a.get("ours").unwrap(), None);
        assert_eq!(a.get("theirs").unwrap().unwrap(), &b"\xaa"[..]);
        // With the transaction released, batches work again.
        b.put_many(&[("ours", b"1".as_slice())]).unwrap();
        assert_eq!(b.get("ours").unwrap().unwrap(), &b"1"[..]);
    }

    #[test]
    fn batch_keys_with_quotes_stay_escaped() {
        let server = SqlServer::start_in_memory().unwrap();
        let kv = SqlKv::connect(server.addr()).unwrap();
        let evil = "x'; DROP TABLE kv; --";
        kv.put_many(&[(evil, b"payload".as_slice()), ("plain", b"p")])
            .unwrap();
        assert_eq!(
            kv.get_many(&[evil, "plain"]).unwrap(),
            vec![
                Some(Bytes::from_static(b"payload")),
                Some(Bytes::from_static(b"p"))
            ]
        );
        assert_eq!(kv.delete_many(&[evil]).unwrap(), vec![true]);
    }

    #[test]
    fn native_sql_escape_hatch() {
        let server = SqlServer::start_in_memory().unwrap();
        let kv = SqlKv::connect(server.addr()).unwrap();
        kv.put("a", b"1").unwrap();
        kv.put("b", b"22").unwrap();
        // Beyond the key-value interface: a real SQL query on the same data.
        let rs = kv
            .client()
            .execute("SELECT COUNT(*) FROM kv WHERE k LIKE 'a%'")
            .unwrap();
        assert_eq!(rs.scalar(), Some(&SqlValue::Int(1)));
    }
}
