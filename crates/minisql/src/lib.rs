//! # minisql — a small relational database engine, from scratch
//!
//! The paper's evaluation includes "a MySQL database running on the client
//! node accessed via JDBC", both as a data store in its own right (Figs.
//! 9/10) and as the backing store for the caching experiments (Figs. 15/16).
//! No MySQL is available offline, so this crate implements the relevant
//! slice of a relational database:
//!
//! * [`token`] / [`parser`] / [`ast`] — a SQL subset (CREATE/DROP TABLE,
//!   INSERT [OR REPLACE], SELECT with WHERE/ORDER BY/LIMIT and COUNT(*),
//!   UPDATE, DELETE, BEGIN/COMMIT/ROLLBACK);
//! * [`engine`] — row storage with a B-tree primary-key index (point
//!   lookups on `WHERE pk = …` take the index path, everything else scans),
//!   expression evaluation, and transactional undo;
//! * [`wal`] — a checksummed write-ahead log fsync'd at commit (the "costly
//!   commit operations" behind the paper's observation that MySQL writes
//!   are much slower than reads), with crash recovery and snapshot
//!   checkpoints;
//! * [`server`] / [`client`] — a length-prefixed TCP protocol and a
//!   JDBC-like client with `?` parameter binding;
//! * [`kv`] — the key-value bridge: a `kv(k TEXT PRIMARY KEY, v BLOB)`
//!   table behind the common [`kvapi::KeyValue`] interface, which is
//!   exactly how the paper implements its key-value interface for SQL
//!   databases ("the key-value interface for SQL databases can also be
//!   implemented using JDBC").

#![forbid(unsafe_code)]

pub mod ast;
pub mod client;
pub mod engine;
pub mod kv;
pub mod parser;
pub mod server;
pub mod token;
pub mod value;
pub mod wal;

pub use client::MiniSqlClient;
pub use engine::{Database, ResultSet};
pub use kv::SqlKv;
pub use server::{SqlServer, SqlServerConfig};
pub use value::SqlValue;
