//! Recursive-descent parser for the SQL subset.

use crate::ast::*;
use crate::token::{tokenize, Token};
use crate::value::{SqlType, SqlValue};
use kvapi::{Result, StoreError};

/// Parse one statement (a trailing `;` is permitted).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(";");
    if p.pos != p.tokens.len() {
        return Err(p.error("trailing tokens after statement"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn error(&self, msg: impl std::fmt::Display) -> StoreError {
        StoreError::Rejected(format!(
            "parse error at token {}: {msg} (next: {:?})",
            self.pos,
            self.tokens.get(self.pos)
        ))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_kw(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume the symbol if present.
    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(sym)) if *sym == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw}")))
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.error(format!("expected {s:?}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Word(w)) => Ok(w),
            other => Err(self.error(format!("expected identifier, got {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("CREATE") {
            if self.eat_kw("INDEX") {
                return self.create_index(false);
            }
            if self.eat_kw("UNIQUE") {
                // UNIQUE indexes are not supported; be explicit.
                return Err(self.error("UNIQUE indexes are not supported"));
            }
            return self.create_table();
        }
        if self.eat_kw("DROP") {
            if self.eat_kw("INDEX") {
                let if_exists = self.eat_kw("IF") && {
                    self.expect_kw("EXISTS")?;
                    true
                };
                return Ok(Statement::DropIndex {
                    name: self.ident()?,
                    if_exists,
                });
            }
            self.expect_kw("TABLE")?;
            let if_exists = self.eat_kw("IF") && {
                self.expect_kw("EXISTS")?;
                true
            };
            return Ok(Statement::DropTable {
                name: self.ident()?,
                if_exists,
            });
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("SELECT") {
            return self.select();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let filter = self.where_clause()?;
            return Ok(Statement::Delete { table, filter });
        }
        if self.eat_kw("BEGIN") {
            self.eat_kw("TRANSACTION");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            return Ok(Statement::Rollback);
        }
        Err(self.error("unknown statement"))
    }

    fn create_index(&mut self, _unique: bool) -> Result<Statement> {
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_sym("(")?;
        let column = self.ident()?;
        self.expect_sym(")")?;
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
            if_not_exists,
        })
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let ty_name = self.ident()?;
            let ty = SqlType::parse(&ty_name)
                .ok_or_else(|| self.error(format!("unknown type {ty_name:?}")))?;
            // Swallow optional length e.g. VARCHAR(255).
            if self.eat_sym("(") {
                while !self.eat_sym(")") {
                    if self.next().is_none() {
                        return Err(self.error("unterminated type length"));
                    }
                }
            }
            let mut primary_key = false;
            let mut not_null = false;
            loop {
                if self.eat_kw("PRIMARY") {
                    self.expect_kw("KEY")?;
                    primary_key = true;
                } else if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    not_null = true;
                } else {
                    break;
                }
            }
            columns.push(ColumnDef {
                name: col_name,
                ty,
                primary_key,
                not_null,
            });
            if self.eat_sym(",") {
                continue;
            }
            self.expect_sym(")")?;
            break;
        }
        if columns.iter().filter(|c| c.primary_key).count() > 1 {
            return Err(self.error("multiple PRIMARY KEY columns"));
        }
        Ok(Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn insert(&mut self) -> Result<Statement> {
        let or_replace = if self.eat_kw("OR") {
            self.expect_kw("REPLACE")?;
            true
        } else {
            false
        };
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_sym("(") {
            loop {
                columns.push(self.ident()?);
                if self.eat_sym(",") {
                    continue;
                }
                self.expect_sym(")")?;
                break;
            }
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if self.eat_sym(",") {
                    continue;
                }
                self.expect_sym(")")?;
                break;
            }
            rows.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
            or_replace,
        })
    }

    /// Parse one aggregate call if the next tokens form one.
    fn try_aggregate(&mut self) -> Result<Option<Aggregate>> {
        let func = match self.peek() {
            Some(t) if t.is_kw("COUNT") => AggFunc::Count,
            Some(t) if t.is_kw("SUM") => AggFunc::Sum,
            Some(t) if t.is_kw("AVG") => AggFunc::Avg,
            Some(t) if t.is_kw("MIN") => AggFunc::Min,
            Some(t) if t.is_kw("MAX") => AggFunc::Max,
            _ => return Ok(None),
        };
        // Only treat it as an aggregate when followed by '('; otherwise the
        // word is an ordinary column named "count"/"min"/…
        if !matches!(self.tokens.get(self.pos + 1), Some(Token::Sym("("))) {
            return Ok(None);
        }
        self.pos += 2; // function word + '('
        let agg = if func == AggFunc::Count && self.eat_sym("*") {
            Aggregate {
                func: AggFunc::CountStar,
                col: None,
            }
        } else {
            Aggregate {
                func,
                col: Some(self.ident()?),
            }
        };
        self.expect_sym(")")?;
        Ok(Some(agg))
    }

    fn select(&mut self) -> Result<Statement> {
        let projection = if self.eat_sym("*") {
            Projection::All
        } else if let Some(first) = self.try_aggregate()? {
            let mut aggs = vec![first];
            while self.eat_sym(",") {
                match self.try_aggregate()? {
                    Some(a) => aggs.push(a),
                    None => {
                        return Err(self.error("projections mixing aggregates and plain columns"))
                    }
                }
            }
            Projection::Aggregates(aggs)
        } else {
            let mut cols = vec![self.ident()?];
            while self.eat_sym(",") {
                cols.push(self.ident()?);
            }
            Projection::Columns(cols)
        };
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let filter = self.where_clause()?;
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            if !matches!(projection, Projection::Aggregates(_)) {
                return Err(self.error("GROUP BY requires aggregate projections"));
            }
            Some(self.ident()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let col = self.ident()?;
            let dir = if self.eat_kw("DESC") {
                Order::Desc
            } else {
                self.eat_kw("ASC");
                Order::Asc
            };
            Some((col, dir))
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            Some(self.usize_lit()?)
        } else {
            None
        };
        let offset = if self.eat_kw("OFFSET") {
            Some(self.usize_lit()?)
        } else {
            None
        };
        Ok(Statement::Select {
            projection,
            table,
            filter,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    fn usize_lit(&mut self) -> Result<usize> {
        match self.next() {
            Some(Token::Int(n)) if n >= 0 => Ok(n as usize),
            other => Err(self.error(format!("expected non-negative integer, got {other:?}"))),
        }
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym("=")?;
            sets.push((col, self.expr()?));
            if !self.eat_sym(",") {
                break;
            }
        }
        let filter = self.where_clause()?;
        Ok(Statement::Update {
            table,
            sets,
            filter,
        })
    }

    fn where_clause(&mut self) -> Result<Option<Expr>> {
        if self.eat_kw("WHERE") {
            Ok(Some(self.expr()?))
        } else {
            Ok(None)
        }
    }

    // Expression precedence: OR < AND < NOT < comparison < add < mul < unary.
    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(Box::new(lhs), BinOp::Or, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Bin(Box::new(lhs), BinOp::And, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull(Box::new(lhs), negated));
        }
        if self.eat_kw("LIKE") {
            let rhs = self.add_expr()?;
            return Ok(Expr::Bin(Box::new(lhs), BinOp::Like, Box::new(rhs)));
        }
        let op = if self.eat_sym("=") {
            BinOp::Eq
        } else if self.eat_sym("!=") || self.eat_sym("<>") {
            BinOp::Ne
        } else if self.eat_sym("<=") {
            BinOp::Le
        } else if self.eat_sym(">=") {
            BinOp::Ge
        } else if self.eat_sym("<") {
            BinOp::Lt
        } else if self.eat_sym(">") {
            BinOp::Gt
        } else {
            return Ok(lhs);
        };
        let rhs = self.add_expr()?;
        Ok(Expr::Bin(Box::new(lhs), op, Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = if self.eat_sym("+") {
                BinOp::Add
            } else if self.eat_sym("-") {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = if self.eat_sym("*") {
                BinOp::Mul
            } else if self.eat_sym("/") {
                BinOp::Div
            } else if self.eat_sym("%") {
                BinOp::Mod
            } else {
                return Ok(lhs);
            };
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat_sym("-") {
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        if self.eat_sym("+") {
            return self.unary_expr();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        if self.eat_sym("(") {
            let e = self.expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        match self.next() {
            Some(Token::Int(n)) => Ok(Expr::Lit(SqlValue::Int(n))),
            Some(Token::Real(f)) => Ok(Expr::Lit(SqlValue::Real(f))),
            Some(Token::Str(s)) => Ok(Expr::Lit(SqlValue::Text(s))),
            Some(Token::Blob(b)) => Ok(Expr::Lit(SqlValue::Blob(b))),
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("NULL") => Ok(Expr::Lit(SqlValue::Null)),
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("TRUE") => {
                Ok(Expr::Lit(SqlValue::Bool(true)))
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("FALSE") => {
                Ok(Expr::Lit(SqlValue::Bool(false)))
            }
            Some(Token::Word(w)) => Ok(Expr::Col(w)),
            Some(Token::Sym("?")) => {
                Err(self
                    .error("unbound '?' placeholder: bind parameters client-side before sending"))
            }
            other => Err(self.error(format!("expected expression, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s = parse("CREATE TABLE IF NOT EXISTS kv (k TEXT PRIMARY KEY, v BLOB NOT NULL, n INT)")
            .unwrap();
        match s {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                assert_eq!(name, "kv");
                assert!(if_not_exists);
                assert_eq!(columns.len(), 3);
                assert!(columns[0].primary_key);
                assert!(columns[1].not_null);
                assert_eq!(columns[2].ty, SqlType::Integer);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn varchar_length_swallowed() {
        let s = parse("CREATE TABLE t (name VARCHAR(255) PRIMARY KEY)").unwrap();
        match s {
            Statement::CreateTable { columns, .. } => {
                assert_eq!(columns[0].ty, SqlType::Text);
                assert!(columns[0].primary_key);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_multi_row_and_or_replace() {
        let s = parse("INSERT OR REPLACE INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert {
                table,
                columns,
                rows,
                or_replace,
            } => {
                assert_eq!(table, "t");
                assert!(or_replace);
                assert_eq!(columns, vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][0], Expr::Lit(SqlValue::Int(2)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_full_shape() {
        let s = parse(
            "SELECT a, b FROM t WHERE x > 3 AND y LIKE 'pre%' ORDER BY a DESC LIMIT 5 OFFSET 2;",
        )
        .unwrap();
        match s {
            Statement::Select {
                projection,
                table,
                filter,
                order_by,
                limit,
                offset,
                ..
            } => {
                assert_eq!(
                    projection,
                    Projection::Columns(vec!["a".into(), "b".into()])
                );
                assert_eq!(table, "t");
                assert!(filter.is_some());
                assert_eq!(order_by, Some(("a".into(), Order::Desc)));
                assert_eq!(limit, Some(5));
                assert_eq!(offset, Some(2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_star() {
        let s = parse("SELECT COUNT(*) FROM t WHERE v IS NOT NULL").unwrap();
        match s {
            Statement::Select {
                projection: Projection::Aggregates(aggs),
                filter: Some(f),
                ..
            } => {
                assert_eq!(
                    aggs,
                    vec![Aggregate {
                        func: AggFunc::CountStar,
                        col: None
                    }]
                );
                assert_eq!(f, Expr::IsNull(Box::new(Expr::Col("v".into())), true));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence() {
        // a = 1 OR b = 2 AND c = 3  →  a=1 OR (b=2 AND c=3)
        let s = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        let Statement::Select {
            filter: Some(Expr::Bin(_, BinOp::Or, rhs)),
            ..
        } = s
        else {
            panic!("expected OR at top level");
        };
        assert!(matches!(*rhs, Expr::Bin(_, BinOp::And, _)));
        // 1 + 2 * 3  →  1 + (2*3)
        let s = parse("SELECT * FROM t WHERE x = 1 + 2 * 3").unwrap();
        let Statement::Select {
            filter: Some(Expr::Bin(_, BinOp::Eq, rhs)),
            ..
        } = s
        else {
            panic!("expected Eq at top");
        };
        assert!(matches!(*rhs, Expr::Bin(_, BinOp::Add, _)));
    }

    #[test]
    fn unary_minus_and_not() {
        let s = parse("SELECT * FROM t WHERE NOT x < -5").unwrap();
        let Statement::Select {
            filter: Some(Expr::Not(inner)),
            ..
        } = s
        else {
            panic!("expected NOT");
        };
        assert!(matches!(*inner, Expr::Bin(_, BinOp::Lt, _)));
    }

    #[test]
    fn txn_statements() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("BEGIN TRANSACTION;").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn update_and_delete() {
        let s = parse("UPDATE t SET a = a + 1, b = 'x' WHERE k = 'id'").unwrap();
        match s {
            Statement::Update { sets, filter, .. } => {
                assert_eq!(sets.len(), 2);
                assert!(filter.is_some());
            }
            other => panic!("{other:?}"),
        }
        let s = parse("DELETE FROM t").unwrap();
        assert_eq!(
            s,
            Statement::Delete {
                table: "t".into(),
                filter: None
            }
        );
    }

    #[test]
    fn errors_are_rejections() {
        for bad in [
            "SELEC * FROM t",
            "SELECT * FROM",
            "INSERT INTO t VALUES",
            "CREATE TABLE t (a NOPE)",
            "SELECT * FROM t WHERE ?",
            "CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)",
            "SELECT * FROM t extra garbage",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
