//! The minisql TCP server.
//!
//! Wire protocol: length-prefixed JSON frames.
//! Request `{"sql": "..."}` → response `{"ok": ResultSet}` or
//! `{"err": "message"}`. One database, many connections; execution is
//! serialized inside [`Database`].

use crate::engine::{Database, ResultSet};
use crate::wal::SyncMode;
use kvapi::{Result, StoreError};
use netsim::{FaultAction, FaultInjector, FaultModel};
use serde::{Deserialize, Serialize};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Maximum accepted frame size (64 MiB).
const MAX_FRAME: u32 = 64 * 1024 * 1024;

#[derive(Serialize, Deserialize)]
pub(crate) struct WireRequest {
    pub sql: String,
}

#[derive(Serialize, Deserialize)]
pub(crate) enum WireResponse {
    #[serde(rename = "ok")]
    Ok(ResultSet),
    #[serde(rename = "err")]
    Err(String),
}

pub(crate) fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame exceeds u32 length")
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

pub(crate) fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(StoreError::protocol(format!(
            "frame of {len} bytes exceeds limit"
        )));
    }
    let len = usize::try_from(len).map_err(|_| StoreError::protocol("frame len out of range"))?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|_| StoreError::protocol("truncated frame"))?;
    Ok(Some(payload))
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct SqlServerConfig {
    /// Bind address (port 0 = ephemeral).
    pub bind: SocketAddr,
    /// Data directory; `None` = in-memory database.
    pub data_dir: Option<PathBuf>,
    /// Commit durability.
    pub sync: SyncMode,
    /// Fault-injection model (chaos testing); defaults to no faults.
    pub fault: FaultModel,
    /// Seed for the fault injector's RNG (deterministic chaos runs).
    pub fault_seed: u64,
}

impl Default for SqlServerConfig {
    fn default() -> Self {
        SqlServerConfig {
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            data_dir: None,
            sync: SyncMode::Always,
            fault: FaultModel::none(),
            fault_seed: 0x5a1f,
        }
    }
}

/// A running minisql server.
pub struct SqlServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<parking_lot::Mutex<Vec<TcpStream>>>,
    db: Arc<Database>,
    fault: Arc<FaultInjector>,
}

impl SqlServer {
    /// Start an in-memory server on an ephemeral port.
    pub fn start_in_memory() -> Result<SqlServer> {
        SqlServer::start(SqlServerConfig::default())
    }

    /// Start with explicit config (runs recovery when `data_dir` is set).
    pub fn start(cfg: SqlServerConfig) -> Result<SqlServer> {
        let db = Arc::new(match &cfg.data_dir {
            Some(dir) => Database::open(dir, cfg.sync)?,
            None => Database::in_memory(),
        });
        let listener = TcpListener::bind(cfg.bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<parking_lot::Mutex<Vec<TcpStream>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let fault = Arc::new(cfg.fault.injector(cfg.fault_seed));

        let accept_thread = {
            let shutdown = shutdown.clone();
            let conns = conns.clone();
            let db = db.clone();
            let fault = fault.clone();
            Some(std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if fault.refuse_connection() {
                        drop(stream);
                        continue;
                    }
                    if let Ok(clone) = stream.try_clone() {
                        let mut g = conns.lock();
                        g.retain(|s| s.peer_addr().is_ok());
                        g.push(clone);
                    }
                    let db = db.clone();
                    let fault = fault.clone();
                    std::thread::spawn(move || {
                        let _ = serve(stream, db, fault);
                    });
                }
            }))
        };

        Ok(SqlServer {
            addr,
            shutdown,
            accept_thread,
            conns,
            db,
            fault,
        })
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct handle to the embedded database (in-process use, tests).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Live fault injector — swap the model mid-run with
    /// [`FaultInjector::set_model`] for recovery tests.
    pub fn fault_injector(&self) -> &Arc<FaultInjector> {
        &self.fault
    }

    /// Sever every established connection while keeping the listener alive —
    /// simulates a server-side idle disconnect for pool-staleness tests.
    pub fn drop_connections(&self) {
        for c in self.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Stop the server.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        for c in self.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SqlServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve(stream: TcpStream, db: Arc<Database>, fault: Arc<FaultInjector>) -> Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        // The statement always executes before the fault decision: an
        // injected failure models "reply lost after the effect applied",
        // which is exactly the case that makes blind replays dangerous.
        let mut response = match serde_json::from_slice::<WireRequest>(&payload) {
            Err(e) => WireResponse::Err(format!("bad request: {e}")),
            Ok(req) => match db.execute(&req.sql) {
                Ok(rs) => WireResponse::Ok(rs),
                Err(e) => WireResponse::Err(e.to_string()),
            },
        };
        let action = fault.reply_action();
        match action {
            FaultAction::Reset => return Ok(()),
            FaultAction::ErrorReply => {
                response = WireResponse::Err("injected fault".to_string());
            }
            FaultAction::Stall(d) => std::thread::sleep(d),
            FaultAction::Deliver | FaultAction::Dribble(_) | FaultAction::PartialWrite => {}
        }
        // A response that fails to serialize must not kill the connection:
        // degrade to an in-band error the client can surface.
        let bytes = serde_json::to_vec(&response)
            .unwrap_or_else(|_| br#"{"err":"response serialization failed"}"#.to_vec());
        match action {
            FaultAction::Dribble(delay) => {
                let mut wire = Vec::with_capacity(4 + bytes.len());
                write_frame(&mut wire, &bytes)?;
                for &b in wire.iter().take(netsim::fault::DRIBBLE_MAX_BYTES) {
                    writer.write_all(&[b])?;
                    writer.flush()?;
                    std::thread::sleep(delay);
                }
                return Ok(());
            }
            FaultAction::PartialWrite => {
                let mut wire = Vec::with_capacity(4 + bytes.len());
                write_frame(&mut wire, &bytes)?;
                writer.write_all(wire.get(..wire.len() / 2).unwrap_or_default())?;
                writer.flush()?;
                return Ok(());
            }
            _ => write_frame(&mut writer, &bytes)?,
        }
    }
    Ok(())
}
