//! The minisql TCP server.
//!
//! Wire protocol: length-prefixed JSON frames.
//! Request `{"sql": "..."}` → response `{"ok": ResultSet}` or
//! `{"err": "message"}`. One database, many connections; execution is
//! serialized inside [`Database`].

use crate::engine::{Database, ResultSet};
use crate::value::SqlValue;
use crate::wal::SyncMode;
use kvapi::{Result, StoreError};
use netsim::{FaultAction, FaultInjector, FaultModel};
use serde::{Deserialize, Serialize};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Maximum accepted frame size (64 MiB).
const MAX_FRAME: u32 = 64 * 1024 * 1024;

#[derive(Serialize, Deserialize)]
pub(crate) struct WireRequest {
    pub sql: String,
    /// Encoded [`obs::TraceContext`]; absent (or null) from old clients.
    #[serde(default)]
    pub ctx: Option<String>,
    /// Correlation id for multiplexed transports: echoed as a top-level
    /// `id` key in the response so many in-flight requests can share one
    /// socket. Absent (or null) from blocking clients — and responses to
    /// id-less requests keep the legacy exactly-one-top-level-key shape.
    #[serde(default)]
    pub id: Option<u64>,
}

#[derive(Serialize, Deserialize)]
pub(crate) enum WireResponse {
    #[serde(rename = "ok")]
    Ok(ResultSet),
    #[serde(rename = "err")]
    Err(String),
}

pub(crate) fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame exceeds u32 length")
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

pub(crate) fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(StoreError::protocol(format!(
            "frame of {len} bytes exceeds limit"
        )));
    }
    let len = usize::try_from(len).map_err(|_| StoreError::protocol("frame len out of range"))?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|_| StoreError::protocol("truncated frame"))?;
    Ok(Some(payload))
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct SqlServerConfig {
    /// Bind address (port 0 = ephemeral).
    pub bind: SocketAddr,
    /// Data directory; `None` = in-memory database.
    pub data_dir: Option<PathBuf>,
    /// Commit durability.
    pub sync: SyncMode,
    /// Fault-injection model (chaos testing); defaults to no faults.
    pub fault: FaultModel,
    /// Seed for the fault injector's RNG (deterministic chaos runs).
    pub fault_seed: u64,
    /// Serve with one OS thread per connection instead of the epoll
    /// reactor (the C10K counter-demonstration build).
    pub legacy_threads: bool,
    /// Kernel accept backlog for the listener (reactor mode). Sized for
    /// connect bursts; std's bind() default of 128 drops overflow SYNs.
    pub accept_backlog: usize,
}

impl Default for SqlServerConfig {
    fn default() -> Self {
        SqlServerConfig {
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            data_dir: None,
            sync: SyncMode::Always,
            fault: FaultModel::none(),
            fault_seed: 0x5a1f,
            legacy_threads: false,
            accept_backlog: reactor::DEFAULT_ACCEPT_BACKLOG,
        }
    }
}

/// A running minisql server.
pub struct SqlServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// The event loop serving connections (None in legacy threaded mode).
    reactor: Option<reactor::ReactorThread>,
    conns: Arc<parking_lot::Mutex<Vec<TcpStream>>>,
    db: Arc<Database>,
    fault: Arc<FaultInjector>,
    registry: Arc<obs::Registry>,
}

impl SqlServer {
    /// Start an in-memory server on an ephemeral port.
    pub fn start_in_memory() -> Result<SqlServer> {
        SqlServer::start(SqlServerConfig::default())
    }

    /// Start with explicit config (runs recovery when `data_dir` is set).
    pub fn start(cfg: SqlServerConfig) -> Result<SqlServer> {
        let db = Arc::new(match &cfg.data_dir {
            Some(dir) => Database::open(dir, cfg.sync)?,
            None => Database::in_memory(),
        });
        let listener = TcpListener::bind(cfg.bind)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<parking_lot::Mutex<Vec<TcpStream>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let fault = Arc::new(cfg.fault.injector(cfg.fault_seed));
        let registry = Arc::new(obs::Registry::new());
        // Stable node identity on every federated series.
        registry.set_base_label("node", &addr.to_string());

        let (accept_thread, reactor) = if cfg.legacy_threads {
            let shutdown = shutdown.clone();
            let conns = conns.clone();
            let db = db.clone();
            let fault = fault.clone();
            let registry = registry.clone();
            let thread = std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if fault.refuse_connection() {
                        drop(stream);
                        continue;
                    }
                    if let Ok(clone) = stream.try_clone() {
                        let mut g = conns.lock();
                        g.retain(|s| s.peer_addr().is_ok());
                        g.push(clone);
                    }
                    let db = db.clone();
                    let fault = fault.clone();
                    let registry = registry.clone();
                    std::thread::spawn(move || {
                        let _ = serve(stream, db, fault, registry);
                    });
                }
            });
            (Some(thread), None)
        } else {
            let mut r = reactor::Reactor::new()?;
            let shutdown = shutdown.clone();
            let db = db.clone();
            let fault = fault.clone();
            let registry = registry.clone();
            r.listen_with_backlog(
                listener,
                move |_peer: SocketAddr| {
                    if shutdown.load(Ordering::Relaxed) || fault.refuse_connection() {
                        return None;
                    }
                    Some(Box::new(SqlConn {
                        db: db.clone(),
                        fault: fault.clone(),
                        registry: registry.clone(),
                        dead: false,
                    }) as Box<dyn reactor::ConnHandler>)
                },
                cfg.accept_backlog,
            )?;
            (None, Some(r.spawn()))
        };

        Ok(SqlServer {
            addr,
            shutdown,
            accept_thread,
            reactor,
            conns,
            db,
            fault,
            registry,
        })
    }

    /// The server-side metrics registry (also scrapeable over the wire via
    /// the `METRICS` pseudo-statement).
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.registry
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct handle to the embedded database (in-process use, tests).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Live fault injector — swap the model mid-run with
    /// [`FaultInjector::set_model`] for recovery tests.
    pub fn fault_injector(&self) -> &Arc<FaultInjector> {
        &self.fault
    }

    /// Sever every established connection while keeping the listener alive —
    /// simulates a server-side idle disconnect for pool-staleness tests.
    pub fn drop_connections(&self) {
        if let Some(rt) = &self.reactor {
            rt.handle().close_all_conns();
        }
        for c in self.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Stop the server.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(mut rt) = self.reactor.take() {
            rt.shutdown();
        }
        if self.accept_thread.is_some() {
            let _ = TcpStream::connect(self.addr);
        }
        for c in self.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SqlServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The `METRICS` pseudo-statement: one row, one column, the registry's
/// Prometheus text — wire-scrapeable without a separate HTTP listener.
fn metrics_result(registry: &obs::Registry) -> ResultSet {
    // Refresh process gauges so every scrape sees current resource
    // telemetry alongside the op metrics.
    obs::procinfo::publish(registry);
    ResultSet {
        columns: vec!["metrics".to_string()],
        rows: vec![vec![SqlValue::Text(registry.render_prometheus())]],
        affected: 0,
    }
}

/// Serve one request payload: parse, execute, record metrics/traces, and
/// serialize the response. Returns the fault action to apply on the write
/// side plus the (unframed) response bytes. Shared verbatim by the
/// reactor handler and the legacy threaded loop so the modes cannot drift.
fn execute_payload(
    payload: &[u8],
    db: &Database,
    fault: &FaultInjector,
    registry: &obs::Registry,
) -> (FaultAction, Vec<u8>) {
    let t0 = Instant::now();
    let parsed = serde_json::from_slice::<WireRequest>(payload);
    let trace_ctx = parsed
        .as_ref()
        .ok()
        .and_then(|r| r.ctx.as_deref())
        .and_then(obs::TraceContext::decode);
    let req_id = parsed.as_ref().ok().and_then(|r| r.id);
    let op = match &parsed {
        Ok(r) => r
            .sql
            .split_whitespace()
            .next()
            .unwrap_or("?")
            .to_ascii_uppercase(),
        Err(_) => "bad-request".to_string(),
    };
    // Queue wait: arrival to dispatch (frame parse, bookkeeping).
    let queue = t0.elapsed();
    let t_exec = Instant::now();
    // The statement always executes before the fault decision: an
    // injected failure models "reply lost after the effect applied",
    // which is exactly the case that makes blind replays dangerous.
    let mut response = match &parsed {
        Err(e) => WireResponse::Err(format!("bad request: {e}")),
        Ok(req) if req.sql.trim() == "METRICS" => WireResponse::Ok(metrics_result(registry)),
        Ok(req) => match db.execute(&req.sql) {
            Ok(rs) => WireResponse::Ok(rs),
            Err(e) => WireResponse::Err(e.to_string()),
        },
    };
    let execute = t_exec.elapsed();
    // Server-side execute latency per statement kind, so federated
    // dashboards get a per-node p50/p99 (the op set is closed).
    registry
        .histogram("minisql_statement_duration_ns", &[("op", &op)])
        .record_duration(execute);
    registry
        .counter(
            "minisql_statements_total",
            &[
                ("op", &op),
                (
                    "outcome",
                    match &response {
                        WireResponse::Ok(_) => "ok",
                        WireResponse::Err(_) => "err",
                    },
                ),
            ],
        )
        .inc();
    let action = fault.reply_action();
    if matches!(action, FaultAction::ErrorReply) {
        response = WireResponse::Err("injected fault".to_string());
    }
    let bytes = if let Some(cctx) = trace_ctx {
        // Serialize cost comes from a probe render of the unspliced
        // response: the span rides *inside* the reply, so it must
        // exist before the real serialization.
        let t_ser = Instant::now();
        let mut val = serde_json::value_of(&response);
        let _ = serde_json::value_to_string(&val);
        let serialize = t_ser.elapsed();
        let span = obs::ServerSpan::new("minisql", queue, execute, serialize);
        let mut rec = obs::CompletedTrace::server_side(&cctx, &span, op);
        rec.error = match (&action, &response) {
            (FaultAction::Reset, _) => Some("connection reset before reply".into()),
            (_, WireResponse::Err(e)) => Some(e.clone()),
            _ => None,
        };
        // Recorded even when the reply is about to be lost (Reset,
        // partial writes): the statement's *effect* was applied, and
        // the trace proving that makes lost-reply retries auditable.
        obs::FlightRecorder::global().record(rec);
        // Splice the span *inside* the ok object — the response
        // envelope must keep exactly one top-level key, and unknown
        // fields inside a result set are ignored by every client
        // generation. Error responses carry no span.
        if let serde::Value::Object(pairs) = &mut val {
            if let Some((_, serde::Value::Object(ok_pairs))) =
                pairs.iter_mut().find(|(k, _)| k == "ok")
            {
                ok_pairs.push(("span".to_string(), serde::Value::String(span.encode())));
            }
            if let Some(id) = req_id {
                pairs.push(("id".to_string(), serde::Value::UInt(id)));
            }
        }
        serde_json::value_to_string(&val).into_bytes()
    } else if let Some(id) = req_id {
        // Multiplexed request: echo the correlation id as an extra
        // top-level key. Only id-carrying (new) clients ever see this
        // shape; id-less responses stay exactly-one-key.
        let mut val = serde_json::value_of(&response);
        if let serde::Value::Object(pairs) = &mut val {
            pairs.push(("id".to_string(), serde::Value::UInt(id)));
        }
        serde_json::value_to_string(&val).into_bytes()
    } else {
        // A response that fails to serialize must not kill the
        // connection: degrade to an in-band error the client can
        // surface.
        serde_json::to_vec(&response)
            .unwrap_or_else(|_| br#"{"err":"response serialization failed"}"#.to_vec())
    };
    (action, bytes)
}

/// Reactor state machine for one minisql connection: 4-byte LE length
/// prefix + JSON payload per frame. Blocking fault shapes become timed
/// write-pipeline steps; wire bytes and pacing match the legacy loop.
struct SqlConn {
    db: Arc<Database>,
    fault: Arc<FaultInjector>,
    registry: Arc<obs::Registry>,
    /// The session is over (reset, dribble, partial write, framing error)
    /// but the socket stays open: the blocking build parked such
    /// connections without ever sending a FIN (the accept loop holds a
    /// clone), so a lost reply black-holes until the client's deadline.
    /// Later buffered frames must not execute and never get replies.
    dead: bool,
}

impl reactor::ConnHandler for SqlConn {
    fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut reactor::Outbox) {
        while !self.dead {
            let Some(header) = inbuf.get(..4).and_then(|h| <[u8; 4]>::try_from(h).ok()) else {
                break;
            };
            let len = u32::from_le_bytes(header);
            if len > MAX_FRAME {
                // The blocking loop errors out of read_frame here and
                // parks without writing anything (no FIN: the accept loop
                // holds a clone of the socket).
                self.dead = true;
                break;
            }
            let Some(total) = usize::try_from(len).ok().and_then(|l| l.checked_add(4)) else {
                self.dead = true;
                break;
            };
            if inbuf.len() < total {
                break;
            }
            let frame: Vec<u8> = inbuf.drain(..total).collect();
            let payload = frame.get(4..).unwrap_or_default();
            let (action, bytes) = execute_payload(payload, &self.db, &self.fault, &self.registry);
            let mut wire = Vec::with_capacity(bytes.len().saturating_add(4));
            if write_frame(&mut wire, &bytes).is_err() {
                self.dead = true;
                break;
            }
            match action {
                FaultAction::Reset => {
                    // Reply lost: black-hole, no FIN.
                    self.dead = true;
                }
                FaultAction::Stall(d) => {
                    out.delay(d);
                    out.send(wire);
                }
                FaultAction::Dribble(delay) => {
                    for &b in wire.iter().take(netsim::fault::DRIBBLE_MAX_BYTES) {
                        out.send(vec![b]);
                        out.delay(delay);
                    }
                    // The rest of the reply never arrives, and neither
                    // does a FIN.
                    self.dead = true;
                }
                FaultAction::PartialWrite => {
                    out.send(wire.get(..wire.len() / 2).unwrap_or_default().to_vec());
                    self.dead = true;
                }
                FaultAction::Deliver | FaultAction::ErrorReply => out.send(wire),
            }
        }
        if self.dead {
            // Discard anything the parked client keeps sending so the
            // buffer stays bounded.
            inbuf.clear();
        }
    }

    fn on_eof(&mut self, inbuf: &mut Vec<u8>, out: &mut reactor::Outbox) {
        // The blocking loop treats EOF (even mid-frame) as end-of-session
        // without writing anything; match that.
        inbuf.clear();
        out.close();
    }
}

fn serve(
    stream: TcpStream,
    db: Arc<Database>,
    fault: Arc<FaultInjector>,
    registry: Arc<obs::Registry>,
) -> Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        let (action, bytes) = execute_payload(&payload, &db, &fault, &registry);
        match action {
            FaultAction::Reset => return Ok(()),
            FaultAction::Stall(d) => {
                std::thread::sleep(d);
                write_frame(&mut writer, &bytes)?;
            }
            FaultAction::Dribble(delay) => {
                let mut wire = Vec::with_capacity(4 + bytes.len());
                write_frame(&mut wire, &bytes)?;
                for &b in wire.iter().take(netsim::fault::DRIBBLE_MAX_BYTES) {
                    writer.write_all(&[b])?;
                    writer.flush()?;
                    std::thread::sleep(delay);
                }
                return Ok(());
            }
            FaultAction::PartialWrite => {
                let mut wire = Vec::with_capacity(4 + bytes.len());
                write_frame(&mut wire, &bytes)?;
                writer.write_all(wire.get(..wire.len() / 2).unwrap_or_default())?;
                writer.flush()?;
                return Ok(());
            }
            FaultAction::Deliver | FaultAction::ErrorReply => write_frame(&mut writer, &bytes)?,
        }
    }
    Ok(())
}
