//! SQL tokenizer.

use kvapi::{Result, StoreError};

/// One lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched by the
    /// parser; the original spelling is preserved for identifiers).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Real(f64),
    /// String literal (quotes and doubled-quote escapes resolved).
    Str(String),
    /// Blob literal `x'hex'`.
    Blob(Vec<u8>),
    /// Punctuation / operator.
    Sym(&'static str),
}

impl Token {
    /// True when this token is the (case-insensitive) keyword `kw`.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

const SYMBOLS: [&str; 18] = [
    "<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", "*", ";", "+", "-", "/", "%", ".", "?",
];

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments: -- to end of line.
        if c == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Blob literal x'...'
        if (c == b'x' || c == b'X') && bytes.get(i + 1) == Some(&b'\'') {
            let start = i + 2;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'\'' {
                j += 1;
            }
            if j >= bytes.len() {
                return Err(StoreError::Rejected("unterminated blob literal".into()));
            }
            let hex = &sql[start..j];
            if !hex.len().is_multiple_of(2) {
                return Err(StoreError::Rejected("odd-length blob literal".into()));
            }
            let mut blob = Vec::with_capacity(hex.len() / 2);
            for k in (0..hex.len()).step_by(2) {
                blob.push(
                    u8::from_str_radix(&hex[k..k + 2], 16)
                        .map_err(|_| StoreError::Rejected("bad hex in blob literal".into()))?,
                );
            }
            out.push(Token::Blob(blob));
            i = j + 1;
            continue;
        }
        // String literal with '' escape.
        if c == b'\'' {
            let mut s = String::new();
            let mut j = i + 1;
            loop {
                if j >= bytes.len() {
                    return Err(StoreError::Rejected("unterminated string literal".into()));
                }
                if bytes[j] == b'\'' {
                    if bytes.get(j + 1) == Some(&b'\'') {
                        s.push('\'');
                        j += 2;
                    } else {
                        j += 1;
                        break;
                    }
                } else {
                    // Push the full UTF-8 character.
                    let ch_str = &sql[j..];
                    let ch = ch_str.chars().next().expect("in-bounds char");
                    s.push(ch);
                    j += ch.len_utf8();
                }
            }
            out.push(Token::Str(s));
            i = j;
            continue;
        }
        // Number (integer or real; leading digit or .digit).
        if c.is_ascii_digit() || (c == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) {
            let start = i;
            let mut j = i;
            let mut is_real = false;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'.') {
                if bytes[j] == b'.' {
                    if is_real {
                        break;
                    }
                    is_real = true;
                }
                j += 1;
            }
            // Exponent part.
            if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                let mut k = j + 1;
                if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                    k += 1;
                }
                if k < bytes.len() && bytes[k].is_ascii_digit() {
                    is_real = true;
                    j = k;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
            }
            let text = &sql[start..j];
            if is_real {
                let f: f64 = text
                    .parse()
                    .map_err(|_| StoreError::Rejected(format!("bad number {text:?}")))?;
                out.push(Token::Real(f));
            } else {
                let n: i64 = text
                    .parse()
                    .map_err(|_| StoreError::Rejected(format!("bad number {text:?}")))?;
                out.push(Token::Int(n));
            }
            i = j;
            continue;
        }
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            let mut j = i;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            out.push(Token::Word(sql[start..j].to_string()));
            i = j;
            continue;
        }
        // Quoted identifier "name" (kept as a Word).
        if c == b'"' {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'"' {
                j += 1;
            }
            if j >= bytes.len() {
                return Err(StoreError::Rejected(
                    "unterminated quoted identifier".into(),
                ));
            }
            out.push(Token::Word(sql[i + 1..j].to_string()));
            i = j + 1;
            continue;
        }
        // Symbols (longest match first).
        let rest = &sql[i..];
        let sym = SYMBOLS.iter().find(|s| rest.starts_with(**s));
        match sym {
            Some(s) => {
                out.push(Token::Sym(s));
                i += s.len();
            }
            None => {
                return Err(StoreError::Rejected(format!(
                    "unexpected character {:?} at byte {i}",
                    rest.chars().next().unwrap_or('?')
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_numbers_strings() {
        let toks = tokenize("SELECT a, b2 FROM t WHERE x = 'it''s' AND y >= 3.5 LIMIT 10").unwrap();
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Word("a".into()));
        assert_eq!(toks[2], Token::Sym(","));
        assert!(toks.contains(&Token::Str("it's".into())));
        assert!(toks.contains(&Token::Real(3.5)));
        assert!(toks.contains(&Token::Int(10)));
        assert!(toks.contains(&Token::Sym(">=")));
    }

    #[test]
    fn blob_literals() {
        let toks = tokenize("INSERT INTO t VALUES (x'deadBEEF')").unwrap();
        assert!(toks.contains(&Token::Blob(vec![0xde, 0xad, 0xbe, 0xef])));
        assert!(tokenize("x'abc'").is_err(), "odd length");
        assert!(tokenize("x'zz'").is_err(), "bad hex");
        assert!(tokenize("x'ab").is_err(), "unterminated");
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("SELECT".into()),
                Token::Int(1),
                Token::Sym(","),
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn negative_handled_as_unary_minus() {
        // The tokenizer emits '-' separately; the parser folds it.
        let toks = tokenize("-5").unwrap();
        assert_eq!(toks, vec![Token::Sym("-"), Token::Int(5)]);
    }

    #[test]
    fn exponents_and_leading_dot() {
        assert_eq!(tokenize("1e3").unwrap(), vec![Token::Real(1000.0)]);
        assert_eq!(tokenize("2.5e-2").unwrap(), vec![Token::Real(0.025)]);
        assert_eq!(tokenize(".5").unwrap(), vec![Token::Real(0.5)]);
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("SELECT 'ключ-鍵'").unwrap();
        assert_eq!(toks[1], Token::Str("ключ-鍵".into()));
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("SELECT \"weird name\" FROM t").unwrap();
        assert_eq!(toks[1], Token::Word("weird name".into()));
    }

    #[test]
    fn garbage_rejected() {
        assert!(tokenize("SELECT @foo").is_err());
        assert!(tokenize("'unterminated").is_err());
    }
}
