//! SQL values: types, coercion, comparison, and SQL-literal rendering.

use kvapi::{Result, StoreError};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Column data types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SqlType {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit float.
    Real,
    /// UTF-8 text.
    Text,
    /// Raw bytes.
    Blob,
    /// Boolean.
    Boolean,
}

impl SqlType {
    /// Parse a type name (several aliases accepted, as in MySQL DDL).
    pub fn parse(name: &str) -> Option<SqlType> {
        match name.to_ascii_uppercase().as_str() {
            "INTEGER" | "INT" | "BIGINT" | "SMALLINT" => Some(SqlType::Integer),
            "REAL" | "DOUBLE" | "FLOAT" => Some(SqlType::Real),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => Some(SqlType::Text),
            "BLOB" | "BYTEA" | "BINARY" | "VARBINARY" => Some(SqlType::Blob),
            "BOOLEAN" | "BOOL" => Some(SqlType::Boolean),
            _ => None,
        }
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One SQL value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Real(f64),
    /// Text.
    Text(String),
    /// Bytes.
    Blob(Vec<u8>),
    /// Boolean.
    Bool(bool),
}

impl SqlValue {
    /// True when NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    /// SQL truthiness (for WHERE): NULL and false are not true.
    pub fn is_truthy(&self) -> bool {
        match self {
            SqlValue::Bool(b) => *b,
            SqlValue::Int(n) => *n != 0,
            SqlValue::Real(f) => *f != 0.0,
            SqlValue::Null => false,
            _ => false,
        }
    }

    /// Coerce to a column type at insert/update time; errors on lossy or
    /// nonsensical conversions (a simplified version of MySQL's strict
    /// mode).
    pub fn coerce(self, ty: SqlType) -> Result<SqlValue> {
        let reject = |v: &SqlValue| {
            Err(StoreError::Rejected(format!(
                "cannot store {v:?} in {ty:?} column"
            )))
        };
        match (ty, self) {
            (_, SqlValue::Null) => Ok(SqlValue::Null),
            (SqlType::Integer, v @ SqlValue::Int(_)) => Ok(v),
            (SqlType::Integer, SqlValue::Bool(b)) => Ok(SqlValue::Int(i64::from(b))),
            (SqlType::Integer, SqlValue::Real(f)) if f.fract() == 0.0 => {
                Ok(SqlValue::Int(f as i64))
            }
            (SqlType::Real, SqlValue::Real(f)) => Ok(SqlValue::Real(f)),
            (SqlType::Real, SqlValue::Int(n)) => Ok(SqlValue::Real(n as f64)),
            (SqlType::Text, v @ SqlValue::Text(_)) => Ok(v),
            (SqlType::Blob, v @ SqlValue::Blob(_)) => Ok(v),
            (SqlType::Blob, SqlValue::Text(s)) => Ok(SqlValue::Blob(s.into_bytes())),
            (SqlType::Boolean, v @ SqlValue::Bool(_)) => Ok(v),
            (SqlType::Boolean, SqlValue::Int(0)) => Ok(SqlValue::Bool(false)),
            (SqlType::Boolean, SqlValue::Int(1)) => Ok(SqlValue::Bool(true)),
            (_, v) => reject(&v),
        }
    }

    /// Three-valued comparison; `None` when either side is NULL or the
    /// types are incomparable.
    pub fn compare(&self, other: &SqlValue) -> Option<Ordering> {
        use SqlValue::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Real(a), Real(b)) => a.partial_cmp(b),
            (Int(a), Real(b)) => (*a as f64).partial_cmp(b),
            (Real(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Blob(a), Blob(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Render as a SQL literal (used by the client's `?` binding).
    pub fn to_literal(&self) -> String {
        match self {
            SqlValue::Null => "NULL".to_string(),
            SqlValue::Int(n) => n.to_string(),
            SqlValue::Real(f) => {
                // Keep a decimal point so the parser reads it back as Real.
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                }
            }
            SqlValue::Text(s) => format!("'{}'", s.replace('\'', "''")),
            SqlValue::Blob(b) => {
                let hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
                format!("x'{hex}'")
            }
            SqlValue::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        }
    }
}

/// Primary-key wrapper with a **total** order so it can key a `BTreeMap`.
/// NULL keys are rejected before construction; NaN floats order last.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PkKey(pub SqlValue);

impl Eq for PkKey {}

impl Ord for PkKey {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &SqlValue) -> u8 {
            match v {
                SqlValue::Null => 0,
                SqlValue::Bool(_) => 1,
                SqlValue::Int(_) | SqlValue::Real(_) => 2,
                SqlValue::Text(_) => 3,
                SqlValue::Blob(_) => 4,
            }
        }
        match self.0.compare(&other.0) {
            Some(o) => o,
            None => rank(&self.0).cmp(&rank(&other.0)).then_with(|| {
                // Same rank but incomparable: NaN vs number. Order NaN last.
                let a_nan = matches!(self.0, SqlValue::Real(f) if f.is_nan());
                let b_nan = matches!(other.0, SqlValue::Real(f) if f.is_nan());
                a_nan.cmp(&b_nan)
            }),
        }
    }
}

impl PartialOrd for PkKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_aliases() {
        assert_eq!(SqlType::parse("int"), Some(SqlType::Integer));
        assert_eq!(SqlType::parse("VARCHAR"), Some(SqlType::Text));
        assert_eq!(SqlType::parse("bytea"), Some(SqlType::Blob));
        assert_eq!(SqlType::parse("nope"), None);
    }

    #[test]
    fn coercion_rules() {
        assert_eq!(
            SqlValue::Real(3.0).coerce(SqlType::Integer).unwrap(),
            SqlValue::Int(3)
        );
        assert!(SqlValue::Real(3.5).coerce(SqlType::Integer).is_err());
        assert_eq!(
            SqlValue::Int(7).coerce(SqlType::Real).unwrap(),
            SqlValue::Real(7.0)
        );
        assert_eq!(
            SqlValue::Text("ab".into()).coerce(SqlType::Blob).unwrap(),
            SqlValue::Blob(b"ab".to_vec())
        );
        assert!(SqlValue::Text("ab".into())
            .coerce(SqlType::Integer)
            .is_err());
        assert_eq!(
            SqlValue::Null.coerce(SqlType::Integer).unwrap(),
            SqlValue::Null
        );
    }

    #[test]
    fn comparisons() {
        use SqlValue::*;
        assert_eq!(Int(1).compare(&Int(2)), Some(Ordering::Less));
        assert_eq!(Int(2).compare(&Real(2.0)), Some(Ordering::Equal));
        assert_eq!(
            Text("b".into()).compare(&Text("a".into())),
            Some(Ordering::Greater)
        );
        assert_eq!(Null.compare(&Int(1)), None);
        assert_eq!(Int(1).compare(&Text("1".into())), None);
    }

    #[test]
    fn literal_round_trip_shapes() {
        assert_eq!(SqlValue::Text("it's".into()).to_literal(), "'it''s'");
        assert_eq!(SqlValue::Blob(vec![0xde, 0xad]).to_literal(), "x'dead'");
        assert_eq!(SqlValue::Int(-5).to_literal(), "-5");
        assert_eq!(SqlValue::Real(2.0).to_literal(), "2.0");
        assert_eq!(SqlValue::Null.to_literal(), "NULL");
        assert_eq!(SqlValue::Bool(true).to_literal(), "TRUE");
    }

    #[test]
    fn pk_key_total_order() {
        let mut keys = vec![
            PkKey(SqlValue::Text("b".into())),
            PkKey(SqlValue::Int(10)),
            PkKey(SqlValue::Text("a".into())),
            PkKey(SqlValue::Int(2)),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                PkKey(SqlValue::Int(2)),
                PkKey(SqlValue::Int(10)),
                PkKey(SqlValue::Text("a".into())),
                PkKey(SqlValue::Text("b".into())),
            ]
        );
    }

    #[test]
    fn truthiness() {
        assert!(SqlValue::Bool(true).is_truthy());
        assert!(!SqlValue::Bool(false).is_truthy());
        assert!(SqlValue::Int(5).is_truthy());
        assert!(!SqlValue::Int(0).is_truthy());
        assert!(!SqlValue::Null.is_truthy());
        assert!(!SqlValue::Text("x".into()).is_truthy());
    }
}
