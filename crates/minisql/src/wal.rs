//! Write-ahead log with checksummed records, fsync'd commits, snapshot
//! checkpoints, and crash recovery.
//!
//! The log is *logical*: each record carries the SQL text of one committed
//! transaction. Execution is deterministic (no time/random functions in the
//! dialect), so replaying the statements reconstructs the exact state.
//!
//! Record framing: `[len: u32 LE][crc32: u32 LE][payload]`, payload =
//! JSON-encoded [`WalRecord`]. Recovery reads records until EOF or the first
//! corrupt/truncated record (the torn tail a crash can leave) and discards
//! everything from there on — standard WAL semantics.

use kvapi::{Result, StoreError};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Durability mode for commits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncMode {
    /// fsync the log on every commit (the paper's "costly commit").
    Always,
    /// Leave flushing to the OS (fast, loses the tail on power failure).
    Os,
}

/// One committed transaction.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotonic transaction id.
    pub txn: u64,
    /// The SQL statements of the transaction, in execution order.
    pub statements: Vec<String>,
}

/// CRC-32 (IEEE, reflected) — small local copy so minisql does not depend
/// on the compression crate.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                0xedb8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
        }
    }
    crc ^ 0xffff_ffff
}

/// An open write-ahead log.
pub struct Wal {
    path: PathBuf,
    file: File,
    sync: SyncMode,
    bytes: u64,
}

impl Wal {
    /// Open (or create) the log at `path` for appending.
    pub fn open(path: impl AsRef<Path>, sync: SyncMode) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = file.metadata()?.len();
        Ok(Wal {
            path,
            file,
            sync,
            bytes,
        })
    }

    /// Append one committed transaction; honors the sync mode.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let payload = serde_json::to_vec(record).expect("record serializes");
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        if self.sync == SyncMode::Always {
            self.file.sync_data()?;
        }
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Current log size in bytes (drives checkpoint scheduling).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Truncate the log (after a checkpoint has made it redundant).
    pub fn truncate(&mut self) -> Result<()> {
        self.file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        self.file.sync_data()?;
        // Reopen in append mode.
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.bytes = 0;
        Ok(())
    }

    /// Read every intact record from a log file. Stops silently at the
    /// first torn/corrupt record (crash tail).
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<WalRecord>> {
        let mut out = Vec::new();
        let data = match std::fs::read(path.as_ref()) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        let mut pos = 0usize;
        while pos + 8 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let want_crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            let Some(payload) = data.get(pos + 8..pos + 8 + len) else {
                break; // torn tail
            };
            if crc32(payload) != want_crc {
                break; // corrupt tail
            }
            match serde_json::from_slice::<WalRecord>(payload) {
                Ok(rec) => out.push(rec),
                Err(_) => break,
            }
            pos += 8 + len;
        }
        Ok(out)
    }
}

/// Atomically write a snapshot blob next to the WAL.
pub fn write_snapshot(path: impl AsRef<Path>, data: &[u8]) -> Result<()> {
    let path = path.as_ref();
    let tmp = path.with_extension("snapshot.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read a snapshot blob if present.
pub fn read_snapshot(path: impl AsRef<Path>) -> Result<Option<Vec<u8>>> {
    match File::open(path.as_ref()) {
        Ok(mut f) => {
            let mut buf = Vec::new();
            f.read_to_end(&mut buf)?;
            Ok(Some(buf))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(StoreError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "minisql-wal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ))
    }

    fn rec(txn: u64, sql: &str) -> WalRecord {
        WalRecord {
            txn,
            statements: vec![sql.to_string()],
        }
    }

    #[test]
    fn append_and_replay() {
        let path = temp_path("basic");
        {
            let mut wal = Wal::open(&path, SyncMode::Always).unwrap();
            wal.append(&rec(1, "INSERT INTO t VALUES (1)")).unwrap();
            wal.append(&rec(2, "INSERT INTO t VALUES (2)")).unwrap();
        }
        let records = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], rec(1, "INSERT INTO t VALUES (1)"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_empty() {
        assert!(Wal::replay(temp_path("missing")).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = temp_path("torn");
        {
            let mut wal = Wal::open(&path, SyncMode::Os).unwrap();
            wal.append(&rec(1, "A")).unwrap();
            wal.append(&rec(2, "B")).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the end.
        let mut data = std::fs::read(&path).unwrap();
        data.truncate(data.len() - 5);
        std::fs::write(&path, &data).unwrap();
        let records = Wal::replay(&path).unwrap();
        assert_eq!(records.len(), 1, "torn second record must be discarded");
        assert_eq!(records[0].statements, vec!["A"]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = temp_path("corrupt");
        {
            let mut wal = Wal::open(&path, SyncMode::Os).unwrap();
            wal.append(&rec(1, "A")).unwrap();
            wal.append(&rec(2, "B")).unwrap();
            wal.append(&rec(3, "C")).unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte in the middle record's payload.
        let mid = data.len() / 2;
        data[mid] ^= 0xff;
        std::fs::write(&path, &data).unwrap();
        let records = Wal::replay(&path).unwrap();
        assert!(records.len() < 3, "corruption must stop replay");
        assert_eq!(records.first().map(|r| r.txn), Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_resets() {
        let path = temp_path("trunc");
        let mut wal = Wal::open(&path, SyncMode::Os).unwrap();
        wal.append(&rec(1, "A")).unwrap();
        assert!(wal.bytes() > 0);
        wal.truncate().unwrap();
        assert_eq!(wal.bytes(), 0);
        assert!(Wal::replay(&path).unwrap().is_empty());
        // Appending still works after truncation.
        wal.append(&rec(2, "B")).unwrap();
        assert_eq!(Wal::replay(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_round_trip() {
        let path = temp_path("snap");
        assert_eq!(read_snapshot(&path).unwrap(), None);
        write_snapshot(&path, b"state blob").unwrap();
        assert_eq!(read_snapshot(&path).unwrap().unwrap(), b"state blob");
        write_snapshot(&path, b"newer state").unwrap();
        assert_eq!(read_snapshot(&path).unwrap().unwrap(), b"newer state");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc_known_value() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }
}
